package e2e

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/api"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/client"
)

// healthTenants fetches /healthz and returns the per-tenant stats map.
func healthTenants(t *testing.T, base string) map[string]struct {
	Queued   int `json:"queued"`
	InFlight int `json:"in_flight"`
} {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Stats struct {
			Tenants map[string]struct {
				Queued   int `json:"queued"`
				InFlight int `json:"in_flight"`
			} `json:"tenants"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	return body.Stats.Tenants
}

// TestCrashRecoveryPreservesTenants is the multi-tenant durability
// acceptance test: SIGKILL a dagd with runs from two tenants in flight and
// queued, restart on the same data dir and tenant config, and require that
// every re-admitted run keeps its tenant attribution and drains through
// its own tenant's queue.
func TestCrashRecoveryPreservesTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e restart test builds and kills real processes")
	}
	bin := buildDagd(t)
	dataDir := t.TempDir()
	cfgPath := filepath.Join(t.TempDir(), "tenants.json")
	cfg := `{"tenants":[{"name":"alpha","weight":1},{"name":"beta","weight":2}]}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	p1 := startDagd(t, bin, dataDir, "-tenants", cfgPath)
	alpha1 := client.New(p1.base, client.WithTenant("alpha"), client.WithWaitSlice(200*time.Millisecond))
	beta1 := client.New(p1.base, client.WithTenant("beta"), client.WithWaitSlice(200*time.Millisecond))

	// Pre-crash terminal history carrying a tenant.
	done, err := beta1.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	if fin, err := beta1.Wait(wctx, done.ID); err != nil || fin.State != api.StateSucceeded {
		cancel()
		t.Fatalf("pre-crash beta run = %v, %v; want succeeded", fin, err)
	}
	cancel()

	// alpha holds the single dispatcher with a slow run; both tenants
	// queue work behind it, then the process dies.
	slow, err := alpha1.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p1.c, slow.ID, api.StateRunning)
	alphaQ, err := alpha1.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	betaQ1, err := beta1.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	betaQ2, err := beta1.Submit(ctx, api.RunSpec{Shape: api.ShapePipeline, Stages: 20, Width: 3})
	if err != nil {
		t.Fatal(err)
	}
	p1.sigkill(t)

	p2 := startDagd(t, bin, dataDir, "-tenants", cfgPath)

	// Attribution survived the crash on every record, terminal and
	// re-admitted alike.
	wantTenant := map[string]string{
		done.ID:   "beta",
		slow.ID:   "alpha",
		alphaQ.ID: "alpha",
		betaQ1.ID: "beta",
		betaQ2.ID: "beta",
	}
	for id, want := range wantTenant {
		r, err := p2.c.Get(ctx, id)
		if err != nil {
			t.Fatalf("Get(%s) after restart: %v", id, err)
		}
		if r.Spec.Tenant != want {
			t.Errorf("run %s tenant after restart = %q, want %q", id, r.Spec.Tenant, want)
		}
	}

	// Re-admitted runs sit in their *own* tenants' queues: while the
	// recovered slow alpha run occupies the dispatcher, beta's two runs
	// are queued under beta (and alpha's one under alpha). The slow run
	// takes seconds, so one observation right after boot is reliable —
	// but skip the count check gracefully if it already finished.
	if r, err := p2.c.Get(ctx, slow.ID); err == nil && r.State == api.StateRunning {
		tenants := healthTenants(t, p2.base)
		if tenants["beta"].Queued != 2 {
			t.Errorf("beta queue after recovery holds %d runs, want 2", tenants["beta"].Queued)
		}
		if tenants["alpha"].Queued != 1 || tenants["alpha"].InFlight != 1 {
			t.Errorf("alpha after recovery = %+v, want 1 queued + 1 in flight", tenants["alpha"])
		}
	} else {
		t.Logf("slow run not running at observation time (%v); skipping queue-count check", err)
	}

	// Everything drains to success with attribution intact.
	for _, id := range []string{slow.ID, alphaQ.ID, betaQ1.ID, betaQ2.ID} {
		wctx, cancel := context.WithTimeout(ctx, 120*time.Second)
		fin, err := p2.c.Wait(wctx, id)
		cancel()
		if err != nil || fin.State != api.StateSucceeded {
			t.Fatalf("recovered run %s = %v, %v; want succeeded", id, fin, err)
		}
		if fin.Restarts < 1 {
			t.Errorf("recovered run %s has Restarts = %d, want >= 1", id, fin.Restarts)
		}
		if fin.Spec.Tenant != wantTenant[id] {
			t.Errorf("run %s tenant after completion = %q, want %q", id, fin.Spec.Tenant, wantTenant[id])
		}
	}

	// The tenant filter reads coherently from the recovered store.
	page, err := p2.c.List(ctx, client.ListOptions{Tenant: "beta"})
	if err != nil {
		t.Fatal(err)
	}
	if page.Count != 3 {
		t.Errorf("List(tenant=beta) after recovery = %d runs, want 3", page.Count)
	}
	p2.stop(t)
}
