// Distributed-execution e2e: a real dagd coordinator leasing runs to real
// dagworker processes, with SIGKILLs landing on either side. These cover
// what the in-process fleet tests cannot — a worker that vanishes without
// unwinding anything, and a coordinator restart under live workers.
package e2e

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/api"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/client"
)

// buildDagworker compiles the dagworker binary once per test.
func buildDagworker(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dagworker")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/dagworker")
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building dagworker: %v\n%s", err, out)
	}
	return bin
}

// coordProc is a dagd coordinator (fleet mode) plus its two listeners.
type coordProc struct {
	cmd       *exec.Cmd
	base      string // public v1 API
	fleetBase string // worker API
	c         *client.Client
}

// fleetClocks are the tight lease clocks every fleet e2e test runs with:
// expiry within ~2s of a worker death keeps the tests fast while still
// spanning several heartbeats.
var fleetClocks = []string{"-lease-ttl", "2s", "-heartbeat-interval", "400ms"}

// startCoordinator launches dagd with -fleet-addr and waits for both
// listeners. fleetAddr may be "127.0.0.1:0"; the bound address is scraped
// from the log either way.
func startCoordinator(t *testing.T, bin, dataDir, fleetAddr string, extraArgs ...string) *coordProc {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-queue", "64",
		"-drain-timeout", "10s",
		"-fleet-addr", fleetAddr,
	}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting coordinator: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	apic := make(chan string, 1)
	fleetc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "fleet listener on "); ok {
				addr, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
				select {
				case fleetc <- addr:
				default:
				}
			} else if _, rest, ok := strings.Cut(line, "listening on "); ok {
				select {
				case apic <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	p := &coordProc{cmd: cmd}
	for p.base == "" || p.fleetBase == "" {
		select {
		case addr := <-apic:
			p.base = "http://" + addr
		case addr := <-fleetc:
			p.fleetBase = "http://" + addr
		case <-time.After(30 * time.Second):
			t.Fatalf("coordinator never reported its listeners (api %q, fleet %q)", p.base, p.fleetBase)
		}
	}
	p.c = client.New(p.base, client.WithWaitSlice(200*time.Millisecond))
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := p.c.Workloads(context.Background()); err == nil {
			return p
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator API never became reachable")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (p *coordProc) sigkill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL coordinator: %v", err)
	}
	p.cmd.Wait()
}

// startWorker launches a dagworker pointed at the coordinator's fleet
// listener. Its stderr is drained and discarded; the coordinator's view is
// what the tests assert on.
func startWorker(t *testing.T, bin, fleetBase, name string, capacity int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-coordinator", fleetBase,
		"-name", name,
		"-capacity", fmt.Sprint(capacity),
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	go io.Copy(io.Discard, stderr)
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting dagworker %s: %v", name, err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

// fleetStats reads the fleet block out of /healthz.
func fleetStats(t *testing.T, base string) (workers, leases int) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Stats struct {
			Fleet *struct {
				Workers      int `json:"workers"`
				ActiveLeases int `json:"active_leases"`
			} `json:"fleet"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding /healthz: %v", err)
	}
	if body.Stats.Fleet == nil {
		t.Fatal("/healthz has no fleet stats; coordinator not in remote mode?")
	}
	return body.Stats.Fleet.Workers, body.Stats.Fleet.ActiveLeases
}

// waitWorkers polls /healthz until the coordinator sees want workers.
func waitWorkers(t *testing.T, base string, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if got, _ := fleetStats(t, base); got == want {
			return
		}
		if time.Now().After(deadline) {
			got, _ := fleetStats(t, base)
			t.Fatalf("coordinator sees %d workers, want %d", got, want)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// freePort reserves an ephemeral port and releases it for the process
// under test to bind. Racy in principle; fine for a test that needs the
// same fleet port across a coordinator restart.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestWorkerCrashRedispatch is the fleet acceptance test: two workers, a
// slow run observed mid-flight on one of them, SIGKILL that worker, and
// require the coordinator to expire the lease and re-dispatch the run to
// the survivor — restart counted, tenant attribution intact.
func TestWorkerCrashRedispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e fleet test builds and kills real processes")
	}
	bin := buildDagd(t)
	wbin := buildDagworker(t)
	dataDir := t.TempDir()
	cfgPath := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(cfgPath, []byte(`{"tenants":[{"name":"acme","weight":2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	p := startCoordinator(t, bin, dataDir, "127.0.0.1:0", append(fleetClocks, "-tenants", cfgPath)...)
	workers := map[string]*exec.Cmd{
		"alpha": startWorker(t, wbin, p.fleetBase, "alpha", 1),
		"beta":  startWorker(t, wbin, p.fleetBase, "beta", 1),
	}
	waitWorkers(t, p.base, 2)
	alpha := client.New(p.base, client.WithTenant("acme"), client.WithWaitSlice(200*time.Millisecond))

	// A fast run proves the lease→execute→complete loop end to end first.
	warm, err := alpha.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{Workload: "hashchain"})
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	fin, err := alpha.Wait(wctx, warm.ID)
	cancel()
	if err != nil || fin.State != api.StateSucceeded || fin.Result == nil || !fin.Result.Match {
		t.Fatalf("warmup run = %+v, %v; want succeeded with matching result", fin, err)
	}
	if fin.Worker == "" {
		t.Fatalf("warmup run has no worker attribution: %+v", fin)
	}

	// The victim: a slow run, observed running, whose holder we kill.
	slow, err := alpha.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p.c, slow.ID, api.StateRunning)
	running, err := p.c.Get(ctx, slow.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Worker IDs are "<name>-NNNN"; the name picks the process to kill.
	victimName, _, _ := strings.Cut(running.Worker, "-")
	victim, ok := workers[victimName]
	if !ok {
		t.Fatalf("run %s leased to unrecognized worker %q", slow.ID, running.Worker)
	}
	survivorName := "beta"
	if victimName == "beta" {
		survivorName = "alpha"
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL worker %s: %v", victimName, err)
	}
	victim.Wait()

	// The lease expires within ~2s; the survivor re-executes from scratch.
	wctx, cancel = context.WithTimeout(ctx, 120*time.Second)
	fin, err = alpha.Wait(wctx, slow.ID)
	cancel()
	if err != nil {
		t.Fatalf("Wait(redispatched %s): %v", slow.ID, err)
	}
	if fin.State != api.StateSucceeded || fin.Result == nil || !fin.Result.Match {
		t.Fatalf("redispatched run finished as %+v, want succeeded with matching result", fin)
	}
	if fin.Restarts < 1 {
		t.Errorf("redispatched run has Restarts = %d, want >= 1", fin.Restarts)
	}
	if !strings.HasPrefix(fin.Worker, survivorName+"-") {
		t.Errorf("redispatched run attributed to %q, want the survivor %s-*", fin.Worker, survivorName)
	}
	if fin.Spec.Tenant != "acme" {
		t.Errorf("redispatched run lost tenant attribution: %q, want acme", fin.Spec.Tenant)
	}

	// The dead worker's registration lapses too: only the survivor remains.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if got, _ := fleetStats(t, p.base); got == 1 {
			break
		}
		if time.Now().After(deadline) {
			got, _ := fleetStats(t, p.base)
			t.Fatalf("dead worker never pruned: %d workers registered, want 1", got)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestCoordinatorRestartRecoversLeases kills the coordinator while a run
// executes remotely, restarts it on the same data dir and fleet port, and
// requires the leased run to come back as queued work that the (re-
// registering) worker then completes.
func TestCoordinatorRestartRecoversLeases(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e fleet test builds and kills real processes")
	}
	bin := buildDagd(t)
	wbin := buildDagworker(t)
	dataDir := t.TempDir()
	fleetAddr := freePort(t)
	ctx := context.Background()

	p1 := startCoordinator(t, bin, dataDir, fleetAddr, fleetClocks...)
	startWorker(t, wbin, p1.fleetBase, "omega", 1)
	waitWorkers(t, p1.base, 1)

	slow, err := p1.c.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p1.c, slow.ID, api.StateRunning)
	p1.sigkill(t)

	// Same data dir, same fleet port: the worker's configured coordinator
	// URL stays valid, it re-registers after its 404s, and the recovered
	// run (queued again, restart counted) drains through it.
	p2 := startCoordinator(t, bin, dataDir, fleetAddr, fleetClocks...)
	got, err := p2.c.Get(ctx, slow.ID)
	if err != nil {
		t.Fatalf("Get(recovered %s): %v", slow.ID, err)
	}
	if got.State.Terminal() {
		t.Fatalf("recovered run already terminal at boot: %+v", got)
	}
	if got.Restarts < 1 {
		t.Errorf("recovered run has Restarts = %d, want >= 1", got.Restarts)
	}
	wctx, cancel := context.WithTimeout(ctx, 120*time.Second)
	fin, err := p2.c.Wait(wctx, slow.ID)
	cancel()
	if err != nil || fin.State != api.StateSucceeded || fin.Result == nil || !fin.Result.Match {
		t.Fatalf("recovered run finished as %+v, %v; want succeeded with matching result", fin, err)
	}
	if !strings.HasPrefix(fin.Worker, "omega-") {
		t.Errorf("recovered run attributed to %q, want omega-*", fin.Worker)
	}
}
