// Package e2e black-box tests a real dagd binary over its public surfaces
// only: the compiled command, its flags, and pkg/client. The tests here
// cover what in-process tests cannot — a SIGKILL'd process and a cold
// restart from the same -data-dir.
package e2e

import (
	"bufio"
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/api"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/client"
)

// buildDagd compiles the dagd binary once per test run.
func buildDagd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dagd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/dagd")
	cmd.Dir = ".." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building dagd: %v\n%s", err, out)
	}
	return bin
}

// dagdProc is one live dagd process plus the client bound to it.
type dagdProc struct {
	cmd  *exec.Cmd
	base string
	c    *client.Client
}

// startDagd launches dagd on an ephemeral port with the given data dir and
// waits until its API answers. The process is force-killed at test cleanup
// if the test didn't stop it first.
func startDagd(t *testing.T, bin, dataDir string, extraArgs ...string) *dagdProc {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-dispatchers", "1",
		"-queue", "64",
		"-drain-timeout", "5s",
	}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting dagd: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// dagd logs "dagd: listening on 127.0.0.1:<port>" once bound; scan for
	// it, then keep draining stderr so the child never blocks on the pipe.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrc <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("dagd never reported its listen address")
	}

	c := client.New(base, client.WithWaitSlice(200*time.Millisecond))
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.Workloads(context.Background()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dagd API never became reachable")
		}
		time.Sleep(50 * time.Millisecond)
	}
	return &dagdProc{cmd: cmd, base: base, c: c}
}

// sigkill hard-kills the process — no drain, no WAL close — and reaps it.
func (p *dagdProc) sigkill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	p.cmd.Wait()
}

// stop shuts the process down gracefully via SIGTERM.
func (p *dagdProc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("dagd exited uncleanly after SIGTERM: %v", err)
	}
}

// waitState polls until the run reaches want (a non-terminal observation
// target, so it cannot use the long-poll, which parks until terminal).
func waitState(t *testing.T, c *client.Client, id string, want api.State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := c.Get(context.Background(), id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if r.State == want {
			return
		}
		if r.State.Terminal() {
			t.Fatalf("run %s reached terminal %s while waiting for %s", id, r.State, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in %s, want %s", id, r.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var diamond = []api.Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}}

// slowSpec runs for a second or two on one dispatcher — long enough that a
// SIGKILL issued right after observing it running always lands mid-flight.
func slowSpec() api.RunSpec {
	return api.RunSpec{Shape: api.ShapePipeline, Stages: 30000, Width: 4, Work: 2500, Workers: 2}
}

// TestCrashRecovery is the acceptance test for the durable store: SIGKILL
// dagd with runs finished, running, and queued, restart it on the same
// data dir, and require that (a) terminal runs are preserved exactly and
// (b) interrupted runs are re-admitted and driven to completion.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e restart test builds and kills real processes")
	}
	bin := buildDagd(t)
	dataDir := t.TempDir()
	ctx := context.Background()

	p1 := startDagd(t, bin, dataDir)

	// Two fast runs driven to completion before the crash: one explicit,
	// one generated, per the durability contract for terminal history.
	expl, err := p1.c.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{Workload: "hashchain"})
	if err != nil {
		t.Fatalf("SubmitExplicit: %v", err)
	}
	genr, err := p1.c.Submit(ctx, api.RunSpec{Shape: api.ShapePipeline, Stages: 20, Width: 3})
	if err != nil {
		t.Fatalf("Submit(pipeline): %v", err)
	}
	for _, id := range []string{expl.ID, genr.ID} {
		wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		r, err := p1.c.Wait(wctx, id)
		cancel()
		if err != nil || r.State != api.StateSucceeded {
			t.Fatalf("pre-crash run %s = %v, %v; want succeeded", id, r, err)
		}
	}
	explDone, err := p1.c.Get(ctx, expl.ID)
	if err != nil {
		t.Fatal(err)
	}

	// One slow run observed mid-execution, plus two queued behind it
	// (the single dispatcher is busy), then pull the plug.
	slow, err := p1.c.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatalf("Submit(slow): %v", err)
	}
	waitState(t, p1.c, slow.ID, api.StateRunning)
	q1, err := p1.c.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("SubmitExplicit(queued): %v", err)
	}
	q2, err := p1.c.Submit(ctx, api.RunSpec{Shape: api.ShapeRandom, Nodes: 200, EdgeProb: 0.03, Seed: 11})
	if err != nil {
		t.Fatalf("Submit(queued random): %v", err)
	}
	p1.sigkill(t)

	// Restart on the same data dir.
	p2 := startDagd(t, bin, dataDir)

	// (a) Terminal history survived, results and all.
	for _, id := range []string{expl.ID, genr.ID} {
		r, err := p2.c.Get(ctx, id)
		if err != nil {
			t.Fatalf("Get(%s) after restart: %v", id, err)
		}
		if r.State != api.StateSucceeded || r.Result == nil || !r.Result.Match {
			t.Fatalf("terminal run %s degraded across restart: %+v", id, r)
		}
		if r.Restarts != 0 {
			t.Errorf("terminal run %s has Restarts = %d, want 0", id, r.Restarts)
		}
	}
	r, err := p2.c.Get(ctx, expl.ID)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.SinkPaths != explDone.Result.SinkPaths {
		t.Errorf("explicit run result drifted: sink paths %d != %d", r.Result.SinkPaths, explDone.Result.SinkPaths)
	}
	if !r.CreatedAt.Equal(explDone.CreatedAt) {
		t.Errorf("explicit run CreatedAt drifted across restart")
	}

	// (b) Interrupted runs were re-admitted and run to completion.
	for _, interrupted := range []*api.Run{slow, q1, q2} {
		got, err := p2.c.Get(ctx, interrupted.ID)
		if err != nil {
			t.Fatalf("Get(interrupted %s): %v", interrupted.ID, err)
		}
		if got.Restarts < 1 {
			t.Errorf("interrupted run %s has Restarts = %d, want >= 1", interrupted.ID, got.Restarts)
		}
		wctx, cancel := context.WithTimeout(ctx, 120*time.Second)
		fin, err := p2.c.Wait(wctx, interrupted.ID)
		cancel()
		if err != nil {
			t.Fatalf("Wait(interrupted %s): %v", interrupted.ID, err)
		}
		if fin.State != api.StateSucceeded || fin.Result == nil || !fin.Result.Match {
			t.Fatalf("interrupted run %s finished as %+v, want succeeded with matching result", interrupted.ID, fin)
		}
	}

	// The full listing reads coherently from the recovered store: all five
	// runs, paginated walk equal to the one-shot list.
	all, err := p2.c.List(ctx, client.ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Count != 5 {
		t.Fatalf("List after recovery has %d runs, want 5", all.Count)
	}
	var walked []string
	cursor := ""
	for {
		page, err := p2.c.List(ctx, client.ListOptions{Limit: 2, Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range page.Runs {
			walked = append(walked, r.ID)
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(walked) != len(all.Runs) {
		t.Fatalf("paginated walk visited %d runs, List has %d", len(walked), len(all.Runs))
	}
	for i, r := range all.Runs {
		if walked[i] != r.ID {
			t.Fatalf("paginated walk diverged from List at %d", i)
		}
	}

	// Graceful shutdown this time, then a third boot: everything must now
	// be terminal history, with nothing left to recover.
	p2.stop(t)
	p3 := startDagd(t, bin, dataDir)
	for _, id := range []string{expl.ID, genr.ID, slow.ID, q1.ID, q2.ID} {
		r, err := p3.c.Get(ctx, id)
		if err != nil || r.State != api.StateSucceeded {
			t.Fatalf("run %s after clean restart = %+v, %v; want succeeded", id, r, err)
		}
	}
	p3.stop(t)
}

// TestCrashRecoveryShardedFsync repeats the SIGKILL crash-recovery pass
// against the sharded group-commit configuration (-wal-shards 4 -fsync):
// terminal history and interrupted-run re-admission must survive a hard
// kill exactly as they do under the defaults, and a restart asking for a
// different shard count must refuse to load rather than split run
// histories across layouts.
func TestCrashRecoveryShardedFsync(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e restart test builds and kills real processes")
	}
	bin := buildDagd(t)
	dataDir := t.TempDir()
	ctx := context.Background()
	shardArgs := []string{"-wal-shards", "4", "-fsync"}

	p1 := startDagd(t, bin, dataDir, shardArgs...)

	// Enough terminal runs to touch several shards (IDs are routed by
	// hash), plus one run killed mid-flight and one still queued.
	var terminal []string
	for i := 0; i < 6; i++ {
		r, err := p1.c.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{})
		if err != nil {
			t.Fatalf("SubmitExplicit: %v", err)
		}
		terminal = append(terminal, r.ID)
	}
	for _, id := range terminal {
		wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		r, err := p1.c.Wait(wctx, id)
		cancel()
		if err != nil || r.State != api.StateSucceeded {
			t.Fatalf("pre-crash run %s = %v, %v; want succeeded", id, r, err)
		}
	}
	slow, err := p1.c.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatalf("Submit(slow): %v", err)
	}
	waitState(t, p1.c, slow.ID, api.StateRunning)
	queued, err := p1.c.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("SubmitExplicit(queued): %v", err)
	}
	p1.sigkill(t)

	// A restart with a different shard count must fail closed: the process
	// exits non-zero before ever listening, naming the mismatch.
	mism := exec.Command(bin, "-addr", "127.0.0.1:0", "-data-dir", dataDir,
		"-wal-shards", "2", "-fsync")
	out, err := mism.CombinedOutput()
	if err == nil {
		mism.Process.Kill()
		t.Fatalf("dagd started over a 4-shard data dir with -wal-shards 2; output:\n%s", out)
	}
	if !strings.Contains(string(out), "shard count") {
		t.Errorf("mismatch refusal doesn't name the shard count:\n%s", out)
	}

	// The matching count recovers everything.
	p2 := startDagd(t, bin, dataDir, shardArgs...)
	for _, id := range terminal {
		r, err := p2.c.Get(ctx, id)
		if err != nil || r.State != api.StateSucceeded || r.Result == nil || !r.Result.Match {
			t.Fatalf("terminal run %s degraded across sharded restart: %+v, %v", id, r, err)
		}
	}
	for _, interrupted := range []*api.Run{slow, queued} {
		got, err := p2.c.Get(ctx, interrupted.ID)
		if err != nil {
			t.Fatalf("Get(interrupted %s): %v", interrupted.ID, err)
		}
		if got.Restarts < 1 {
			t.Errorf("interrupted run %s has Restarts = %d, want >= 1", interrupted.ID, got.Restarts)
		}
		wctx, cancel := context.WithTimeout(ctx, 120*time.Second)
		fin, err := p2.c.Wait(wctx, interrupted.ID)
		cancel()
		if err != nil || fin.State != api.StateSucceeded {
			t.Fatalf("interrupted run %s finished as %+v, %v; want succeeded", interrupted.ID, fin, err)
		}
	}
	p2.stop(t)
}

// TestRestartPreservesFsync runs a minimal durability pass with -fsync on,
// covering the flag plumbing end to end.
func TestRestartPreservesFsync(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e restart test builds and kills real processes")
	}
	bin := buildDagd(t)
	dataDir := t.TempDir()
	ctx := context.Background()

	p1 := startDagd(t, bin, dataDir, "-fsync", "-compact-threshold", "8")
	r, err := p1.c.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	fin, err := p1.c.Wait(wctx, r.ID)
	cancel()
	if err != nil || fin.State != api.StateSucceeded {
		t.Fatalf("fsync run = %v, %v; want succeeded", fin, err)
	}
	p1.sigkill(t)

	p2 := startDagd(t, bin, dataDir, "-fsync", "-compact-threshold", "8")
	got, err := p2.c.Get(ctx, r.ID)
	if err != nil || got.State != api.StateSucceeded {
		t.Fatalf("fsync'd run after SIGKILL = %+v, %v; want succeeded", got, err)
	}
	p2.stop(t)
}
