package e2e

import (
	"context"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/api"
)

// slowDynamicSpec expands to a few thousand nodes with enough per-node work
// (on two workers) that a SIGKILL issued after observing it running always
// lands mid-flight — the dynamic analogue of slowSpec.
func slowDynamicSpec() api.RunSpec {
	return api.RunSpec{Shape: api.ShapeDynamic, Stages: 12, Width: 3, EdgeProb: 0.2, Seed: 31, Work: 60000, Workers: 2}
}

// TestScenarioShapesThroughDagd drives one run per new scenario shape/knob
// through a real dagd binary: a ≥500k-deep chain, a parallel_work pipeline,
// and a dynamic run, all of which must verify end to end.
func TestScenarioShapesThroughDagd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test builds and runs a real process")
	}
	bin := buildDagd(t)
	p := startDagd(t, bin, t.TempDir(), "-dispatchers", "2")
	ctx := context.Background()

	cases := []struct {
		name     string
		spec     api.RunSpec
		minDepth int
	}{
		{"deep chain", api.RunSpec{Shape: api.ShapeChain, Nodes: 500001}, 500000},
		{"parallel work", api.RunSpec{Shape: api.ShapePipeline, Stages: 10, Width: 2, Work: 65536, ParallelWork: true, Workload: "hashchain"}, 0},
		{"dynamic", api.RunSpec{Shape: api.ShapeDynamic, Stages: 8, Width: 3, EdgeProb: 0.3, Seed: 11}, 8},
	}
	for _, tc := range cases {
		r, err := p.c.Submit(ctx, tc.spec)
		if err != nil {
			t.Fatalf("%s: Submit: %v", tc.name, err)
		}
		wctx, cancel := context.WithTimeout(ctx, 120*time.Second)
		fin, err := p.c.Wait(wctx, r.ID)
		cancel()
		if err != nil {
			t.Fatalf("%s: Wait: %v", tc.name, err)
		}
		if fin.State != api.StateSucceeded || fin.Result == nil || !fin.Result.Match {
			t.Fatalf("%s: finished as %+v, want succeeded with matching result", tc.name, fin)
		}
		if fin.Result.Depth < tc.minDepth {
			t.Errorf("%s: depth = %d, want >= %d", tc.name, fin.Result.Depth, tc.minDepth)
		}
	}

	// A dynamic run whose expansion exceeds the node cap fails closed.
	over, err := p.c.Submit(ctx, api.RunSpec{Shape: api.ShapeDynamic, Stages: 20, Width: 4, Seed: 7})
	if err != nil {
		t.Fatalf("Submit(over-cap dynamic): %v", err)
	}
	wctx, cancel := context.WithTimeout(ctx, 120*time.Second)
	fin, err := p.c.Wait(wctx, over.ID)
	cancel()
	if err != nil {
		t.Fatalf("Wait(over-cap dynamic): %v", err)
	}
	if fin.State != api.StateFailed {
		t.Fatalf("over-cap dynamic run = %s, want failed at the growth bound", fin.State)
	}
	p.stop(t)
}

// TestDynamicCrashRecovery is the WAL satellite: SIGKILL dagd while a
// dynamic run is mid-expansion, restart on the same data dir, and require
// the run to be re-admitted and driven to a verified completion (the
// expansion is deterministic, so the re-executed graph is the same one).
func TestDynamicCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e restart test builds and kills real processes")
	}
	bin := buildDagd(t)
	dataDir := t.TempDir()
	ctx := context.Background()

	p1 := startDagd(t, bin, dataDir)
	slow, err := p1.c.Submit(ctx, slowDynamicSpec())
	if err != nil {
		t.Fatalf("Submit(slow dynamic): %v", err)
	}
	waitState(t, p1.c, slow.ID, api.StateRunning)
	p1.sigkill(t)

	p2 := startDagd(t, bin, dataDir)
	got, err := p2.c.Get(ctx, slow.ID)
	if err != nil {
		t.Fatalf("Get after restart: %v", err)
	}
	if got.Restarts < 1 {
		t.Errorf("interrupted dynamic run has Restarts = %d, want >= 1", got.Restarts)
	}
	wctx, cancel := context.WithTimeout(ctx, 120*time.Second)
	fin, err := p2.c.Wait(wctx, slow.ID)
	cancel()
	if err != nil {
		t.Fatalf("Wait(recovered dynamic): %v", err)
	}
	if fin.State != api.StateSucceeded || fin.Result == nil || !fin.Result.Match {
		t.Fatalf("recovered dynamic run finished as %+v, want succeeded with matching result", fin)
	}
	p2.stop(t)
}
