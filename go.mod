module github.com/paper-repo-growth/conf_micro_daglisunbfg16

go 1.22
