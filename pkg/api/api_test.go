package api

import (
	"encoding/json"
	"errors"
	"testing"
)

// TestErrorSentinelMapping pins that a decoded envelope unwraps to the
// sentinel for its code, and only that sentinel.
func TestErrorSentinelMapping(t *testing.T) {
	cases := []struct {
		code Code
		want error
	}{
		{CodeInvalidRequest, ErrInvalidRequest},
		{CodeInvalidSpec, ErrInvalidSpec},
		{CodeUnknownWorkload, ErrUnknownWorkload},
		{CodeUnsupportedMediaType, ErrUnsupportedMediaType},
		{CodeRequestTooLarge, ErrRequestTooLarge},
		{CodeNotFound, ErrNotFound},
		{CodeMethodNotAllowed, ErrMethodNotAllowed},
		{CodeRunTerminal, ErrRunTerminal},
		{CodeQueueFull, ErrQueueFull},
		{CodeShuttingDown, ErrShuttingDown},
		{CodeInternal, ErrInternal},
	}
	for _, tc := range cases {
		err := error(&Error{Code: tc.code, Message: "boom"})
		if !errors.Is(err, tc.want) {
			t.Errorf("code %s does not unwrap to its sentinel", tc.code)
		}
		if tc.want != ErrNotFound && errors.Is(err, ErrNotFound) {
			t.Errorf("code %s also matches ErrNotFound", tc.code)
		}
	}
	// Unknown (future) codes still behave as plain errors.
	future := &Error{Code: "brand_new_code", Message: "??"}
	if errors.Is(future, ErrInternal) {
		t.Error("unknown code matched a sentinel")
	}
	if future.Error() == "" {
		t.Error("unknown code lost its message")
	}
}

// TestEnvelopeRoundTrip pins the wire shape of the error envelope.
func TestEnvelopeRoundTrip(t *testing.T) {
	blob := `{"error":{"code":"queue_full","message":"queue full","details":{"queue_depth":8}}}`
	var env ErrorEnvelope
	if err := json.Unmarshal([]byte(blob), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != CodeQueueFull {
		t.Fatalf("decoded envelope = %+v", env.Error)
	}
	if depth, _ := env.Error.Details["queue_depth"].(float64); depth != 8 {
		t.Errorf("details lost: %v", env.Error.Details)
	}
	if !errors.Is(env.Error, ErrQueueFull) {
		t.Error("decoded envelope does not match ErrQueueFull")
	}
}

func TestStateTerminal(t *testing.T) {
	for s, want := range map[State]bool{
		StateQueued: false, StateRunning: false,
		StateSucceeded: true, StateFailed: true, StateCancelled: true,
	} {
		if s.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", s, !want, want)
		}
	}
}

func TestEdgeJSON(t *testing.T) {
	out, err := json.Marshal([]Edge{{0, 1}, {2, 3}})
	if err != nil || string(out) != "[[0,1],[2,3]]" {
		t.Fatalf("Marshal = %s, %v", out, err)
	}
	var edges []Edge
	if err := json.Unmarshal(out, &edges); err != nil || len(edges) != 2 || edges[1] != (Edge{2, 3}) {
		t.Fatalf("Unmarshal = %v, %v", edges, err)
	}
	for _, bad := range []string{`[[1]]`, `[[1,2,3]]`, `[1,2]`} {
		if err := json.Unmarshal([]byte(bad), &edges); err == nil {
			t.Errorf("Unmarshal(%s) succeeded, want error", bad)
		}
	}
}
