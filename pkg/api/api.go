// Package api defines the public wire contract of the dagd v1 HTTP API:
// the JSON shapes for run specs, runs, and list pages; the structured
// error envelope with its machine-readable code table; and the sentinel
// errors each code decodes back to. The error surface (codes, envelope,
// sentinels) is shared directly by the server (internal/server) and the
// typed client (pkg/client). The run/spec types deliberately mirror the
// internal service types rather than aliasing them — the public surface
// must not expose internal packages — and conformance tests in pkg/client
// hold the two JSON field sets together.
//
// Every 4xx/5xx response carries the envelope
//
//	{"error": {"code": "...", "message": "...", "details": {...}}}
//
// where code is one of the Code constants below. Clients should branch on
// the code (or on the sentinel errors via errors.Is), never on message
// text.
package api

import (
	"errors"
	"fmt"
	"time"
)

// Code is a machine-readable error category, stable across releases.
type Code string

// The v1 error code table.
const (
	// CodeInvalidRequest: the request itself is malformed — unparseable
	// JSON, unknown fields, or bad query parameters (cursor, limit, wait,
	// state). HTTP 400.
	CodeInvalidRequest Code = "invalid_request"
	// CodeInvalidSpec: the spec parsed but is structurally invalid — bounds
	// violations, bad shapes, or a malformed explicit graph (self-loop,
	// duplicate/out-of-range edge, cycle). HTTP 400.
	CodeInvalidSpec Code = "invalid_spec"
	// CodeUnknownWorkload: the spec names a workload absent from the
	// registry. HTTP 400.
	CodeUnknownWorkload Code = "unknown_workload"
	// CodeUnsupportedMediaType: the request body's Content-Type is not
	// application/json. HTTP 415.
	CodeUnsupportedMediaType Code = "unsupported_media_type"
	// CodeRequestTooLarge: the request body exceeds the server's spec-size
	// bound. HTTP 413.
	CodeRequestTooLarge Code = "request_too_large"
	// CodeNotFound: no run (or route) matches the requested ID/path.
	// HTTP 404.
	CodeNotFound Code = "not_found"
	// CodeMethodNotAllowed: the path exists but not for this HTTP method.
	// HTTP 405.
	CodeMethodNotAllowed Code = "method_not_allowed"
	// CodeRunTerminal: the operation (cancel) is invalid because the run
	// already finished. HTTP 409.
	CodeRunTerminal Code = "run_terminal"
	// CodeQueueFull: the dispatch queue is at capacity; back off and
	// retry. HTTP 429.
	CodeQueueFull Code = "queue_full"
	// CodeRateLimited: the tenant's submission rate limit is exhausted;
	// retry after the Retry-After header's delay. HTTP 429.
	CodeRateLimited Code = "rate_limited"
	// CodeQuotaExceeded: the tenant's queue-depth quota is full; wait for
	// queued runs to drain (or cancel some) before resubmitting. HTTP 429.
	CodeQuotaExceeded Code = "quota_exceeded"
	// CodeShuttingDown: the service is draining and no longer accepts
	// work. HTTP 503.
	CodeShuttingDown Code = "shutting_down"
	// CodeInternal: an unexpected server-side failure. HTTP 500.
	CodeInternal Code = "internal"
)

// Sentinel errors, one per code. (*Error).Unwrap maps a decoded envelope
// back to the matching sentinel, so client callers can write
// errors.Is(err, api.ErrQueueFull) without touching the envelope.
var (
	ErrInvalidRequest       = errors.New("api: invalid request")
	ErrInvalidSpec          = errors.New("api: invalid spec")
	ErrUnknownWorkload      = errors.New("api: unknown workload")
	ErrUnsupportedMediaType = errors.New("api: unsupported media type")
	ErrRequestTooLarge      = errors.New("api: request too large")
	ErrNotFound             = errors.New("api: not found")
	ErrMethodNotAllowed     = errors.New("api: method not allowed")
	ErrRunTerminal          = errors.New("api: run already terminal")
	ErrQueueFull            = errors.New("api: queue full")
	ErrRateLimited          = errors.New("api: rate limited")
	ErrQuotaExceeded        = errors.New("api: tenant quota exceeded")
	ErrShuttingDown         = errors.New("api: shutting down")
	ErrInternal             = errors.New("api: internal server error")
)

var sentinels = map[Code]error{
	CodeInvalidRequest:       ErrInvalidRequest,
	CodeInvalidSpec:          ErrInvalidSpec,
	CodeUnknownWorkload:      ErrUnknownWorkload,
	CodeUnsupportedMediaType: ErrUnsupportedMediaType,
	CodeRequestTooLarge:      ErrRequestTooLarge,
	CodeNotFound:             ErrNotFound,
	CodeMethodNotAllowed:     ErrMethodNotAllowed,
	CodeRunTerminal:          ErrRunTerminal,
	CodeQueueFull:            ErrQueueFull,
	CodeRateLimited:          ErrRateLimited,
	CodeQuotaExceeded:        ErrQuotaExceeded,
	CodeShuttingDown:         ErrShuttingDown,
	CodeInternal:             ErrInternal,
}

// Sentinel returns the sentinel error for c, or nil for codes this client
// version doesn't know (a server may grow new codes; callers still get the
// *Error itself).
func (c Code) Sentinel() error { return sentinels[c] }

// Error is the decoded error envelope. It is both the wire shape the
// server emits and the error value the client returns for non-2xx
// responses.
type Error struct {
	Code    Code           `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`

	// HTTPStatus is the response status the envelope arrived with. It is
	// filled by the client, never serialized.
	HTTPStatus int `json:"-"`
	// RetryAfter is the parsed Retry-After response header (zero when the
	// server sent none) — how long to back off before retrying a 429/503.
	// Filled by the client, never serialized.
	RetryAfter time.Duration `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Unwrap maps the code to its sentinel so errors.Is works on decoded
// envelopes.
func (e *Error) Unwrap() error { return e.Code.Sentinel() }

// ErrorEnvelope is the top-level JSON wrapper of every error response.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}
