package api

import (
	"encoding/json"
	"fmt"
	"time"
)

// Shape names accepted in RunSpec.Shape.
const (
	ShapeRandom   = "random"
	ShapePipeline = "pipeline"
	ShapeExplicit = "explicit"
	ShapeChain    = "chain"
	ShapeDynamic  = "dynamic"
)

// State is a run's lifecycle state as serialized on the wire.
type State string

// Run lifecycle states: queued → running → succeeded|failed|cancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// Edge is one directed edge of an explicit spec, serialized as a
// two-element JSON array [from, to].
type Edge [2]int

// UnmarshalJSON enforces that an edge is exactly a [from, to] pair, like
// the server does at admission.
func (e *Edge) UnmarshalJSON(b []byte) error {
	var pair []int
	if err := json.Unmarshal(b, &pair); err != nil {
		return fmt.Errorf("api: edge must be a [from,to] array: %w", err)
	}
	if len(pair) != 2 {
		return fmt.Errorf("api: edge must have exactly 2 endpoints, got %d", len(pair))
	}
	e[0], e[1] = pair[0], pair[1]
	return nil
}

// RunSpec is the POST /v1/runs body: which DAG to build (generated or
// explicit) and how to execute it. Exactly the fields relevant to Shape
// should be set; the server rejects, for example, an edges list on a
// generated shape.
type RunSpec struct {
	Shape    string  `json:"shape"`
	Nodes    int     `json:"nodes,omitempty"`    // node count (random, explicit, chain)
	EdgeProb float64 `json:"p,omitempty"`        // forward-edge probability (random); cross-parent probability (dynamic)
	Stages   int     `json:"stages,omitempty"`   // pipeline depth (pipeline); expansion depth (dynamic)
	Width    int     `json:"width,omitempty"`    // pipeline width (pipeline); max branching (dynamic)
	Seed     int64   `json:"seed,omitempty"`     // generator seed (random, dynamic)
	Edges    []Edge  `json:"edges,omitempty"`    // literal edge list (explicit)
	Workload string  `json:"workload,omitempty"` // registered workload name; "" = server default
	Work     int     `json:"work,omitempty"`     // busy-work iterations per node
	Workers  int     `json:"workers,omitempty"`  // per-run scheduler pool size; 0 = server default
	// ParallelWork splits each node's Work across idle scheduler workers
	// (Nabbit UseParallelNodes). Not valid for the dynamic shape.
	ParallelWork bool `json:"parallel_work,omitempty"`
	// Tenant and Priority are server-stamped attribution: who the run was
	// admitted for (from the X-Tenant header, never this field) and the
	// tenant's priority class at admission. Both are ignored on submission.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

// Result is the measured outcome of a finished run.
type Result struct {
	Workload       string  `json:"workload"`
	Nodes          int     `json:"nodes"`
	Edges          int     `json:"edges"`
	Depth          int     `json:"depth"`
	Workers        int     `json:"workers"`
	SinkPaths      uint64  `json:"sink_paths_mod64"`
	Match          bool    `json:"match"`
	SerialMillis   float64 `json:"serial_ms"`
	ParallelMillis float64 `json:"parallel_ms"`
	Speedup        float64 `json:"speedup"`
}

// Run is one run's snapshot as returned by the API.
type Run struct {
	ID    string  `json:"id"`
	Spec  RunSpec `json:"spec"`
	State State   `json:"state"`
	// SpecRedacted means the server dropped the spec's explicit edge
	// list from this terminal snapshot to bound retained memory; the
	// spec no longer describes the executed graph and must not be
	// resubmitted as-is.
	SpecRedacted bool `json:"spec_redacted,omitempty"`
	// Restarts counts how many times the server re-admitted this run to
	// its queue after an interruption: a durable (WAL-backed) server
	// restart, or — in distributed mode — a worker lease that expired
	// after missed heartbeats.
	Restarts int     `json:"restarts,omitempty"`
	Error    string  `json:"error,omitempty"`
	Result   *Result `json:"result,omitempty"`
	// Worker is the ID of the fleet worker the run last executed on.
	// Empty when the server executes runs embedded (no -fleet-addr).
	Worker string `json:"worker,omitempty"`
	// Lifecycle timestamps, each stamped when the run crosses the matching
	// transition: CreatedAt at admission, DispatchedAt when a dispatcher
	// popped it off the queue, StartedAt when the queued→running transition
	// was recorded (the gap to DispatchedAt is the server's Begin overhead,
	// e.g. a WAL fsync), FinishedAt at the terminal transition. Clients
	// compute queue-vs-execute breakdowns from these.
	CreatedAt    time.Time  `json:"created_at"`
	DispatchedAt *time.Time `json:"dispatched_at,omitempty"`
	StartedAt    *time.Time `json:"started_at,omitempty"`
	FinishedAt   *time.Time `json:"finished_at,omitempty"`
}

// RunList is one page of GET /v1/runs. NextCursor is empty on the last
// page; otherwise pass it back as ?cursor= to continue.
type RunList struct {
	Runs       []Run  `json:"runs"`
	Count      int    `json:"count"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// WorkloadList is the GET /v1/workloads response.
type WorkloadList struct {
	Workloads []string `json:"workloads"`
	Count     int      `json:"count"`
	Default   string   `json:"default"`
}
