// Package client is the typed Go client for the dagd v1 API. It speaks
// the wire contract defined in pkg/api: every non-2xx response is decoded
// from the structured error envelope into an *api.Error whose Unwrap maps
// the machine-readable code back to a sentinel, so callers branch with
// errors.Is(err, api.ErrQueueFull) instead of inspecting status codes or
// message text.
//
//	c := client.New("http://127.0.0.1:8080")
//	r, err := c.SubmitExplicit(ctx, 4, []api.Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
//		client.SubmitOptions{Workload: "hashchain"})
//	if err != nil { ... }
//	r, err = c.Wait(ctx, r.ID) // long-polls ?wait=, no busy loop
//
// Wait builds on the server's GET /v1/runs/{id}?wait= long-poll: each
// round parks server-side until the run finishes or the wait slice
// elapses, so waiting costs one idle HTTP request per slice rather than a
// tight polling loop.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/api"
)

// Client talks to one dagd base URL. It is safe for concurrent use.
type Client struct {
	base      string
	hc        *http.Client
	waitSlice time.Duration
	tenant    string
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for every request
// (timeouts, transports, test doubles). Note that an http.Client.Timeout
// must exceed the wait slice or long-polls will be cut short.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithTenant sets the X-Tenant header on every request, identifying which
// tenant's quotas, rate limits, and fair-share weight the client's
// submissions are accounted against. An empty name (the default) means the
// server's catch-all "default" tenant.
func WithTenant(name string) Option {
	return func(c *Client) { c.tenant = name }
}

// WithWaitSlice sets the per-round long-poll duration Wait passes as
// ?wait= (default 1s, server-capped at 30s). Non-positive values are
// ignored: a zero slice would degrade Wait into an unthrottled busy-loop
// and a negative one would be rejected by the server.
func WithWaitSlice(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.waitSlice = d
		}
	}
}

// New returns a Client for the dagd at baseURL (e.g. "http://host:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:      strings.TrimRight(baseURL, "/"),
		hc:        http.DefaultClient,
		waitSlice: time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one request and decodes the response into out (unless nil).
// Non-2xx responses become *api.Error values when the body carries the
// envelope, or a plain error otherwise.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body, out any) error {
	var rdr io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		rdr = bytes.NewReader(buf)
	}
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rdr)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set("X-Tenant", c.tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// decodeError turns a non-2xx response into an *api.Error (when the body
// is the structured envelope) or a descriptive plain error.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.HTTPStatus = resp.StatusCode
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			// dagd always sends delay-seconds (never an HTTP-date).
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				env.Error.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return env.Error
	}
	return fmt.Errorf("client: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
}

// SubmitOptions carries the execution knobs shared by every shape.
type SubmitOptions struct {
	Workload string // registered workload name; "" = server default
	Work     int    // busy-work iterations per node
	Workers  int    // per-run scheduler pool size; 0 = server default
}

// Submit submits any run spec and returns the queued run snapshot.
func (c *Client) Submit(ctx context.Context, spec api.RunSpec) (*api.Run, error) {
	var r api.Run
	if err := c.do(ctx, http.MethodPost, "/v1/runs", nil, spec, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// SubmitExplicit submits a client-authored DAG: nodes identified 0..n-1
// and exactly the given edges. The server validates bounds, edge sanity
// (range, self-loops, duplicates), and acyclicity at admission; a bad
// graph fails with api.ErrInvalidSpec before anything executes.
func (c *Client) SubmitExplicit(ctx context.Context, nodes int, edges []api.Edge, opts SubmitOptions) (*api.Run, error) {
	return c.Submit(ctx, api.RunSpec{
		Shape:    api.ShapeExplicit,
		Nodes:    nodes,
		Edges:    edges,
		Workload: opts.Workload,
		Work:     opts.Work,
		Workers:  opts.Workers,
	})
}

// Get fetches one run's current snapshot.
func (c *Client) Get(ctx context.Context, id string) (*api.Run, error) {
	var r api.Run
	if err := c.do(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(id), nil, nil, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// GetWait fetches one run, long-polling server-side for up to wait (the
// server caps it at 30s) before returning the latest snapshot, which may
// still be non-terminal.
func (c *Client) GetWait(ctx context.Context, id string, wait time.Duration) (*api.Run, error) {
	q := url.Values{"wait": {wait.String()}}
	var r api.Run
	if err := c.do(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(id), q, nil, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Wait blocks until the run reaches a terminal state or ctx is done,
// long-polling GetWait in waitSlice rounds. On ctx expiry it returns the
// last snapshot seen alongside ctx's error.
func (c *Client) Wait(ctx context.Context, id string) (*api.Run, error) {
	var last *api.Run
	for {
		r, err := c.GetWait(ctx, id, c.waitSlice)
		if err != nil {
			// Attribute hangups at the deadline to the caller's ctx.
			if ctx.Err() != nil {
				return last, ctx.Err()
			}
			return nil, err
		}
		if r.State.Terminal() {
			return r, nil
		}
		last = r
		if err := ctx.Err(); err != nil {
			return last, err
		}
	}
}

// ListOptions selects and pages GET /v1/runs.
type ListOptions struct {
	State  string // filter by lifecycle state name; "" = all
	Tenant string // filter by owning tenant name; "" = all
	Limit  int    // page size; 0 = everything in one response
	Cursor string // resume token from a previous page's NextCursor
}

// List returns one page of runs in stable (creation time, ID) order.
// Follow page.NextCursor until it is empty.
func (c *Client) List(ctx context.Context, opts ListOptions) (*api.RunList, error) {
	q := url.Values{}
	if opts.State != "" {
		q.Set("state", opts.State)
	}
	if opts.Tenant != "" {
		q.Set("tenant", opts.Tenant)
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.Cursor != "" {
		q.Set("cursor", opts.Cursor)
	}
	var page api.RunList
	if err := c.do(ctx, http.MethodGet, "/v1/runs", q, nil, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// Cancel requests cancellation of a queued or running run and returns its
// snapshot (which may still be "running" until the dispatcher observes
// the cancellation). Cancelling a finished run fails with
// api.ErrRunTerminal.
func (c *Client) Cancel(ctx context.Context, id string) (*api.Run, error) {
	var r api.Run
	if err := c.do(ctx, http.MethodPost, "/v1/runs/"+url.PathEscape(id)+"/cancel", nil, nil, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Workloads lists the registered workload names and the server default.
func (c *Client) Workloads(ctx context.Context) (*api.WorkloadList, error) {
	var wl api.WorkloadList
	if err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, nil, &wl); err != nil {
		return nil, err
	}
	return &wl, nil
}
