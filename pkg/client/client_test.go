package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/server"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/api"
)

// diamond is a 4-node DAG with two source→sink paths.
var diamond = []api.Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}}

// newClient stands up a real service + server and returns a client bound
// to it.
func newClient(t *testing.T, opts core.ServiceOptions) *Client {
	t.Helper()
	svc, err := core.NewService(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return New(ts.URL, WithWaitSlice(100*time.Millisecond))
}

// TestExplicitAllWorkloads is the acceptance-criteria test: an explicit
// DAG submitted through pkg/client executes under every registered
// workload with the serial self-check matching.
func TestExplicitAllWorkloads(t *testing.T) {
	c := newClient(t, core.ServiceOptions{QueueDepth: 8, Dispatchers: 2})
	ctx := context.Background()
	wl, err := c.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Default == "" || len(wl.Workloads) < 3 {
		t.Fatalf("workloads = %+v, want >= 3 with a default", wl)
	}
	for _, name := range wl.Workloads {
		if name == "broken-for-test" { // registered by internal/run's tests when run together
			continue
		}
		r, err := c.SubmitExplicit(ctx, 4, diamond, SubmitOptions{Workload: name, Work: 5})
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		if r.State != api.StateQueued || r.ID == "" {
			t.Fatalf("workload %s: submitted run = %+v, want queued with ID", name, r)
		}
		r, err = c.Wait(ctx, r.ID)
		if err != nil {
			t.Fatalf("workload %s: Wait: %v", name, err)
		}
		if r.State != api.StateSucceeded {
			t.Fatalf("workload %s: state %s (error %q)", name, r.State, r.Error)
		}
		if r.Result == nil || !r.Result.Match {
			t.Errorf("workload %s: self-check did not match: %+v", name, r.Result)
		}
		if r.Result.Workload != name {
			t.Errorf("result workload = %q, want %q", r.Result.Workload, name)
		}
		if r.Result.Nodes != 4 || r.Result.Edges != 4 {
			t.Errorf("workload %s: nodes/edges = %d/%d, want 4/4", name, r.Result.Nodes, r.Result.Edges)
		}
	}
}

// TestErrorDecoding pins that API failures surface as sentinel-matchable
// *api.Error values.
func TestErrorDecoding(t *testing.T) {
	c := newClient(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1})
	ctx := context.Background()

	// Cyclic explicit graph → invalid_spec.
	_, err := c.SubmitExplicit(ctx, 3, []api.Edge{{0, 1}, {1, 2}, {2, 0}}, SubmitOptions{})
	if !errors.Is(err, api.ErrInvalidSpec) {
		t.Errorf("cyclic spec error = %v, want api.ErrInvalidSpec", err)
	}
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v is not an *api.Error", err)
	}
	if apiErr.Code != api.CodeInvalidSpec || apiErr.HTTPStatus != 400 {
		t.Errorf("apiErr = code %s status %d, want invalid_spec/400", apiErr.Code, apiErr.HTTPStatus)
	}

	// Unknown workload → unknown_workload.
	_, err = c.Submit(ctx, api.RunSpec{Shape: api.ShapePipeline, Stages: 3, Width: 2, Workload: "bogus"})
	if !errors.Is(err, api.ErrUnknownWorkload) {
		t.Errorf("bogus workload error = %v, want api.ErrUnknownWorkload", err)
	}

	// Missing run → not_found, from Get, Wait, and Cancel alike.
	if _, err := c.Get(ctx, "r999999-deadbeef"); !errors.Is(err, api.ErrNotFound) {
		t.Errorf("Get(missing) = %v, want api.ErrNotFound", err)
	}
	if _, err := c.Wait(ctx, "r999999-deadbeef"); !errors.Is(err, api.ErrNotFound) {
		t.Errorf("Wait(missing) = %v, want api.ErrNotFound", err)
	}
	if _, err := c.Cancel(ctx, "r999999-deadbeef"); !errors.Is(err, api.ErrNotFound) {
		t.Errorf("Cancel(missing) = %v, want api.ErrNotFound", err)
	}
}

// TestCancelFlow drives submit → cancel → wait-to-cancelled through the
// client, then checks that re-cancelling maps to api.ErrRunTerminal.
func TestCancelFlow(t *testing.T) {
	c := newClient(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1})
	ctx := context.Background()
	r, err := c.Submit(ctx, api.RunSpec{Shape: api.ShapePipeline, Stages: 40000, Width: 4, Work: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, r.ID); err != nil {
		t.Fatal(err)
	}
	r, err = c.Wait(ctx, r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != api.StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", r.State)
	}
	if _, err := c.Cancel(ctx, r.ID); !errors.Is(err, api.ErrRunTerminal) {
		t.Errorf("cancel terminal run = %v, want api.ErrRunTerminal", err)
	}
}

// TestWaitContext pins that Wait honors its context on runs that never
// finish.
func TestWaitContext(t *testing.T) {
	c := newClient(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1})
	bg := context.Background()
	// One slow run occupies the single dispatcher; the second stays queued.
	blocker, err := c.Submit(bg, api.RunSpec{Shape: api.ShapePipeline, Stages: 40000, Width: 4, Work: 2000})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(bg, api.RunSpec{Shape: api.ShapePipeline, Stages: 10, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, 300*time.Millisecond)
	defer cancel()
	if _, err := c.Wait(ctx, queued.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Wait on stuck run = %v, want DeadlineExceeded", err)
	}
	if _, err := c.Cancel(bg, blocker.ID); err != nil {
		t.Fatal(err)
	}
}

// TestListPagination walks pages through the client and checks the union
// matches a single full listing, including the state filter.
func TestListPagination(t *testing.T) {
	c := newClient(t, core.ServiceOptions{QueueDepth: 16, Dispatchers: 2})
	ctx := context.Background()
	const total = 5
	for i := 0; i < total; i++ {
		r, err := c.Submit(ctx, api.RunSpec{Shape: api.ShapePipeline, Stages: 10, Width: 2, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(ctx, r.ID); err != nil {
			t.Fatal(err)
		}
	}
	full, err := c.List(ctx, ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Count != total || len(full.Runs) != total || full.NextCursor != "" {
		t.Fatalf("full list = count %d, cursor %q; want %d, empty", full.Count, full.NextCursor, total)
	}
	var fullIDs []string
	for _, r := range full.Runs {
		fullIDs = append(fullIDs, r.ID)
	}

	var pagedIDs []string
	cursor := ""
	for {
		page, err := c.List(ctx, ListOptions{Limit: 2, Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Runs) > 2 {
			t.Fatalf("page has %d runs, limit 2", len(page.Runs))
		}
		for _, r := range page.Runs {
			pagedIDs = append(pagedIDs, r.ID)
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if !reflect.DeepEqual(pagedIDs, fullIDs) {
		t.Errorf("paged %v != full %v", pagedIDs, fullIDs)
	}

	succeeded, err := c.List(ctx, ListOptions{State: "succeeded"})
	if err != nil || succeeded.Count != total {
		t.Errorf("state filter = %+v, %v; want %d succeeded", succeeded, err, total)
	}
	if _, err := c.List(ctx, ListOptions{State: "bogus"}); !errors.Is(err, api.ErrInvalidRequest) {
		t.Errorf("bogus state filter = %v, want api.ErrInvalidRequest", err)
	}
}

// TestWaitSliceGuard pins that non-positive wait slices are ignored
// rather than turning Wait into an unthrottled busy-loop.
func TestWaitSliceGuard(t *testing.T) {
	for _, d := range []time.Duration{0, -time.Second} {
		c := New("http://example.invalid", WithWaitSlice(d))
		if c.waitSlice != time.Second {
			t.Errorf("WithWaitSlice(%v) set slice %v, want default 1s", d, c.waitSlice)
		}
	}
	if c := New("http://example.invalid", WithWaitSlice(5*time.Second)); c.waitSlice != 5*time.Second {
		t.Errorf("WithWaitSlice(5s) not applied: %v", c.waitSlice)
	}
}

// TestWireCompat pins that the server's run JSON (internal/core types)
// decodes losslessly into the public api.Run shape, so pkg/api can never
// drift from what dagd actually serves.
func TestWireCompat(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Second)
	info := core.RunInfo{
		ID: "r000001-aabbccdd",
		Spec: core.RunSpec{
			Config: core.GenConfig{
				Shape: core.ExplicitShape,
				Nodes: 4,
				Edges: []core.Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
			},
			Workload: "hashchain",
			Work:     7,
			Workers:  3,
		},
		State:     core.RunSucceeded,
		CreatedAt: now,
		Result: &core.RunResult{
			Workload: "hashchain", Nodes: 4, Edges: 4, Depth: 2,
			Workers: 3, SinkPaths: 99, Match: true,
		},
	}
	blob, err := json.Marshal(info)
	if err != nil {
		t.Fatal(err)
	}
	var got api.Run
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatalf("server JSON does not decode into api.Run: %v\n%s", err, blob)
	}
	want := api.Run{
		ID: "r000001-aabbccdd",
		Spec: api.RunSpec{
			Shape: api.ShapeExplicit, Nodes: 4,
			Edges:    []api.Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
			Workload: "hashchain", Work: 7, Workers: 3,
		},
		State:     api.StateSucceeded,
		CreatedAt: now,
		Result: &api.Result{
			Workload: "hashchain", Nodes: 4, Edges: 4, Depth: 2,
			Workers: 3, SinkPaths: 99, Match: true,
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("decoded api.Run:\n%+v\nwant:\n%+v", got, want)
	}
	// And the reverse: an api.RunSpec marshals into exactly what the
	// server's admission decoder (DisallowUnknownFields) accepts.
	specBlob, err := json.Marshal(want.Spec)
	if err != nil {
		t.Fatal(err)
	}
	var serverSpec core.RunSpec
	if err := unmarshalStrict(specBlob, &serverSpec); err != nil {
		t.Fatalf("api.RunSpec JSON rejected by server decoding: %v\n%s", err, specBlob)
	}
	if !reflect.DeepEqual(serverSpec, info.Spec) {
		t.Errorf("server decoded %+v, want %+v", serverSpec, info.Spec)
	}
}

func unmarshalStrict(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// TestWireFieldConformance enforces that the hand-mirrored public types
// in pkg/api expose exactly the JSON fields of the internal wire types,
// so adding a field on either side without the other fails here instead
// of surfacing as a mysterious 400 (server DisallowUnknownFields) or a
// knob the typed client cannot express.
func TestWireFieldConformance(t *testing.T) {
	cases := []struct {
		name             string
		internal, public any
	}{
		{"RunSpec", core.RunSpec{}, api.RunSpec{}},
		{"Run", core.RunInfo{}, api.Run{}},
		{"Result", core.RunResult{}, api.Result{}},
	}
	for _, tc := range cases {
		in, pub := jsonFieldSet(t, tc.internal), jsonFieldSet(t, tc.public)
		if !reflect.DeepEqual(in, pub) {
			t.Errorf("%s: internal JSON fields %v != public %v", tc.name, in, pub)
		}
	}
}

// jsonFieldSet returns the sorted JSON field names of v, flattening
// embedded structs the way encoding/json does.
func jsonFieldSet(t *testing.T, v any) []string {
	t.Helper()
	var collect func(rt reflect.Type) []string
	collect = func(rt reflect.Type) []string {
		var names []string
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			if f.Anonymous && f.Type.Kind() == reflect.Struct && f.Tag.Get("json") == "" {
				names = append(names, collect(f.Type)...)
				continue
			}
			tag := strings.Split(f.Tag.Get("json"), ",")[0]
			if tag == "-" {
				continue
			}
			if tag == "" {
				tag = f.Name
			}
			names = append(names, tag)
		}
		return names
	}
	names := collect(reflect.TypeOf(v))
	sort.Strings(names)
	return names
}

// newServerURL stands up a real service + server and returns its base URL,
// for tests that need several differently-configured clients against one
// dagd.
func newServerURL(t *testing.T, opts core.ServiceOptions) string {
	t.Helper()
	svc, err := core.NewService(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return ts.URL
}

// TestWithTenant: the client's tenant option rides every request as the
// X-Tenant header, attribution comes back on the run, and ListOptions.
// Tenant filters server-side.
func TestWithTenant(t *testing.T) {
	url := newServerURL(t, core.ServiceOptions{
		QueueDepth:  8,
		Dispatchers: 2,
		Tenants:     []core.TenantConfig{{Name: "alpha", Priority: 1}},
	})
	ctx := context.Background()
	alpha := New(url, WithTenant("alpha"), WithWaitSlice(100*time.Millisecond))
	anon := New(url, WithWaitSlice(100*time.Millisecond))

	r, err := alpha.SubmitExplicit(ctx, 4, diamond, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Spec.Tenant != "alpha" || r.Spec.Priority != 1 {
		t.Errorf("alpha-client run attribution = %q/%d, want alpha/1", r.Spec.Tenant, r.Spec.Priority)
	}
	a, err := anon.SubmitExplicit(ctx, 4, diamond, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec.Tenant != "default" {
		t.Errorf("anonymous run attribution = %q, want default", a.Spec.Tenant)
	}
	if _, err := alpha.Wait(ctx, r.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := anon.Wait(ctx, a.ID); err != nil {
		t.Fatal(err)
	}

	page, err := anon.List(ctx, ListOptions{Tenant: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	if page.Count != 1 || page.Runs[0].ID != r.ID {
		t.Errorf("List(tenant=alpha) = %d runs, want exactly the alpha run", page.Count)
	}
}

// TestRetryAfterDecoding: a 429 from the tenant rate limiter decodes into
// an *api.Error matching api.ErrRateLimited, with the Retry-After header
// parsed into the error.
func TestRetryAfterDecoding(t *testing.T) {
	url := newServerURL(t, core.ServiceOptions{
		QueueDepth:  8,
		Dispatchers: 1,
		Tenants:     []core.TenantConfig{{Name: "limited", SubmitRate: 0.01, SubmitBurst: 1}},
	})
	ctx := context.Background()
	c := New(url, WithTenant("limited"))

	if _, err := c.SubmitExplicit(ctx, 4, diamond, SubmitOptions{}); err != nil {
		t.Fatalf("first submit within burst: %v", err)
	}
	_, err := c.SubmitExplicit(ctx, 4, diamond, SubmitOptions{})
	if !errors.Is(err, api.ErrRateLimited) {
		t.Fatalf("over-rate submit = %v, want api.ErrRateLimited", err)
	}
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v is not an *api.Error", err)
	}
	if apiErr.HTTPStatus != 429 {
		t.Errorf("HTTPStatus = %d, want 429", apiErr.HTTPStatus)
	}
	if apiErr.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want the parsed Retry-After header (> 0)", apiErr.RetryAfter)
	}
	if apiErr.Details["tenant"] != "limited" {
		t.Errorf("details.tenant = %v, want limited", apiErr.Details["tenant"])
	}
}
