// Command dagbench generates a benchmark DAG, executes a registered
// workload both serially and on the concurrent work-stealing scheduler,
// checks the two results against each other, and prints timing as JSON. It
// drives the same execution path as the dagd service (core.ExecuteRun), so
// the CLI and the daemon can never report differently for the same spec.
//
// Usage:
//
//	dagbench -nodes 1000 -p 0.01 -workers 8
//	dagbench -type pipeline -stages 200 -width 4 -work 1000
//	dagbench -type explicit -nodes 4 -edges '[[0,1],[0,2],[1,3],[2,3]]'
//	dagbench -type chain -nodes 1000000
//	dagbench -type dynamic -stages 10 -width 3 -p 0.2 -seed 7
//	dagbench -type pipeline -stages 50 -width 2 -work 100000 -parallel-work
//	dagbench -workload hashchain -nodes 2000 -p 0.01
//	dagbench -list-workloads
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
)

// report is the JSON output printed per run: the spec knobs followed by
// the measured result (match, sink paths, timings, speedup).
type report struct {
	Shape        string  `json:"shape"`
	EdgeProb     float64 `json:"edge_prob,omitempty"`
	Stages       int     `json:"stages,omitempty"`
	Width        int     `json:"width,omitempty"`
	Seed         int64   `json:"seed"`
	Work         int     `json:"work"`
	ParallelWork bool    `json:"parallel_work,omitempty"`
	core.RunResult
}

func main() {
	var (
		shapeFlag = flag.String("type", "random", "dag shape: random, pipeline, explicit, chain, or dynamic")
		nodes     = flag.Int("nodes", 1000, "node count (random/explicit/chain shapes)")
		p         = flag.Float64("p", 0.01, "forward-edge probability (random); cross-parent probability (dynamic)")
		stages    = flag.Int("stages", 100, "pipeline depth (pipeline); expansion depth (dynamic)")
		width     = flag.Int("width", 4, "pipeline width (pipeline); max branching (dynamic)")
		seed      = flag.Int64("seed", 1, "generator seed")
		edges     = flag.String("edges", "", `explicit edge list as JSON, e.g. [[0,1],[1,2]] (explicit shape)`)
		work      = flag.Int("work", 0, "busy-work iterations per node (Nabbit W)")
		parallel  = flag.Bool("parallel-work", false, "split each node's work across idle workers (Nabbit UseParallelNodes)")
		workers   = flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
		workload  = flag.String("workload", "", "registered workload name (empty = "+core.DefaultWorkload+")")
		list      = flag.Bool("list-workloads", false, "print registered workload names and exit")
		timeout   = flag.Duration("timeout", 5*time.Minute, "overall run timeout")
	)
	flag.Parse()

	if *list {
		for _, name := range core.Workloads() {
			fmt.Println(name)
		}
		return
	}

	if err := run(*shapeFlag, *workload, *edges, *nodes, *p, *stages, *width, *seed, *work, *workers, *parallel, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "dagbench:", err)
		os.Exit(1)
	}
}

func run(shapeFlag, workload, edgesJSON string, nodes int, p float64, stages, width int, seed int64, work, workers int, parallelWork bool, timeout time.Duration) error {
	shape, err := core.ParseShape(shapeFlag)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var edges []core.Edge
	if edgesJSON != "" {
		if shape != core.ExplicitShape {
			return fmt.Errorf("-edges is only valid with -type explicit")
		}
		if err := json.Unmarshal([]byte(edgesJSON), &edges); err != nil {
			return fmt.Errorf("parsing -edges: %w", err)
		}
	} else if shape == core.ExplicitShape {
		// Require the flag so a forgotten -edges can't silently benchmark
		// an edgeless graph; an explicitly empty list ('[]') is still legal.
		return fmt.Errorf("-type explicit requires -edges (pass '[]' for an edgeless graph)")
	}
	if shape == core.DynamicShape {
		// The dynamic expander grows the graph itself; a node count is not a
		// spec knob there (MaxNodes is enforced as a growth bound at runtime).
		nodes = 0
	}
	spec := core.RunSpec{
		Config: core.GenConfig{
			Shape:    shape,
			Nodes:    nodes,
			EdgeProb: p,
			Stages:   stages,
			Width:    width,
			Seed:     seed,
			Edges:    edges,
		},
		Workload:     workload,
		Work:         work,
		Workers:      workers,
		ParallelWork: parallelWork,
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	res, err := core.ExecuteRun(ctx, spec, workers)
	if err != nil && res == nil {
		return err
	}

	rep := report{
		Shape:        shape.String(),
		Seed:         seed,
		Work:         work,
		ParallelWork: parallelWork,
		RunResult:    *res,
	}
	switch shape {
	case core.RandomShape:
		rep.EdgeProb = p
	case core.PipelineShape:
		rep.Stages = stages
		rep.Width = width
	case core.ExplicitShape, core.ChainShape:
		rep.Seed = 0 // explicit and chain graphs involve no randomness
	case core.DynamicShape:
		rep.EdgeProb = p
		rep.Stages = stages
		rep.Width = width
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if encErr := enc.Encode(rep); encErr != nil {
		return errors.Join(err, encErr)
	}
	// A mismatch still prints its report (match false) before failing.
	return err
}
