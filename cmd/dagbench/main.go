// Command dagbench generates a benchmark DAG, executes the path-counting
// workload both serially and on the concurrent worker-pool scheduler, checks
// the two results against each other, and prints timing as JSON.
//
// Usage:
//
//	dagbench -nodes 1000 -p 0.01 -workers 8
//	dagbench -type pipeline -stages 200 -width 4 -work 1000
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
)

// result is the JSON report printed on success.
type result struct {
	Shape          string  `json:"shape"`
	Nodes          int     `json:"nodes"`
	Edges          int     `json:"edges"`
	Depth          int     `json:"depth"`
	EdgeProb       float64 `json:"edge_prob,omitempty"`
	Stages         int     `json:"stages,omitempty"`
	Width          int     `json:"width,omitempty"`
	Seed           int64   `json:"seed"`
	Work           int     `json:"work"`
	Workers        int     `json:"workers"`
	SinkPaths      uint64  `json:"sink_paths_mod64"`
	Match          bool    `json:"match"`
	SerialMillis   float64 `json:"serial_ms"`
	ParallelMillis float64 `json:"parallel_ms"`
	Speedup        float64 `json:"speedup"`
}

func main() {
	var (
		shapeFlag = flag.String("type", "random", "dag shape: random or pipeline")
		nodes     = flag.Int("nodes", 1000, "node count (random shape)")
		p         = flag.Float64("p", 0.01, "forward-edge probability (random shape)")
		stages    = flag.Int("stages", 100, "pipeline depth (pipeline shape)")
		width     = flag.Int("width", 4, "pipeline width (pipeline shape)")
		seed      = flag.Int64("seed", 1, "generator seed")
		work      = flag.Int("work", 0, "busy-work iterations per node (Nabbit W)")
		workers   = flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
		timeout   = flag.Duration("timeout", 5*time.Minute, "overall run timeout")
	)
	flag.Parse()

	if err := run(*shapeFlag, *nodes, *p, *stages, *width, *seed, *work, *workers, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "dagbench:", err)
		os.Exit(1)
	}
}

func run(shapeFlag string, nodes int, p float64, stages, width int, seed int64, work, workers int, timeout time.Duration) error {
	shape, err := core.ParseShape(shapeFlag)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	d, err := core.Generate(core.GenConfig{
		Shape:    shape,
		Nodes:    nodes,
		EdgeProb: p,
		Stages:   stages,
		Width:    width,
		Seed:     seed,
	})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	t0 := time.Now()
	serial := core.CountPathsSerial(d, work)
	serialDur := time.Since(t0)

	t1 := time.Now()
	parallel, err := core.CountPathsParallel(ctx, d, workers, work)
	if err != nil {
		return err
	}
	parallelDur := time.Since(t1)

	match := equal(serial, parallel)
	res := result{
		Shape:          shape.String(),
		Nodes:          d.NumNodes(),
		Edges:          d.NumEdges(),
		Depth:          d.Depth(),
		Seed:           seed,
		Work:           work,
		Workers:        workers,
		SinkPaths:      core.TotalSinkPaths(d, serial),
		Match:          match,
		SerialMillis:   float64(serialDur.Microseconds()) / 1000,
		ParallelMillis: float64(parallelDur.Microseconds()) / 1000,
	}
	if parallelDur > 0 {
		res.Speedup = float64(serialDur) / float64(parallelDur)
	}
	switch shape {
	case core.RandomShape:
		res.EdgeProb = p
	case core.PipelineShape:
		res.Stages = stages
		res.Width = width
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	if !match {
		return fmt.Errorf("parallel path counts diverge from serial reference on %d-node %s dag (seed %d)",
			d.NumNodes(), shape, seed)
	}
	return nil
}

func equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
