package main

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/metrics"
)

// metricsSmoke scrapes GET /metrics and verifies the page the hard way:
// the strict exposition parser rejects any malformed line (bad names,
// unquoted or mis-escaped label values, histogram families with broken
// +Inf/_sum/_count invariants), and the core series produced by the earlier
// smoke phases must exist with sane values. Run it after phaseRuns so the
// counters have something to show.
func metricsSmoke(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		return fmt.Errorf("/metrics Content-Type = %q, want text/plain", ct)
	}

	fams, err := metrics.ParsePrometheus(resp.Body)
	if err != nil {
		return fmt.Errorf("strict-parsing /metrics: %w", err)
	}

	// Counters the earlier phases must have moved. Sum() adds every series
	// of the family (histograms count observations), so tenant/workload
	// label splits don't matter here.
	for _, check := range []struct {
		family string
		min    float64
	}{
		{"dagd_runs_completed_total", 1}, // phaseRuns completed ≥ 6 runs
		{"dagd_submits_total", 1},        // ...which were all admitted
		{"dagd_http_requests_total", 1},  // every API call above
		{"dagd_sched_nodes_executed_total", 1},
		{"dagd_queue_wait_seconds", 1},   // one observation per dispatch
		{"dagd_run_duration_seconds", 1}, // one observation per execution
		{"dagd_http_request_seconds", 1},
	} {
		f, ok := fams[check.family]
		if !ok {
			return fmt.Errorf("/metrics lacks family %s", check.family)
		}
		if got := f.Sum(); got < check.min {
			return fmt.Errorf("%s = %v, want >= %v", check.family, got, check.min)
		}
	}

	// Label values must be the real names, not conversion accidents: the
	// completed counter is split by terminal-state name and the smoke runs
	// all succeeded, so a state="succeeded" series must exist. (This is the
	// check that catches a string(intState) rune conversion slipping in.)
	completed := fams["dagd_runs_completed_total"]
	succeeded := 0.0
	for _, s := range completed.Samples {
		if s.Labels["state"] == "succeeded" {
			succeeded += s.Value
		}
	}
	if succeeded < 1 {
		return fmt.Errorf(`dagd_runs_completed_total has no state="succeeded" series: %+v`, completed.Samples)
	}

	// Gauge families that must at least be declared with their series.
	for _, name := range []string{"dagd_runs", "dagd_queue_depth", "dagd_inflight_runs", "dagd_http_inflight_requests"} {
		if _, ok := fams[name]; !ok {
			return fmt.Errorf("/metrics lacks family %s", name)
		}
	}

	// Rejection counters moved during phaseRejections only when the
	// rejection happened post-tenant-resolution (invalid specs do); make
	// sure the family at least renders cleanly when present.
	if f, ok := fams["dagd_submit_rejections_total"]; ok && f.Sum() < 1 {
		return fmt.Errorf("dagd_submit_rejections_total present but zero after the rejections phase")
	}

	fmt.Printf("dagsmoke: /metrics strict-parsed: %d families, %d runs completed, %.0f nodes executed\n",
		len(fams), int(fams["dagd_runs_completed_total"].Sum()),
		fams["dagd_sched_nodes_executed_total"].Sum())
	return nil
}
