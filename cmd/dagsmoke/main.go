// Command dagsmoke is the CI smoke test for a running dagd: it exercises
// the v1 API end to end through the typed client (pkg/client) — submit an
// explicit and a generated run per registered workload, long-poll each to
// succeeded, check the serial self-check matched, verify admission
// rejections decode to the right sentinel errors, and walk pagination.
// It exits 0 only if every check passes.
//
// Usage:
//
//	dagsmoke -base http://127.0.0.1:18080 -timeout 2m
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"flag"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/api"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/client"
)

// diamond is the explicit test graph: 0→{1,2}→3 plus a skip edge 0→3.
// Three source→sink paths, depth 2.
var diamond = []api.Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {0, 3}}

func main() {
	var (
		base    = flag.String("base", "http://127.0.0.1:8080", "dagd base URL")
		timeout = flag.Duration("timeout", 2*time.Minute, "overall smoke-test budget")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := smoke(ctx, client.New(*base, client.WithWaitSlice(2*time.Second))); err != nil {
		fmt.Fprintln(os.Stderr, "dagsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("dagsmoke: all checks passed")
}

func smoke(ctx context.Context, c *client.Client) error {
	wl, err := c.Workloads(ctx)
	if err != nil {
		return fmt.Errorf("listing workloads: %w", err)
	}
	if len(wl.Workloads) < 3 {
		return fmt.Errorf("expected at least the 3 built-in workloads, got %v", wl.Workloads)
	}
	fmt.Printf("dagsmoke: workloads %v (default %s)\n", wl.Workloads, wl.Default)

	// One explicit and one generated run per registered workload; every
	// serial-vs-parallel self-check must match.
	var submitted int
	for _, name := range wl.Workloads {
		for _, submit := range []func() (*api.Run, error){
			func() (*api.Run, error) {
				return c.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{Workload: name, Work: 10})
			},
			func() (*api.Run, error) {
				return c.Submit(ctx, api.RunSpec{
					Shape: api.ShapePipeline, Stages: 50, Width: 4, Work: 50, Workload: name,
				})
			},
		} {
			r, err := submit()
			if err != nil {
				return fmt.Errorf("workload %s: submit: %w", name, err)
			}
			submitted++
			id := r.ID
			r, err = c.Wait(ctx, id)
			if err != nil {
				return fmt.Errorf("workload %s: waiting on %s: %w", name, id, err)
			}
			if r.State != api.StateSucceeded {
				return fmt.Errorf("workload %s: run %s ended %s (error %q)", name, r.ID, r.State, r.Error)
			}
			if r.Result == nil || !r.Result.Match {
				return fmt.Errorf("workload %s: run %s has no matching self-check: %+v", name, r.ID, r.Result)
			}
			fmt.Printf("dagsmoke: %s %s run %s succeeded (nodes=%d edges=%d match=%v)\n",
				name, r.Spec.Shape, r.ID, r.Result.Nodes, r.Result.Edges, r.Result.Match)
		}
	}

	// Admission rejections must decode to sentinel errors.
	if _, err := c.SubmitExplicit(ctx, 3, []api.Edge{{0, 1}, {1, 2}, {2, 0}}, client.SubmitOptions{}); !errors.Is(err, api.ErrInvalidSpec) {
		return fmt.Errorf("cyclic explicit spec: got %v, want api.ErrInvalidSpec", err)
	}
	if _, err := c.Submit(ctx, api.RunSpec{Shape: api.ShapePipeline, Stages: 2, Width: 2, Workload: "bogus"}); !errors.Is(err, api.ErrUnknownWorkload) {
		return fmt.Errorf("bogus workload: got %v, want api.ErrUnknownWorkload", err)
	}
	if _, err := c.Get(ctx, "r999999-deadbeef"); !errors.Is(err, api.ErrNotFound) {
		return fmt.Errorf("missing run: got %v, want api.ErrNotFound", err)
	}
	fmt.Println("dagsmoke: admission rejections map to sentinels")

	// Pagination must walk every submitted run exactly once.
	seen := map[string]bool{}
	for cursor := ""; ; {
		page, err := c.List(ctx, client.ListOptions{Limit: 3, Cursor: cursor})
		if err != nil {
			return fmt.Errorf("listing runs: %w", err)
		}
		for _, r := range page.Runs {
			if seen[r.ID] {
				return fmt.Errorf("pagination returned run %s twice", r.ID)
			}
			seen[r.ID] = true
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(seen) < submitted {
		return fmt.Errorf("pagination walked %d runs, submitted %d", len(seen), submitted)
	}
	fmt.Printf("dagsmoke: pagination walked %d runs\n", len(seen))
	return nil
}
