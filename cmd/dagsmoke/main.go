// Command dagsmoke is the CI smoke test for a running dagd: it exercises
// the v1 API end to end through the typed client (pkg/client) — submit an
// explicit and a generated run per registered workload, long-poll each to
// succeeded, check the serial self-check matched, drive the scenario shapes
// (deep-span chain, parallel-node work, dynamic expansion and its growth
// bound, the pipeline-cap overflow rejection), verify admission rejections
// decode to the right sentinel errors, and walk pagination.
// The run is split into named phases, each individually timed; on failure
// the exit message names the failing phase ("FAIL phase=<name>") so the CI
// log points at the broken layer without spelunking, and a passing run
// prints the per-phase and total wall times so smoke-latency creep is
// visible in plain CI output.
//
// With -tenants it additionally exercises multi-tenant isolation against a
// dagd started with the matching tenant config (ci/tenants-smoke.json):
// one tenant saturates its in-flight cap and queue quota and must get 429
// quota_exceeded with a Retry-After, a second tenant must keep submitting
// successfully during the saturation, and a rate-limited tenant must get
// 429 rate_limited with a positive Retry-After.
//
// With -metrics it scrapes GET /metrics after the load phases, strict-parses
// the page with the internal/metrics exposition parser (every line must be
// well-formed; histogram +Inf/_sum/_count invariants must hold), and asserts
// the core series exist with sane values — runs completed, submits admitted,
// HTTP requests observed, scheduler nodes executed.
//
// Usage:
//
//	dagsmoke -base http://127.0.0.1:18080 -timeout 2m
//	dagsmoke -base http://127.0.0.1:18080 -tenants   # needs dagd -tenants ci/tenants-smoke.json
//	dagsmoke -base http://127.0.0.1:18080 -metrics   # strict /metrics verification
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"flag"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/api"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/client"
)

// diamond is the explicit test graph: 0→{1,2}→3 plus a skip edge 0→3.
// Three source→sink paths, depth 2.
var diamond = []api.Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {0, 3}}

// phase is one named, timed stage of the smoke run.
type phase struct {
	name string
	fn   func(context.Context) error
}

func main() {
	var (
		base    = flag.String("base", "http://127.0.0.1:8080", "dagd base URL")
		timeout = flag.Duration("timeout", 2*time.Minute, "overall smoke-test budget")
		tenants = flag.Bool("tenants", false, "also check tenant isolation (dagd must run with the smoke tenant config)")
		metrics = flag.Bool("metrics", false, "also scrape /metrics, strict-parse it, and assert the core series")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	sm := &smoke{c: client.New(*base, client.WithWaitSlice(2*time.Second))}
	phases := []phase{
		{"workloads", sm.phaseWorkloads},
		{"runs", sm.phaseRuns},
		{"scenarios", sm.phaseScenarios},
		{"rejections", sm.phaseRejections},
		{"pagination", sm.phasePagination},
	}
	if *tenants {
		phases = append(phases, phase{"tenants", func(ctx context.Context) error {
			return tenantSmoke(ctx, *base)
		}})
	}
	if *metrics {
		phases = append(phases, phase{"metrics", func(ctx context.Context) error {
			return metricsSmoke(ctx, *base)
		}})
	}

	start := time.Now()
	for _, p := range phases {
		t0 := time.Now()
		if err := p.fn(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dagsmoke: FAIL phase=%s after %s: %v\n",
				p.name, time.Since(t0).Round(time.Millisecond), err)
			os.Exit(1)
		}
		fmt.Printf("dagsmoke: phase %-10s ok in %s\n", p.name, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("dagsmoke: all %d phases passed in %s\n", len(phases), time.Since(start).Round(time.Millisecond))
}

// smoke carries state across the API phases: the workload list discovered
// first feeds the run phase, and the submission count bounds the
// pagination walk.
type smoke struct {
	c         *client.Client
	workloads []string
	submitted int
}

func (sm *smoke) phaseWorkloads(ctx context.Context) error {
	wl, err := sm.c.Workloads(ctx)
	if err != nil {
		return fmt.Errorf("listing workloads: %w", err)
	}
	if len(wl.Workloads) < 3 {
		return fmt.Errorf("expected at least the 3 built-in workloads, got %v", wl.Workloads)
	}
	sm.workloads = wl.Workloads
	fmt.Printf("dagsmoke: workloads %v (default %s)\n", wl.Workloads, wl.Default)
	return nil
}

// phaseRuns submits one explicit and one generated run per registered
// workload; every serial-vs-parallel self-check must match.
func (sm *smoke) phaseRuns(ctx context.Context) error {
	c := sm.c
	for _, name := range sm.workloads {
		for _, submit := range []func() (*api.Run, error){
			func() (*api.Run, error) {
				return c.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{Workload: name, Work: 10})
			},
			func() (*api.Run, error) {
				return c.Submit(ctx, api.RunSpec{
					Shape: api.ShapePipeline, Stages: 50, Width: 4, Work: 50, Workload: name,
				})
			},
		} {
			r, err := submit()
			if err != nil {
				return fmt.Errorf("workload %s: submit: %w", name, err)
			}
			sm.submitted++
			id := r.ID
			r, err = c.Wait(ctx, id)
			if err != nil {
				return fmt.Errorf("workload %s: waiting on %s: %w", name, id, err)
			}
			if r.State != api.StateSucceeded {
				return fmt.Errorf("workload %s: run %s ended %s (error %q)", name, r.ID, r.State, r.Error)
			}
			if r.Result == nil || !r.Result.Match {
				return fmt.Errorf("workload %s: run %s has no matching self-check: %+v", name, r.ID, r.Result)
			}
			fmt.Printf("dagsmoke: %s %s run %s succeeded (nodes=%d edges=%d match=%v)\n",
				name, r.Spec.Shape, r.ID, r.Result.Nodes, r.Result.Edges, r.Result.Match)
		}
	}
	return nil
}

// phaseScenarios covers the Nabbit scenario shapes end to end: a deep-span
// chain (≥500k nodes through the iterative scheduler), a pipeline with
// parallel_work splitting node work across workers, and a dynamic DAG
// discovered at runtime — each must verify against its serial reference.
// It also pins two admission/runtime guards: a dynamic spec whose expansion
// exceeds MaxNodes must fail closed at the growth bound (a stored run in
// state failed, not a hang or a partial result), and the pipeline-cap
// overflow spec (stages·width wrapping negative) must be rejected with
// invalid_spec instead of bypassing admission.
func (sm *smoke) phaseScenarios(ctx context.Context) error {
	c := sm.c
	cases := []struct {
		name     string
		spec     api.RunSpec
		minDepth int
	}{
		{"deep-chain", api.RunSpec{Shape: api.ShapeChain, Nodes: 500001}, 500000},
		{"parallel-work", api.RunSpec{Shape: api.ShapePipeline, Stages: 10, Width: 2, Work: 65536, ParallelWork: true, Workload: "hashchain"}, 0},
		{"dynamic", api.RunSpec{Shape: api.ShapeDynamic, Stages: 8, Width: 3, EdgeProb: 0.3, Seed: 11}, 8},
	}
	for _, tc := range cases {
		r, err := c.Submit(ctx, tc.spec)
		if err != nil {
			return fmt.Errorf("%s: submit: %w", tc.name, err)
		}
		sm.submitted++
		if r, err = c.Wait(ctx, r.ID); err != nil {
			return fmt.Errorf("%s: waiting on %s: %w", tc.name, r.ID, err)
		}
		if r.State != api.StateSucceeded || r.Result == nil || !r.Result.Match {
			return fmt.Errorf("%s: run %s ended %s (error %q, result %+v), want succeeded with match",
				tc.name, r.ID, r.State, r.Error, r.Result)
		}
		if r.Result.Depth < tc.minDepth {
			return fmt.Errorf("%s: run %s depth %d, want >= %d", tc.name, r.ID, r.Result.Depth, tc.minDepth)
		}
		fmt.Printf("dagsmoke: scenario %s run %s succeeded (nodes=%d edges=%d depth=%d)\n",
			tc.name, r.ID, r.Result.Nodes, r.Result.Edges, r.Result.Depth)
	}

	// Dynamic expansion past MaxNodes fails closed at the growth bound.
	over, err := c.Submit(ctx, api.RunSpec{Shape: api.ShapeDynamic, Stages: 20, Width: 4, Seed: 7})
	if err != nil {
		return fmt.Errorf("over-cap dynamic: submit: %w", err)
	}
	sm.submitted++
	if over, err = c.Wait(ctx, over.ID); err != nil {
		return fmt.Errorf("over-cap dynamic: waiting on %s: %w", over.ID, err)
	}
	if over.State != api.StateFailed {
		return fmt.Errorf("over-cap dynamic run %s ended %s, want failed at the growth bound", over.ID, over.State)
	}
	fmt.Printf("dagsmoke: over-cap dynamic run %s failed closed (%q)\n", over.ID, over.Error)

	// The admission-bypass regression: stages·width = 3037000500² wraps
	// negative in int64, so the unpatched cap check admitted it.
	_, err = c.Submit(ctx, api.RunSpec{Shape: api.ShapePipeline, Stages: 3037000500, Width: 3037000500})
	if !errors.Is(err, api.ErrInvalidSpec) {
		return fmt.Errorf("overflow pipeline spec: got %v, want api.ErrInvalidSpec", err)
	}
	fmt.Println("dagsmoke: overflow pipeline spec rejected with invalid_spec")
	return nil
}

// phaseRejections: admission rejections must decode to sentinel errors.
func (sm *smoke) phaseRejections(ctx context.Context) error {
	c := sm.c
	if _, err := c.SubmitExplicit(ctx, 3, []api.Edge{{0, 1}, {1, 2}, {2, 0}}, client.SubmitOptions{}); !errors.Is(err, api.ErrInvalidSpec) {
		return fmt.Errorf("cyclic explicit spec: got %v, want api.ErrInvalidSpec", err)
	}
	if _, err := c.Submit(ctx, api.RunSpec{Shape: api.ShapePipeline, Stages: 2, Width: 2, Workload: "bogus"}); !errors.Is(err, api.ErrUnknownWorkload) {
		return fmt.Errorf("bogus workload: got %v, want api.ErrUnknownWorkload", err)
	}
	if _, err := c.Get(ctx, "r999999-deadbeef"); !errors.Is(err, api.ErrNotFound) {
		return fmt.Errorf("missing run: got %v, want api.ErrNotFound", err)
	}
	fmt.Println("dagsmoke: admission rejections map to sentinels")
	return nil
}

// phasePagination: the cursor walk must visit every submitted run exactly
// once.
func (sm *smoke) phasePagination(ctx context.Context) error {
	c := sm.c
	seen := map[string]bool{}
	for cursor := ""; ; {
		page, err := c.List(ctx, client.ListOptions{Limit: 3, Cursor: cursor})
		if err != nil {
			return fmt.Errorf("listing runs: %w", err)
		}
		for _, r := range page.Runs {
			if seen[r.ID] {
				return fmt.Errorf("pagination returned run %s twice", r.ID)
			}
			seen[r.ID] = true
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(seen) < sm.submitted {
		return fmt.Errorf("pagination walked %d runs, submitted %d", len(seen), sm.submitted)
	}
	fmt.Printf("dagsmoke: pagination walked %d runs\n", len(seen))
	return nil
}

// tenantSmoke checks tenant isolation end to end. It expects dagd to be
// running with the tenants from ci/tenants-smoke.json:
//
//	smoke-heavy:   max_in_flight 1, max_queue_depth 2
//	smoke-light:   no limits
//	smoke-limited: submit_rate 0.2, submit_burst 1
func tenantSmoke(ctx context.Context, base string) error {
	heavy := client.New(base, client.WithTenant("smoke-heavy"), client.WithWaitSlice(2*time.Second))
	light := client.New(base, client.WithTenant("smoke-light"), client.WithWaitSlice(2*time.Second))
	limited := client.New(base, client.WithTenant("smoke-limited"), client.WithWaitSlice(2*time.Second))

	// Saturate smoke-heavy: one long run hits the in-flight cap, two more
	// fill the depth-2 queue, so the next submission must be rejected.
	slow := api.RunSpec{Shape: api.ShapePipeline, Stages: 20000, Width: 4, Work: 2000, Workers: 2}
	var heavyIDs []string
	hog, err := heavy.Submit(ctx, slow)
	if err != nil {
		return fmt.Errorf("smoke-heavy hog submit: %w", err)
	}
	heavyIDs = append(heavyIDs, hog.ID)
	if hog.Spec.Tenant != "smoke-heavy" {
		return fmt.Errorf("heavy run attributed to %q, want smoke-heavy", hog.Spec.Tenant)
	}
	// Wait for the hog to start so the in-flight cap (not just queue depth)
	// is really holding the two queued runs back.
	for {
		r, err := heavy.Get(ctx, hog.ID)
		if err != nil {
			return fmt.Errorf("polling hog: %w", err)
		}
		if r.State == api.StateRunning {
			break
		}
		if r.State.Terminal() {
			return fmt.Errorf("hog finished before saturation (state %s); use a slower spec", r.State)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("hog never started: %w", ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
	for i := 0; i < 2; i++ {
		r, err := heavy.Submit(ctx, slow)
		if err != nil {
			return fmt.Errorf("smoke-heavy queued submit %d: %w", i, err)
		}
		heavyIDs = append(heavyIDs, r.ID)
	}
	_, err = heavy.Submit(ctx, slow)
	if !errors.Is(err, api.ErrQuotaExceeded) {
		return fmt.Errorf("over-quota submit: got %v, want api.ErrQuotaExceeded", err)
	}
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		return fmt.Errorf("quota error %v is not an *api.Error", err)
	}
	if apiErr.HTTPStatus != 429 || apiErr.RetryAfter <= 0 {
		return fmt.Errorf("quota rejection = status %d retry-after %v, want 429 with a positive Retry-After",
			apiErr.HTTPStatus, apiErr.RetryAfter)
	}
	fmt.Println("dagsmoke: smoke-heavy saturated its quota -> 429 quota_exceeded + Retry-After")

	// The other tenant is unaffected: its submission is accepted and
	// completes while smoke-heavy stays saturated.
	lr, err := light.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{Work: 10})
	if err != nil {
		return fmt.Errorf("smoke-light submit during heavy saturation: %w", err)
	}
	if lr, err = light.Wait(ctx, lr.ID); err != nil || lr.State != api.StateSucceeded {
		return fmt.Errorf("smoke-light run during saturation = %v, %v; want succeeded", lr, err)
	}
	fmt.Println("dagsmoke: smoke-light submitted and succeeded during the saturation")

	// The rate-limited tenant: the burst token admits one submission, the
	// next is rejected with a computed Retry-After.
	if _, err := limited.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{}); err != nil {
		return fmt.Errorf("smoke-limited first submit within burst: %w", err)
	}
	_, err = limited.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{})
	if !errors.Is(err, api.ErrRateLimited) {
		return fmt.Errorf("over-rate submit: got %v, want api.ErrRateLimited", err)
	}
	apiErr = nil
	if !errors.As(err, &apiErr) || apiErr.RetryAfter <= 0 {
		return fmt.Errorf("rate-limit rejection lacks a positive Retry-After: %v", err)
	}
	fmt.Printf("dagsmoke: smoke-limited -> 429 rate_limited, Retry-After %v\n", apiErr.RetryAfter)

	// An unconfigured tenant collapses onto the catch-all default.
	anon := client.New(base, client.WithTenant("smoke-unknown"))
	ar, err := anon.SubmitExplicit(ctx, 4, diamond, client.SubmitOptions{})
	if err != nil {
		return fmt.Errorf("unknown-tenant submit: %w", err)
	}
	if ar.Spec.Tenant != "default" {
		return fmt.Errorf("unknown tenant attributed to %q, want default", ar.Spec.Tenant)
	}

	// Clean up the saturation so the smoke leaves no multi-second backlog.
	for _, id := range heavyIDs {
		if _, err := heavy.Cancel(ctx, id); err != nil && !errors.Is(err, api.ErrRunTerminal) {
			return fmt.Errorf("cancelling heavy run %s: %w", id, err)
		}
	}
	fmt.Println("dagsmoke: tenant isolation checks passed")
	return nil
}
