// Command dagload is an open-loop load generator for a running dagd: it
// submits runs through the typed client (pkg/client) at a fixed target
// rate — never slowing down because the server is slow, which is what
// makes the measured latencies honest under overload — with a seeded mix
// of workloads, DAG shapes, and tenants, waits each run to a terminal
// state, and emits a machine-readable JSON report:
//
//   - submit-to-terminal latency p50/p95/p99/max/mean as observed by the
//     client (includes queueing, execution, and long-poll delivery),
//   - the server-side queue-vs-execute breakdown computed from the run
//     lifecycle timestamps (created_at → dispatched_at is queue wait,
//     started_at → finished_at is execution),
//   - offered vs achieved RPS, and error/429 tallies by cause.
//
// The committed BENCH_service.json at the repo root pairs two dagload
// reports — an in-memory baseline and an fsync-on sharded-WAL run — under
// the keys "baseline" and "fsync_sharded"; see README "Observability" for
// how to refresh it. CI runs short fixed-seed sweeps against a loose p99
// ceiling (-p99-ceiling) and, with -fsync on, an achieved-vs-offered RPS
// floor, so gross service-latency regressions fail the build.
//
// Usage:
//
//	dagload -base http://127.0.0.1:8080 -rps 25 -duration 10s
//	dagload -rps 50 -duration 30s -tenants bench-a,bench-b -out report.json
//	dagload -rps 10 -duration 3s -seed 42 -p99-ceiling 5s   # the CI gate
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/api"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/client"
)

// LatencySummary aggregates one latency distribution, in milliseconds.
type LatencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
	Mean  float64 `json:"mean_ms"`
}

// Report is the JSON document dagload emits (BENCH_service.json holds one
// per variant).
type Report struct {
	GeneratedAt string `json:"generated_at"`
	Config      struct {
		Base       string   `json:"base"`
		RPS        float64  `json:"rps"`
		Duration   string   `json:"duration"`
		Seed       int64    `json:"seed"`
		Workloads  []string `json:"workloads"`
		Shapes     []string `json:"shapes"`
		Tenants    []string `json:"tenants,omitempty"`
		Work       int      `json:"work"`
		Nodes      int      `json:"nodes"`
		EdgeProb   float64  `json:"p"`
		Stages     int      `json:"stages"`
		Width      int      `json:"width"`
		ChainNodes int      `json:"chain_nodes,omitempty"`
		DynStages  int      `json:"dyn_stages,omitempty"`
		DynWidth   int      `json:"dyn_width,omitempty"`
	} `json:"config"`

	Offered     int     `json:"offered"`      // submissions attempted
	OfferedRPS  float64 `json:"offered_rps"`  // attempted / load window
	Completed   int     `json:"completed"`    // runs that reached succeeded
	AchievedRPS float64 `json:"achieved_rps"` // succeeded / total wall time
	Failed      int     `json:"failed"`       // runs that reached failed/cancelled
	Rejected429 int     `json:"rejected_429"` // rate_limited + quota_exceeded + queue_full
	SubmitErrs  int     `json:"submit_errors"`
	WaitErrs    int     `json:"wait_errors"` // submitted but never observed terminal

	// SubmitToTerminal is measured on the client clock: from just before
	// POST /v1/runs to the long-poll response that showed a terminal state.
	SubmitToTerminal LatencySummary `json:"submit_to_terminal"`
	// QueueWait, LeaseWait, and Execute are the server-side breakdown from
	// the run's lifecycle timestamps, over the same completed runs.
	// LeaseWait (dispatched_at → started_at) is the cost of getting a
	// picked run actually running: the WAL begin record embedded, plus the
	// lease grant round-trip when the server leases to a dagworker fleet.
	QueueWait LatencySummary `json:"queue_wait"`
	LeaseWait LatencySummary `json:"lease_wait"`
	Execute   LatencySummary `json:"execute"`
}

// outcome is one submission's result, collected from the worker goroutines.
type outcome struct {
	state      api.State
	latency    time.Duration // submit → terminal observed, client clock
	queueWait  time.Duration // created_at → dispatched_at, server clock
	leaseWait  time.Duration // dispatched_at → started_at, server clock
	execute    time.Duration // started_at → finished_at, server clock
	rejected   bool          // 429 / queue_full at admission
	submitErr  bool          // any other submit failure
	waitErr    bool          // submitted, but terminal state never observed
	hasServerT bool          // queueWait/execute are valid
}

func main() {
	var (
		base       = flag.String("base", "http://127.0.0.1:8080", "dagd base URL")
		rps        = flag.Float64("rps", 25, "target (offered) submissions per second — open loop, not adaptive")
		duration   = flag.Duration("duration", 10*time.Second, "load window; in-flight runs are still drained afterwards")
		seed       = flag.Int64("seed", 1, "seed for the workload/shape/tenant mix (fixes the submission sequence)")
		workloads  = flag.String("workloads", "pathcount,hashchain,longestpath", "comma-separated workload mix")
		shapes     = flag.String("shapes", "pipeline,random", "comma-separated shape mix (pipeline, random, chain, dynamic)")
		tenantsCSV = flag.String("tenants", "", "comma-separated tenants to round through via X-Tenant; empty = default tenant only")
		work       = flag.Int("work", 50, "busy-work iterations per node")
		nodes      = flag.Int("nodes", 200, "node count for random-shape runs")
		edgeProb   = flag.Float64("p", 0.02, "forward-edge probability for random-shape runs")
		stages     = flag.Int("stages", 50, "pipeline depth for pipeline-shape runs")
		width      = flag.Int("width", 4, "pipeline width for pipeline-shape runs")
		chainNodes = flag.Int("chain-nodes", 100000, "node count for chain-shape (deep-span) runs")
		dynStages  = flag.Int("dyn-stages", 8, "expansion depth for dynamic-shape runs")
		dynWidth   = flag.Int("dyn-width", 2, "max branching factor for dynamic-shape runs")
		waitBudget = flag.Duration("wait", 60*time.Second, "per-run budget to observe a terminal state after the load window closes")
		out        = flag.String("out", "", "write the JSON report here instead of stdout")
		p99Ceiling = flag.Duration("p99-ceiling", 0, "exit non-zero if p99 submit-to-terminal latency exceeds this (0 = no gate)")
	)
	flag.Parse()

	if *rps <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "dagload: -rps and -duration must be positive")
		os.Exit(2)
	}
	wls := splitCSV(*workloads)
	shs := splitCSV(*shapes)
	tns := splitCSV(*tenantsCSV)
	if len(wls) == 0 || len(shs) == 0 {
		fmt.Fprintln(os.Stderr, "dagload: need at least one workload and one shape")
		os.Exit(2)
	}
	for _, s := range shs {
		switch s {
		case api.ShapePipeline, api.ShapeRandom, api.ShapeChain, api.ShapeDynamic:
		default:
			fmt.Fprintf(os.Stderr, "dagload: unsupported shape %q (want pipeline, random, chain, or dynamic)\n", s)
			os.Exit(2)
		}
	}

	// One client per tenant so the X-Tenant header is fixed per handle;
	// index 0 is the bare default-tenant client when no tenants were named.
	clients := []*client.Client{client.New(*base, client.WithWaitSlice(2*time.Second))}
	if len(tns) > 0 {
		clients = clients[:0]
		for _, tn := range tns {
			clients = append(clients, client.New(*base, client.WithTenant(tn), client.WithWaitSlice(2*time.Second)))
		}
	}

	// The mix sequence is drawn up front from the seed, so run i always
	// gets the same (workload, shape, client) regardless of timing.
	total := int(*rps * duration.Seconds())
	if total < 1 {
		total = 1
	}
	rng := rand.New(rand.NewSource(*seed))
	type pick struct {
		spec api.RunSpec
		c    *client.Client
	}
	picks := make([]pick, total)
	for i := range picks {
		spec := api.RunSpec{
			Workload: wls[rng.Intn(len(wls))],
			Work:     *work,
		}
		switch shs[rng.Intn(len(shs))] {
		case api.ShapePipeline:
			spec.Shape, spec.Stages, spec.Width = api.ShapePipeline, *stages, *width
		case api.ShapeRandom:
			spec.Shape, spec.Nodes, spec.EdgeProb = api.ShapeRandom, *nodes, *edgeProb
			spec.Seed = rng.Int63n(1 << 30)
		case api.ShapeChain:
			spec.Shape, spec.Nodes = api.ShapeChain, *chainNodes
		case api.ShapeDynamic:
			spec.Shape, spec.Stages, spec.Width = api.ShapeDynamic, *dynStages, *dynWidth
			spec.EdgeProb = 0.2
			spec.Seed = rng.Int63n(1 << 30)
		}
		picks[i] = pick{spec: spec, c: clients[rng.Intn(len(clients))]}
	}

	fmt.Fprintf(os.Stderr, "dagload: offering %d runs at %.1f rps over %s against %s\n",
		total, *rps, *duration, *base)

	interval := time.Duration(float64(time.Second) / *rps)
	outcomes := make([]outcome, total)
	var wg sync.WaitGroup
	start := time.Now()
	ticker := time.NewTicker(interval)
	for i := 0; i < total; i++ {
		if i > 0 {
			<-ticker.C
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i] = oneRun(picks[i].c, picks[i].spec, *waitBudget)
		}(i)
	}
	ticker.Stop()
	loadWindow := time.Since(start)
	wg.Wait()
	wall := time.Since(start)

	rep := buildReport(outcomes, loadWindow, wall)
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Config.Base = *base
	rep.Config.RPS = *rps
	rep.Config.Duration = duration.String()
	rep.Config.Seed = *seed
	rep.Config.Workloads = wls
	rep.Config.Shapes = shs
	rep.Config.Tenants = tns
	rep.Config.Work = *work
	rep.Config.Nodes = *nodes
	rep.Config.EdgeProb = *edgeProb
	rep.Config.Stages = *stages
	rep.Config.Width = *width
	rep.Config.ChainNodes = *chainNodes
	rep.Config.DynStages = *dynStages
	rep.Config.DynWidth = *dynWidth

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagload:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dagload:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dagload: report written to %s\n", *out)
	} else {
		os.Stdout.Write(blob)
	}

	fmt.Fprintf(os.Stderr,
		"dagload: offered %d (%.1f rps) completed %d (%.1f rps) failed %d 429s %d errs %d | submit→terminal p50 %.1fms p95 %.1fms p99 %.1fms max %.1fms\n",
		rep.Offered, rep.OfferedRPS, rep.Completed, rep.AchievedRPS,
		rep.Failed, rep.Rejected429, rep.SubmitErrs+rep.WaitErrs,
		rep.SubmitToTerminal.P50, rep.SubmitToTerminal.P95, rep.SubmitToTerminal.P99, rep.SubmitToTerminal.Max)

	switch {
	case rep.Completed == 0:
		fmt.Fprintln(os.Stderr, "dagload: FAIL: no run completed")
		os.Exit(1)
	case rep.Failed > 0:
		fmt.Fprintf(os.Stderr, "dagload: FAIL: %d runs ended failed/cancelled\n", rep.Failed)
		os.Exit(1)
	case *p99Ceiling > 0 && rep.SubmitToTerminal.P99 > float64(p99Ceiling.Milliseconds()):
		fmt.Fprintf(os.Stderr, "dagload: FAIL: p99 %.1fms exceeds ceiling %s\n",
			rep.SubmitToTerminal.P99, *p99Ceiling)
		os.Exit(1)
	}
}

// oneRun drives a single submission to a terminal state and classifies the
// result. The wait budget applies from submission, so runs stuck behind a
// long queue still get their full drain window after the load stops.
func oneRun(c *client.Client, spec api.RunSpec, waitBudget time.Duration) outcome {
	ctx, cancel := context.WithTimeout(context.Background(), waitBudget)
	defer cancel()

	t0 := time.Now()
	r, err := c.Submit(ctx, spec)
	if err != nil {
		if errors.Is(err, api.ErrRateLimited) || errors.Is(err, api.ErrQuotaExceeded) || errors.Is(err, api.ErrQueueFull) {
			return outcome{rejected: true}
		}
		return outcome{submitErr: true}
	}
	r, err = c.Wait(ctx, r.ID)
	if err != nil || r == nil || !r.State.Terminal() {
		return outcome{waitErr: true}
	}
	o := outcome{state: r.State, latency: time.Since(t0)}
	if r.DispatchedAt != nil && r.StartedAt != nil && r.FinishedAt != nil {
		o.queueWait = r.DispatchedAt.Sub(r.CreatedAt)
		o.leaseWait = r.StartedAt.Sub(*r.DispatchedAt)
		o.execute = r.FinishedAt.Sub(*r.StartedAt)
		o.hasServerT = true
	}
	return o
}

func buildReport(outcomes []outcome, loadWindow, wall time.Duration) *Report {
	rep := &Report{Offered: len(outcomes)}
	var latencies, queueWaits, leaseWaits, executes []float64
	for _, o := range outcomes {
		switch {
		case o.rejected:
			rep.Rejected429++
		case o.submitErr:
			rep.SubmitErrs++
		case o.waitErr:
			rep.WaitErrs++
		case o.state == api.StateSucceeded:
			rep.Completed++
			latencies = append(latencies, o.latency.Seconds()*1e3)
			if o.hasServerT {
				queueWaits = append(queueWaits, o.queueWait.Seconds()*1e3)
				leaseWaits = append(leaseWaits, o.leaseWait.Seconds()*1e3)
				executes = append(executes, o.execute.Seconds()*1e3)
			}
		default:
			rep.Failed++
		}
	}
	if loadWindow > 0 {
		rep.OfferedRPS = round2(float64(rep.Offered) / loadWindow.Seconds())
	}
	if wall > 0 {
		rep.AchievedRPS = round2(float64(rep.Completed) / wall.Seconds())
	}
	rep.SubmitToTerminal = summarize(latencies)
	rep.QueueWait = summarize(queueWaits)
	rep.LeaseWait = summarize(leaseWaits)
	rep.Execute = summarize(executes)
	return rep
}

// summarize computes the percentile summary of a millisecond sample set.
func summarize(ms []float64) LatencySummary {
	s := LatencySummary{Count: len(ms)}
	if len(ms) == 0 {
		return s
	}
	sort.Float64s(ms)
	var sum float64
	for _, v := range ms {
		sum += v
	}
	s.P50 = round2(percentile(ms, 0.50))
	s.P95 = round2(percentile(ms, 0.95))
	s.P99 = round2(percentile(ms, 0.99))
	s.Max = round2(ms[len(ms)-1])
	s.Mean = round2(sum / float64(len(ms)))
	return s
}

// percentile is the nearest-rank percentile of a sorted sample: the value
// at 1-based rank ceil(q·n). Rounding q·n half-up instead (the previous
// implementation) lands one rank low whenever q·n has a fractional part
// below 0.5 — p95 of 31 samples read rank 29 instead of rank 30 —
// systematically understating tail latency.
func percentile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
