package main

import "testing"

// TestPercentileNearestRank pins the nearest-rank definition: the q-th
// percentile of n sorted samples is the element at 1-based rank ⌈q·n⌉.
//
// The regression case is p95 of 31 samples: q·n = 29.45, so the correct
// rank is ⌈29.45⌉ = 30. The old implementation computed int(q·n+0.5)-1 =
// int(29.95)-1 = 28 (rank 29), systematically understating tail latencies
// whenever frac(q·n) < 0.5.
func TestPercentileNearestRank(t *testing.T) {
	// sorted[i] = rank i+1, so the expected value IS the expected rank.
	ranks := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(i + 1)
		}
		return s
	}
	cases := []struct {
		name string
		n    int
		q    float64
		want float64 // 1-based rank = ⌈q·n⌉
	}{
		{"p95 of 31 (regression: old code said 29)", 31, 0.95, 30},
		{"p50 of 31 (q*n=15.5, old code said 16 too — integral+0.5 rounds up)", 31, 0.50, 16},
		{"p50 of 10 (q*n=5.0 exact)", 10, 0.50, 5},
		{"p99 of 200 (q*n=198 exact)", 200, 0.99, 198},
		{"p99 of 10 (q*n=9.9, old code said 10 via rounding — agrees)", 10, 0.99, 10},
		{"p95 of 10 (q*n=9.5)", 10, 0.95, 10},
		{"p99 of 101 (q*n=99.99... → 100; old int(100.49)-1=99 rank 100 agrees)", 101, 0.99, 100},
		{"p95 of 33 (q*n=31.35 → rank 32; old said 31)", 33, 0.95, 32},
		{"p50 of 1", 1, 0.50, 1},
		{"p0 clamps to first", 5, 0, 1},
		{"p100 of 7", 7, 1.0, 7},
	}
	for _, tc := range cases {
		if got := percentile(ranks(tc.n), tc.q); got != tc.want {
			t.Errorf("%s: percentile(n=%d, q=%v) = rank %v, want rank %v", tc.name, tc.n, tc.q, got, tc.want)
		}
	}
}
