package main

import (
	"expvar"
	"log"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/server"
)

// serveDebug runs the private debug listener: the full net/http/pprof
// surface (CPU/heap/goroutine/block profiles and execution traces), expvar
// runtime internals, and a second /metrics mount so a scraper pointed at
// the debug port never touches the public API listener. It is deliberately
// outside the main server's middleware chain — profile downloads can run
// for 30s+ and must not pollute the request-latency histograms.
//
// The listener has no auth: bind it to localhost or a private interface.
func serveDebug(addr string, srv *server.Server) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", srv.MetricsHandler())

	s := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("dagd: debug listener on %s (pprof, expvar, /metrics)", addr)
	if err := s.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Printf("dagd: debug listener: %v", err)
	}
}
