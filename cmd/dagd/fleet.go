package main

import (
	"log"
	"net"
	"net/http"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
)

// serveFleet runs the internal worker API listener. It is a separate
// listener from the public v1 API on purpose: workers are infrastructure,
// not clients — the fleet port can be firewalled to the worker network
// while the public port faces users, and lease long-polls never occupy
// the public server's connections. Like the debug listener it has no
// auth: bind it to localhost or a private interface.
//
// The listener is bound synchronously (so a bad address fails dagd at
// startup, like -addr does) and served in the background. The bound
// address is logged for scripts that pass ":0".
func serveFleet(addr string, svc *core.Service) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &http.Server{
		Handler: svc.FleetHandler(),
		// Covers request headers only; lease long-polls run under the
		// handler's own deadline and must not be cut short here.
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("dagd: fleet listener on %s (worker API)", ln.Addr())
	go func() {
		if err := s.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("dagd: fleet listener: %v", err)
		}
	}()
	return s, nil
}
