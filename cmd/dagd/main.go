// Command dagd is the long-running DAG execution service: it accepts run
// specs over a JSON HTTP API, executes them concurrently through the
// work-stealing scheduler, and tracks each run's lifecycle
// (queued → running → succeeded|failed|cancelled) in a run store — in
// memory by default, or durable with -data-dir, which logs every state
// transition to a checksummed write-ahead log and recovers it on boot:
// finished runs are restored as history and interrupted runs re-execute.
// Each spec may name any registered workload (pathcount, hashchain,
// longestpath, ...); specs that name none get the -workload default.
//
// Usage:
//
//	dagd -addr :8080 -queue 256 -dispatchers 4
//	dagd -data-dir /var/lib/dagd            # survive restarts
//	dagd -data-dir /var/lib/dagd -fsync     # survive power loss too
//	dagd -workload hashchain
//	dagd -tenants tenants.json              # multi-tenant fair scheduling
//	dagd -fleet-addr :8081                  # lease runs to dagworker fleet
//
// With -tenants, submissions are attributed to the tenant named by the
// X-Tenant request header (absent = "default") and scheduled by weighted
// deficit round-robin with priority classes, per-tenant quotas, and
// token-bucket rate limits (429 + Retry-After past them).
//
// With -fleet-addr, dagd becomes a coordinator: it stops executing runs
// in-process and instead serves the internal worker API on that address,
// leasing ready runs to dagworker processes. A lease not heartbeated
// within -lease-ttl is requeued (restarts++) for a surviving worker.
// Without -fleet-addr nothing changes — runs execute embedded as before.
//
// Submit and poll with curl (or use the typed client in pkg/client):
//
//	curl -s localhost:8080/v1/workloads
//	curl -s -X POST localhost:8080/v1/runs -H 'Content-Type: application/json' \
//	    -d '{"shape":"pipeline","stages":100,"width":4}'
//	curl -s -X POST localhost:8080/v1/runs -H 'Content-Type: application/json' \
//	    -d '{"shape":"explicit","nodes":4,"edges":[[0,1],[0,2],[1,3],[2,3]]}'
//	curl -s 'localhost:8080/v1/runs/<id>?wait=5s'
//	curl -s 'localhost:8080/v1/runs?limit=10'
//
// Errors are structured: {"error":{"code":"invalid_spec",...}} — see
// pkg/api for the full code table. SIGINT/SIGTERM trigger a graceful
// shutdown that flips /readyz to 503 and drains in-flight runs for up to
// -drain-timeout before force-cancelling them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		queueDepth   = flag.Int("queue", 256, "dispatch queue depth (max waiting runs)")
		dispatchers  = flag.Int("dispatchers", 0, "concurrent run executions (0 = NumCPU)")
		runWorkers   = flag.Int("run-workers", 0, "default scheduler pool size per run (0 = NumCPU)")
		workload     = flag.String("workload", "", "default workload for specs that name none (empty = "+core.DefaultWorkload+")")
		retainRuns   = flag.Int("retain", 0, "terminal runs to keep, oldest evicted first (0 = 4096, negative = unlimited)")
		dataDir      = flag.String("data-dir", "", "directory for the durable run WAL; empty = in-memory store (state lost on restart)")
		fsync        = flag.Bool("fsync", false, "fsync the WAL before acknowledging each transition (needs -data-dir); off = durable against crash, not power loss")
		fsyncDelay   = flag.Duration("fsync-max-delay", 0, "max time a WAL group-commit batch may keep accumulating while appends arrive (0 = 2ms, negative = sync each batch immediately; needs -fsync)")
		walShards    = flag.Int("wal-shards", 0, "independent WAL shard directories (0 = adopt existing layout, or 8 when fresh; needs -data-dir); must match the data dir's manifest on restart")
		compactEvery = flag.Int("compact-threshold", 0, "WAL records per shard between compactions into a snapshot file (0 = 4096, negative = never; needs -data-dir)")
		tenantsFile  = flag.String("tenants", "", "JSON tenant config file (weights, priorities, quotas, rate limits); empty = single default tenant")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight runs on shutdown")
		debugAddr    = flag.String("debug-addr", "", "optional second listener serving net/http/pprof, expvar, and /metrics; keep it private — it exposes profiles and runtime internals")
		fleetAddr    = flag.String("fleet-addr", "", "listener for the internal worker API; set to lease runs to dagworker processes instead of executing in-process")
		leaseTTL     = flag.Duration("lease-ttl", 0, "how long a worker lease survives without a heartbeat before its run is requeued (0 = "+core.DefaultLeaseTTL.String()+"; needs -fleet-addr)")
		heartbeatIvl = flag.Duration("heartbeat-interval", 0, "cadence workers are told to heartbeat at; must stay under half of -lease-ttl (0 = "+core.DefaultHeartbeatInterval.String()+"; needs -fleet-addr)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if _, err := core.LookupWorkload(*workload); err != nil {
		fmt.Fprintln(os.Stderr, "dagd:", err)
		os.Exit(2)
	}
	if *dataDir == "" && (*fsync || *compactEvery != 0 || *walShards != 0 || *fsyncDelay != 0) {
		fmt.Fprintln(os.Stderr, "dagd: -fsync, -fsync-max-delay, -wal-shards, and -compact-threshold require -data-dir")
		os.Exit(2)
	}
	if !*fsync && *fsyncDelay != 0 {
		fmt.Fprintln(os.Stderr, "dagd: -fsync-max-delay requires -fsync")
		os.Exit(2)
	}
	if *fleetAddr == "" && (*leaseTTL != 0 || *heartbeatIvl != 0) {
		fmt.Fprintln(os.Stderr, "dagd: -lease-ttl and -heartbeat-interval require -fleet-addr")
		os.Exit(2)
	}
	if *leaseTTL < 0 || *heartbeatIvl < 0 {
		fmt.Fprintln(os.Stderr, "dagd: -lease-ttl and -heartbeat-interval must be positive")
		os.Exit(2)
	}
	if *fleetAddr != "" {
		// Resolve the zero defaults before checking the ratio, so setting
		// only one of the pair is still validated against the other's
		// default (e.g. -lease-ttl 5ms alone is caught here).
		ttl, hb := *leaseTTL, *heartbeatIvl
		if ttl == 0 {
			ttl = core.DefaultLeaseTTL
		}
		if hb == 0 {
			hb = core.DefaultHeartbeatInterval
		}
		if hb >= ttl/2 {
			fmt.Fprintf(os.Stderr, "dagd: -heartbeat-interval %v must be under half of -lease-ttl %v (one dropped heartbeat must not expire a healthy lease)\n", hb, ttl)
			os.Exit(2)
		}
	}
	var tenants []core.TenantConfig
	if *tenantsFile != "" {
		var err error
		if tenants, err = core.LoadTenantConfigs(*tenantsFile); err != nil {
			fmt.Fprintln(os.Stderr, "dagd:", err)
			os.Exit(2)
		}
		log.Printf("dagd: loaded %d tenant configs from %s", len(tenants), *tenantsFile)
	}
	svc, err := core.NewService(core.ServiceOptions{
		QueueDepth:        *queueDepth,
		Dispatchers:       *dispatchers,
		DefaultRunWorkers: *runWorkers,
		DefaultWorkload:   *workload,
		RetainRuns:        *retainRuns,
		DataDir:           *dataDir,
		Fsync:             *fsync,
		FsyncMaxDelay:     *fsyncDelay,
		WALShards:         *walShards,
		CompactThreshold:  *compactEvery,
		Tenants:           tenants,
		Remote:            *fleetAddr != "",
		LeaseTTL:          *leaseTTL,
		HeartbeatInterval: *heartbeatIvl,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagd:", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		log.Printf("dagd: durable store at %s (%d runs restored, %d interrupted runs re-admitted)",
			*dataDir, svc.Stats().Runs, svc.Recovered())
	}
	srv := server.New(svc)
	if *debugAddr != "" {
		go serveDebug(*debugAddr, srv)
	}
	if *fleetAddr != "" {
		fleetSrv, err := serveFleet(*fleetAddr, svc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagd:", err)
			os.Exit(1)
		}
		// The fleet listener outlives ctx: during the drain that follows
		// SIGTERM, workers must still heartbeat and report results for the
		// dispatcher to reach empty. It closes only when serve returns.
		defer fleetSrv.Close()
	}
	err = srv.ListenAndServe(ctx, *addr, *drainTimeout)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dagd:", err)
		os.Exit(1)
	}
}
