package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/fleet"
)

// TestHeartbeatCadenceUnderSlowCoordinator is the lease-liveness regression
// test: the old loop slept time.After(interval) AFTER each RPC returned, so
// the effective period was interval + round-trip. With the interval pinned
// near the enforced TTL/2 bound, a slow coordinator pushed consecutive
// heartbeats past the lease TTL and live runs were swept mid-flight.
//
// The coordinator here answers each heartbeat only after a delay equal to
// the full interval. Post-fix (time.Ticker) the inter-arrival gap stays at
// max(interval, round-trip) ≈ 150ms; pre-fix it was interval + delay =
// 300ms. The 240ms assertion bound plays the role of the lease TTL.
func TestHeartbeatCadenceUnderSlowCoordinator(t *testing.T) {
	const (
		interval = 150 * time.Millisecond
		delay    = 150 * time.Millisecond
		maxGap   = 240 * time.Millisecond
	)
	var (
		mu       sync.Mutex
		arrivals []time.Time
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/fleet/v1/heartbeat" {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		arrivals = append(arrivals, time.Now())
		mu.Unlock()
		time.Sleep(delay) // the slow coordinator
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(fleet.HeartbeatResponse{})
	}))
	defer ts.Close()

	w := &worker{
		client:    fleet.NewClient(ts.URL),
		name:      "hb-test",
		capacity:  1,
		id:        "hb-test-0001",
		heartbeat: interval,
		running:   make(map[string]*task),
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go w.heartbeatLoop(stop, done)
	time.Sleep(8*interval + interval/2)
	close(stop)
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(arrivals) < 5 {
		t.Fatalf("only %d heartbeats arrived in %v at a %v cadence (period is not the interval)",
			len(arrivals), 8*interval+interval/2, interval)
	}
	for i := 1; i < len(arrivals); i++ {
		if gap := arrivals[i].Sub(arrivals[i-1]); gap > maxGap {
			t.Errorf("heartbeat gap %d→%d = %v, want <= %v (slow coordinator must not stretch the period)",
				i-1, i, gap, maxGap)
		}
	}
}
