// Command dagworker is the execution half of dagd's distributed mode: it
// registers with a coordinator's fleet listener (dagd -fleet-addr),
// long-polls for run leases, executes each run through the same
// work-stealing scheduler dagd uses embedded, and reports results back.
//
// Usage:
//
//	dagworker -coordinator http://127.0.0.1:8081
//	dagworker -coordinator http://coord:8081 -capacity 4 -workloads pathcount,hashchain
//
// While a run executes, the worker heartbeats on the interval the
// coordinator announced at registration; each heartbeat extends the leases
// of every run it still holds and relays coordinator-side decisions back —
// runs to cancel (the worker aborts them and reports cancelled) and leases
// already given up on (the worker aborts them and reports nothing, since a
// re-dispatched attempt owns them now).
//
// SIGINT/SIGTERM drain: the worker stops leasing, finishes its in-flight
// runs, reports them, and exits. A coordinator restart is survived by
// re-registering with backoff; in-flight work from the old registration is
// abandoned, because the restarted coordinator has already recovered those
// runs as queued.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/fleet"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "base URL of the coordinator's fleet listener, e.g. http://127.0.0.1:8081 (required)")
		name        = flag.String("name", "", "worker name, the prefix of the coordinator-assigned worker ID (empty = hostname)")
		capacity    = flag.Int("capacity", 1, "runs executed concurrently")
		workloads   = flag.String("workloads", "", "comma-separated workloads this worker accepts (empty = all registered)")
		shapes      = flag.String("shapes", "", "comma-separated DAG shapes this worker accepts, e.g. random,chain,dynamic (empty = all)")
		runWorkers  = flag.Int("run-workers", 0, "default scheduler pool size per run (0 = NumCPU)")
	)
	flag.Parse()

	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "dagworker: -coordinator is required")
		os.Exit(2)
	}
	var accepts []string
	if *workloads != "" {
		for _, wl := range strings.Split(*workloads, ",") {
			wl = strings.TrimSpace(wl)
			if _, err := core.LookupWorkload(wl); err != nil {
				fmt.Fprintln(os.Stderr, "dagworker:", err)
				os.Exit(2)
			}
			accepts = append(accepts, wl)
		}
	}
	var acceptShapes []string
	if *shapes != "" {
		for _, sh := range strings.Split(*shapes, ",") {
			sh = strings.TrimSpace(sh)
			if _, err := core.ParseShape(sh); err != nil {
				fmt.Fprintln(os.Stderr, "dagworker:", err)
				os.Exit(2)
			}
			acceptShapes = append(acceptShapes, sh)
		}
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "dagworker"
		}
		*name = host
	}
	if *capacity < 1 {
		*capacity = 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	w := &worker{
		client:     fleet.NewClient(strings.TrimRight(*coordinator, "/")),
		name:       *name,
		capacity:   *capacity,
		workloads:  accepts,
		shapes:     acceptShapes,
		runWorkers: *runWorkers,
		running:    make(map[string]*task),
	}
	if err := w.run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "dagworker:", err)
		os.Exit(1)
	}
}

// task is one in-flight run. cancel aborts its execution context; lost
// (guarded by worker.mu) marks that the lease is gone and the result must
// be discarded instead of reported.
type task struct {
	cancel context.CancelFunc
	lost   bool
}

// worker owns one registration with the coordinator and up to capacity
// concurrent executions.
type worker struct {
	client     *fleet.Client
	name       string
	capacity   int
	workloads  []string
	shapes     []string
	runWorkers int

	mu        sync.Mutex
	id        string // current worker ID; "" = must (re-)register
	heartbeat time.Duration
	running   map[string]*task // run ID → in-flight execution

	inflight sync.WaitGroup
}

// reportTimeout bounds every non-lease coordinator call (register,
// heartbeat, complete); they are small posts that either answer fast or
// should be retried.
const reportTimeout = 10 * time.Second

func (w *worker) run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}

	// Heartbeats outlive ctx on purpose: after SIGTERM the in-flight runs
	// still hold leases that must be extended until they finish reporting.
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go w.heartbeatLoop(hbStop, hbDone)

	sem := make(chan struct{}, w.capacity)
	backoff := time.Second
lease:
	for {
		select {
		case <-ctx.Done():
			break lease
		case sem <- struct{}{}:
		}
		workerID := w.currentID()
		r, err := w.client.Lease(ctx, workerID, defaultLeaseWait)
		switch {
		case err == nil:
			backoff = time.Second
			log.Printf("dagworker: leased run %s (tenant %s, workload %s, restarts %d)",
				r.ID, r.Spec.Tenant, r.Spec.Workload, r.Restarts)
			w.inflight.Add(1)
			go func() {
				defer w.inflight.Done()
				defer func() { <-sem }()
				w.execute(workerID, r)
			}()
			continue // keep sem held by the executor
		case errors.Is(err, fleet.ErrNoWork):
			backoff = time.Second
		case errors.Is(err, fleet.ErrDraining):
			log.Printf("dagworker: coordinator draining, exiting")
			<-sem
			break lease
		case errors.Is(err, fleet.ErrUnregistered):
			log.Printf("dagworker: coordinator forgot us (restart?), re-registering")
			if rerr := w.reregister(ctx, workerID); rerr != nil {
				<-sem
				break lease
			}
		case ctx.Err() != nil:
			<-sem
			break lease
		default:
			// Coordinator unreachable or 5xx: back off and keep trying —
			// workers outlive coordinator hiccups.
			log.Printf("dagworker: lease poll failed: %v (retrying in %v)", err, backoff)
			select {
			case <-ctx.Done():
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 10*time.Second {
				backoff = 10 * time.Second
			}
		}
		<-sem
	}

	log.Printf("dagworker: draining %d in-flight runs", len(w.snapshotRunning()))
	w.inflight.Wait()
	close(hbStop)
	<-hbDone
	return nil
}

// defaultLeaseWait mirrors the server's default long-poll window.
const defaultLeaseWait = 10 * time.Second

func (w *worker) currentID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// interval is the heartbeat cadence the coordinator announced, falling back
// to the fleet default before registration completes.
func (w *worker) interval() time.Duration {
	w.mu.Lock()
	ivl := w.heartbeat
	w.mu.Unlock()
	if ivl <= 0 {
		ivl = fleet.DefaultHeartbeatInterval
	}
	return ivl
}

func (w *worker) snapshotRunning() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]string, 0, len(w.running))
	for id := range w.running {
		ids = append(ids, id)
	}
	return ids
}

// register acquires a fresh worker ID, retrying with backoff until the
// coordinator answers or ctx ends.
func (w *worker) register(ctx context.Context) error {
	backoff := 500 * time.Millisecond
	for {
		cctx, cancel := context.WithTimeout(context.Background(), reportTimeout)
		resp, err := w.client.Register(cctx, fleet.RegisterRequest{
			Name:      w.name,
			Capacity:  w.capacity,
			Workloads: w.workloads,
			Shapes:    w.shapes,
		})
		cancel()
		if err == nil {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.heartbeat = time.Duration(resp.HeartbeatMillis) * time.Millisecond
			if w.heartbeat <= 0 {
				w.heartbeat = fleet.DefaultHeartbeatInterval
			}
			w.mu.Unlock()
			log.Printf("dagworker: registered as %s (lease ttl %v, heartbeat %v)",
				resp.WorkerID, time.Duration(resp.LeaseTTLMillis)*time.Millisecond, w.heartbeat)
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("registering with %s: %w", w.name, err)
		}
		log.Printf("dagworker: register failed: %v (retrying in %v)", err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// reregister replaces a registration the coordinator no longer recognizes
// (it restarted, or our registration lapsed). In-flight work from the old
// registration is abandoned as lost first: the coordinator has already
// recovered or requeued those runs, so another attempt owns them now.
// staleID guards against two callers (lease loop and heartbeat loop)
// racing: only the first to observe the stale ID re-registers.
func (w *worker) reregister(ctx context.Context, staleID string) error {
	w.mu.Lock()
	if w.id != staleID {
		// Someone else already replaced it.
		w.mu.Unlock()
		return nil
	}
	w.id = ""
	for id, t := range w.running {
		t.lost = true
		t.cancel()
		log.Printf("dagworker: abandoning run %s (lease died with old registration)", id)
	}
	w.mu.Unlock()
	return w.register(ctx)
}

// heartbeatLoop extends the leases of everything in-flight on the cadence
// the coordinator announced, and applies the coordinator's verdicts:
// cancellations abort the run (it reports cancelled), lost leases abort it
// silently (the result is discarded).
//
// The cadence comes from a Ticker, NOT a sleep after each RPC: sleeping
// time.After(ivl) once the RPC completes makes the effective period
// ivl + round-trip, and with ivl near the enforced TTL/2 bound a slow
// coordinator pushed the gap past the lease TTL — a live run got swept and
// redispatched mid-flight. A ticker keeps the period fixed regardless of
// RPC latency (if one round-trip overruns the interval, the next tick is
// already pending and fires immediately, so the gap is bounded by
// max(interval, round-trip), never their sum).
func (w *worker) heartbeatLoop(stop, done chan struct{}) {
	defer close(done)
	ivl := w.interval()
	ticker := time.NewTicker(ivl)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		// Re-registration may have changed the announced cadence.
		if cur := w.interval(); cur != ivl {
			ivl = cur
			ticker.Reset(ivl)
		}
		workerID := w.currentID()
		if workerID == "" {
			continue // mid-re-registration
		}
		cctx, cancel := context.WithTimeout(context.Background(), reportTimeout)
		resp, err := w.client.Heartbeat(cctx, workerID, w.snapshotRunning())
		cancel()
		if err != nil {
			if errors.Is(err, fleet.ErrUnregistered) {
				// Re-registration needs a live ctx; the lease loop will hit
				// the same 404 and handle it. Just flag the in-flight work.
				w.mu.Lock()
				if w.id == workerID {
					for id, t := range w.running {
						t.lost = true
						t.cancel()
						log.Printf("dagworker: abandoning run %s (registration lost)", id)
					}
				}
				w.mu.Unlock()
			} else {
				log.Printf("dagworker: heartbeat failed: %v", err)
			}
			continue
		}
		w.mu.Lock()
		for _, id := range resp.Cancel {
			if t, ok := w.running[id]; ok {
				log.Printf("dagworker: cancelling run %s (coordinator request)", id)
				t.cancel()
			}
		}
		for _, id := range resp.Lost {
			if t, ok := w.running[id]; ok {
				log.Printf("dagworker: abandoning run %s (lease expired coordinator-side)", id)
				t.lost = true
				t.cancel()
			}
		}
		w.mu.Unlock()
	}
}

// execute runs one leased run to completion and reports its outcome — the
// same Execute → state mapping the embedded dispatcher applies, with the
// terminal transition recorded coordinator-side by complete.
func (w *worker) execute(workerID string, r run.Run) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	t := &task{cancel: cancel}
	w.mu.Lock()
	w.running[r.ID] = t
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.running, r.ID)
		w.mu.Unlock()
	}()

	res, err := run.Execute(ctx, r.Spec, w.runWorkers)

	w.mu.Lock()
	lost := t.lost
	w.mu.Unlock()
	if lost {
		log.Printf("dagworker: discarding result of %s: lease lost", r.ID)
		return
	}

	state, errMsg := outcome(err)
	for attempt := 1; ; attempt++ {
		cctx, ccancel := context.WithTimeout(context.Background(), reportTimeout)
		fr, cerr := w.client.Complete(cctx, fleet.CompleteRequest{
			WorkerID: workerID,
			RunID:    r.ID,
			State:    state,
			Error:    errMsg,
			Result:   res,
		})
		ccancel()
		switch {
		case cerr == nil:
			log.Printf("dagworker: run %s %s", r.ID, fr.State)
			return
		case errors.Is(cerr, fleet.ErrConflict), errors.Is(cerr, fleet.ErrUnregistered):
			// The lease is gone (expired, or the coordinator restarted);
			// a re-dispatched attempt owns this run now.
			log.Printf("dagworker: result of %s refused: %v", r.ID, cerr)
			return
		case attempt >= 5:
			// Give up; the unextended lease expires and the run requeues.
			log.Printf("dagworker: reporting %s failed after %d attempts: %v", r.ID, attempt, cerr)
			return
		default:
			log.Printf("dagworker: reporting %s failed: %v (retrying)", r.ID, cerr)
			time.Sleep(500 * time.Millisecond)
		}
	}
}

// outcome maps Execute's error to the wire state + message, mirroring how
// the embedded dispatcher's store.Finish classifies outcomes.
func outcome(err error) (run.State, string) {
	switch {
	case err == nil:
		return run.StateSucceeded, ""
	case errors.Is(err, context.Canceled):
		msg := strings.TrimSuffix(err.Error(), context.Canceled.Error())
		msg = strings.TrimSuffix(msg, ": ")
		return run.StateCancelled, msg
	default:
		return run.StateFailed, err.Error()
	}
}
