// Package sched executes the nodes of a DAG concurrently on a worker pool,
// respecting dependency order: a node becomes runnable the moment its last
// parent retires. The per-node work is a pluggable Compute hook; the
// built-in PathCount workload counts source→sink paths, and its parallel
// result is checkable against the serial reference CountPathsSerial.
//
// Synchronization is lock-free on the hot path: each node carries an atomic
// pending-parent counter. A worker that retires a node decrements every
// child's counter, and whichever worker drops a counter to zero enqueues
// that child on the shared ready channel. Atomic RMW on the counter plus the
// channel hand-off establish happens-before between a parent's published
// value and every reader, so runs are clean under the race detector.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
)

// Compute is the per-node work hook. It receives the node's ID and the
// already-computed values of all its parents (in Parents order) and returns
// the node's value. Implementations must be safe for concurrent invocation
// on distinct nodes.
type Compute func(id dag.NodeID, parentValues []uint64) uint64

// Options configures an Executor.
type Options struct {
	// Workers is the pool size. Zero or negative means runtime.NumCPU().
	Workers int
}

// Executor runs a Compute hook over every node of one DAG. An Executor is
// reusable: each Run call owns its own scheduling state.
type Executor struct {
	d       *dag.DAG
	workers int
}

// New returns an Executor for d.
func New(d *dag.DAG, opts Options) *Executor {
	w := opts.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	return &Executor{d: d, workers: w}
}

// Run executes f once per node, in dependency order, on the worker pool.
// It returns the per-node values indexed by NodeID. If ctx is cancelled
// mid-run, workers drain promptly and ctx.Err() is returned.
func (e *Executor) Run(ctx context.Context, f Compute) ([]uint64, error) {
	n := e.d.NumNodes()
	values := make([]uint64, n)
	if n == 0 {
		return values, nil
	}

	pending := make([]atomic.Int32, n)
	ready := make(chan dag.NodeID, n)
	for v := 0; v < n; v++ {
		deg := e.d.InDegree(dag.NodeID(v))
		pending[v].Store(int32(deg))
		if deg == 0 {
			ready <- dag.NodeID(v)
		}
	}

	var retired atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Scratch buffer for parent values, reused across nodes.
			buf := make([]uint64, 0, 16)
			for {
				select {
				case <-ctx.Done():
					return
				case <-done:
					return
				case id := <-ready:
					parents := e.d.Parents(id)
					buf = buf[:0]
					for _, p := range parents {
						buf = append(buf, values[p])
					}
					values[id] = f(id, buf)
					for _, c := range e.d.Children(id) {
						if pending[c].Add(-1) == 0 {
							ready <- c
						}
					}
					if retired.Add(1) == int64(n) {
						close(done)
					}
				}
			}
		}()
	}
	wg.Wait()
	// A run that retired every node is a success even if ctx was cancelled
	// in the instant between the last retirement and the workers draining.
	if got := retired.Load(); got == int64(n) {
		return values, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Build guarantees acyclicity, so this is unreachable unless the DAG
	// was constructed outside Builder; fail loudly rather than return
	// partial values.
	return nil, fmt.Errorf("sched: only %d of %d nodes retired (cyclic or corrupt graph)", retired.Load(), n)
}

// PathCount returns a Compute hook that counts the number of distinct paths
// from any source to each node: sources get 1, and every other node the sum
// of its parents' counts. Counts use wrapping uint64 arithmetic, which is
// deterministic and therefore directly comparable with the serial reference.
// work adds W iterations of busy arithmetic per node to emulate the Nabbit
// NodeWork knob.
func PathCount(work int) Compute {
	return func(id dag.NodeID, parentValues []uint64) uint64 {
		spin(work)
		if len(parentValues) == 0 {
			return 1
		}
		var sum uint64
		for _, v := range parentValues {
			sum += v
		}
		return sum
	}
}

// CountPathsParallel generates per-node path counts for d using the worker
// pool. It is a convenience wrapper over New + Run with the PathCount hook.
func CountPathsParallel(ctx context.Context, d *dag.DAG, workers, work int) ([]uint64, error) {
	return New(d, Options{Workers: workers}).Run(ctx, PathCount(work))
}

// CountPathsSerial computes the same per-node path counts as
// CountPathsParallel with a single-threaded sweep in topological order.
// It is the correctness reference for the scheduler.
func CountPathsSerial(d *dag.DAG, work int) []uint64 {
	values, _ := CountPathsSerialCtx(context.Background(), d, work)
	return values
}

// CountPathsSerialCtx is CountPathsSerial with cooperative cancellation:
// the sweep polls ctx every few nodes and returns ctx.Err() if it fires.
// Long-running services (dagd) use this so that cancelling a run aborts
// the serial reference pass too, not just the parallel one.
func CountPathsSerialCtx(ctx context.Context, d *dag.DAG, work int) ([]uint64, error) {
	// Poll on a spin-iteration budget, not a fixed node stride: with heavy
	// per-node work a 64-node stride would mean seconds between checks,
	// defeating prompt cancellation and shutdown force-cancel.
	const pollBudget = 1 << 20
	pollEvery := 64
	if work > 0 {
		if pollEvery = pollBudget / work; pollEvery < 1 {
			pollEvery = 1
		} else if pollEvery > 64 {
			pollEvery = 64
		}
	}
	values := make([]uint64, d.NumNodes())
	for i, u := range d.TopoOrder() {
		if i%pollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		spin(work)
		parents := d.Parents(u)
		if len(parents) == 0 {
			values[u] = 1
			continue
		}
		var sum uint64
		for _, p := range parents {
			sum += values[p]
		}
		values[u] = sum
	}
	return values, nil
}

// TotalSinkPaths sums the path counts of all sink nodes — the number of
// distinct source→sink paths through the whole DAG (mod 2^64).
func TotalSinkPaths(d *dag.DAG, values []uint64) uint64 {
	var total uint64
	for _, s := range d.Sinks() {
		total += values[s]
	}
	return total
}

// spinSink defeats dead-code elimination of the spin loop.
var spinSink uint64

// spin burns w iterations of integer work, emulating per-node compute cost.
func spin(w int) {
	if w <= 0 {
		return
	}
	var x uint64 = 0x9e3779b97f4a7c15
	for i := 0; i < w; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	atomic.AddUint64(&spinSink, x)
}
