// Package sched executes the nodes of a DAG concurrently on a worker pool,
// respecting dependency order: a node becomes runnable the moment its last
// parent retires. The per-node work is a pluggable Workload resolved from a
// registry (see workload.go); the built-in pathcount workload counts
// source→sink paths, hashchain mixes a non-commutative digest along every
// dependency edge, and longestpath computes critical-path depths. Every
// workload carries its own single-threaded reference sweep and verifier, so
// the parallel scheduler is self-checking end to end.
//
// The scheduler hot path is a work-stealing core (see steal.go): each
// worker owns a deque of ready nodes, pushing and popping LIFO at the tail
// and stealing half a victim's deque FIFO from the head when it runs dry. A
// retiring node publishes all newly-ready children in one batched push and
// keeps the first child to execute directly. Dependency tracking stays
// lock-free: each node carries an atomic pending-parent counter, and
// whichever worker drops a counter to zero owns the child. Atomic RMW on
// the counter plus the deque mutex hand-off establish happens-before
// between a parent's published value and every reader, so runs are clean
// under the race detector.
package sched

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
)

// Compute is the per-node work hook. It receives the node's ID and the
// already-computed values of all its parents (in Parents order) and returns
// the node's value. Implementations must be safe for concurrent invocation
// on distinct nodes.
type Compute func(id dag.NodeID, parentValues []uint64) uint64

// Options configures an Executor.
type Options struct {
	// Workers is the pool size. Zero or negative means runtime.NumCPU().
	Workers int
	// SplitWork, when positive, enables intra-node parallelism (Nabbit's
	// UseParallelNodes): the scheduler burns SplitWork spin iterations per
	// node itself, sliced into sub-tasks that idle workers steal off the
	// deques. The Compute hook passed to Run must then be PURE — no
	// emulated work folded in (see SplitComputable) — or the work would be
	// double-counted.
	SplitWork int
}

// Executor runs a Compute hook over every node of one DAG. An Executor is
// reusable: each Run call owns its own scheduling state.
type Executor struct {
	d         *dag.DAG
	workers   int
	splitWork int
	splitMask atomic.Uint64 // worker-participation bits of the latest Run
}

// New returns an Executor for d.
func New(d *dag.DAG, opts Options) *Executor {
	w := opts.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	sw := opts.SplitWork
	if sw < 0 {
		sw = 0
	}
	return &Executor{d: d, workers: w, splitWork: sw}
}

// Process-lifetime execution tallies, exposed through NodesExecuted and
// Steals for the observability layer (wired up as func-backed counters on
// the dagd metrics registry).
var (
	nodesExecuted atomic.Int64
	stealsTotal   atomic.Int64
)

// NodesExecuted returns the total DAG nodes retired by every Executor.Run
// in this process.
func NodesExecuted() int64 { return nodesExecuted.Load() }

// Steals returns the total successful work-stealing operations (one
// stealHalf that found work) across every Executor.Run in this process.
func Steals() int64 { return stealsTotal.Load() }

// Run executes f once per node, in dependency order, on the work-stealing
// worker pool. It returns the per-node values indexed by NodeID. If ctx is
// cancelled mid-run, workers drain promptly and ctx.Err() is returned.
func (e *Executor) Run(ctx context.Context, f Compute) ([]uint64, error) {
	n := e.d.NumNodes()
	values := make([]uint64, n)
	if n == 0 {
		return values, nil
	}

	r := newWSRun(e.d, f, e.workers, values, e.splitWork, e.splitChunks())
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			r.worker(ctx, self)
		}(w)
	}
	wg.Wait()
	e.splitMask.Store(r.splitMask.Load())
	// Flush this run's tallies into the process-lifetime counters once,
	// after the pool drains — the workers themselves never touch a shared
	// sink (see the per-worker deque comment below).
	nodesExecuted.Add(r.retired.Load())
	stealsTotal.Add(r.steals.Load())
	// A run that retired every node is a success even if ctx was cancelled
	// in the instant between the last retirement and the workers draining.
	if got := r.retired.Load(); got == int64(n) {
		return values, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Build guarantees acyclicity, so this is unreachable unless the DAG
	// was constructed outside Builder; fail loudly rather than return
	// partial values.
	return nil, fmt.Errorf("sched: only %d of %d nodes retired (cyclic or corrupt graph)", r.retired.Load(), n)
}

// splitChunks decides how many slices each node's emulated work splits
// into: enough that every worker could take one, but never slices smaller
// than minSplitChunk iterations (below that the publish/steal overhead
// dwarfs the work being parallelized).
func (e *Executor) splitChunks() int {
	const minSplitChunk = 4096
	if e.splitWork <= 0 {
		return 1
	}
	chunks := e.splitWork / minSplitChunk
	if chunks > e.workers {
		chunks = e.workers
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// SplitWorkers reports how many distinct workers (of the first 64)
// executed at least one split-work slice during the Executor's most recent
// Run. Zero when SplitWork was off or every node ran unsliced.
func (e *Executor) SplitWorkers() int {
	return bits.OnesCount64(e.splitMask.Load())
}

// mustLookup resolves a built-in workload; the registry is populated in
// init, so a miss is a programming error.
func mustLookup(name string) Workload {
	w, err := LookupWorkload(name)
	if err != nil {
		panic(err)
	}
	return w
}

// PathCount returns the Compute hook of the built-in pathcount workload:
// sources get 1, and every other node the sum of its parents' counts, in
// wrapping uint64 arithmetic (deterministic and therefore directly
// comparable with the serial reference). work adds W iterations of busy
// arithmetic per node to emulate the Nabbit NodeWork knob.
func PathCount(work int) Compute {
	return mustLookup(DefaultWorkload).Compute(work)
}

// CountPathsParallel generates per-node path counts for d using the worker
// pool. It is a convenience wrapper over New + Run with the PathCount hook.
func CountPathsParallel(ctx context.Context, d *dag.DAG, workers, work int) ([]uint64, error) {
	return New(d, Options{Workers: workers}).Run(ctx, PathCount(work))
}

// CountPathsSerial computes the same per-node path counts as
// CountPathsParallel with a single-threaded sweep in topological order.
// It is the correctness reference for the scheduler.
func CountPathsSerial(d *dag.DAG, work int) []uint64 {
	values, _ := CountPathsSerialCtx(context.Background(), d, work)
	return values
}

// CountPathsSerialCtx is CountPathsSerial with cooperative cancellation:
// the sweep polls ctx on a spin-iteration budget and returns ctx.Err() if
// it fires. Long-running services (dagd) use this so that cancelling a run
// aborts the serial reference pass too, not just the parallel one.
func CountPathsSerialCtx(ctx context.Context, d *dag.DAG, work int) ([]uint64, error) {
	return mustLookup(DefaultWorkload).Serial(ctx, d, work)
}

// TotalSinkPaths sums the values of all sink nodes — for the pathcount
// workload, the number of distinct source→sink paths through the whole DAG
// (mod 2^64).
func TotalSinkPaths(d *dag.DAG, values []uint64) uint64 {
	var total uint64
	for _, s := range d.Sinks() {
		total += values[s]
	}
	return total
}

// spin burns w iterations of integer work, emulating per-node compute cost.
func spin(w int) {
	if w <= 0 {
		return
	}
	var x uint64 = 0x9e3779b97f4a7c15
	for i := 0; i < w; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	// xorshift64 never maps a nonzero state to zero, but the compiler cannot
	// prove that, so this branch pins the loop against dead-code elimination
	// without touching shared memory. (The previous implementation folded x
	// into a global atomic sink, which serialized every worker on one cache
	// line per node — the emulated-work knob itself became the bottleneck.)
	if x == 0 {
		panic("sched: xorshift64 state collapsed to zero")
	}
}
