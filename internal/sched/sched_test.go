package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
)

func assertEqualCounts(t *testing.T, serial, parallel []uint64) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("length mismatch: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("node %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestDiamondPathCount(t *testing.T) {
	b := dag.NewBuilder(4)
	for _, e := range [][2]dag.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	serial := CountPathsSerial(d, 0)
	if serial[3] != 2 {
		t.Fatalf("diamond sink count = %d, want 2", serial[3])
	}
	parallel, err := CountPathsParallel(context.Background(), d, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualCounts(t, serial, parallel)
}

func TestRandomDAGsParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		nodes   int
		p       float64
		seed    int64
		workers int
		work    int
	}{
		{nodes: 50, p: 0.1, seed: 1, workers: 1, work: 0},
		{nodes: 200, p: 0.05, seed: 2, workers: 4, work: 0},
		{nodes: 500, p: 0.02, seed: 3, workers: 8, work: 10},
		{nodes: 1000, p: 0.01, seed: 4, workers: 8, work: 0},
		{nodes: 300, p: 0.3, seed: 5, workers: 16, work: 0},
	}
	for _, tc := range cases {
		d, err := gen.RandomDAG(tc.nodes, tc.p, tc.seed)
		if err != nil {
			t.Fatalf("gen(%+v): %v", tc, err)
		}
		serial := CountPathsSerial(d, tc.work)
		parallel, err := CountPathsParallel(context.Background(), d, tc.workers, tc.work)
		if err != nil {
			t.Fatalf("parallel(%+v): %v", tc, err)
		}
		assertEqualCounts(t, serial, parallel)
		if TotalSinkPaths(d, serial) == 0 {
			t.Errorf("case %+v: zero sink paths, generator connectivity broken", tc)
		}
	}
}

func TestPipelineParallelMatchesSerial(t *testing.T) {
	d, err := gen.PipelineDAG(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	serial := CountPathsSerial(d, 0)
	parallel, err := CountPathsParallel(context.Background(), d, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualCounts(t, serial, parallel)
}

func TestDisconnectedGraph(t *testing.T) {
	// Components 0→1, 2→3, and isolated 4: every source counts 1 path.
	b := dag.NewBuilder(5)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CountPathsParallel(context.Background(), d, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualCounts(t, CountPathsSerial(d, 0), parallel)
	if got := TotalSinkPaths(d, parallel); got != 3 {
		t.Errorf("TotalSinkPaths = %d, want 3", got)
	}
}

func TestEmptyDAG(t *testing.T) {
	d, err := dag.NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := New(d, Options{Workers: 4}).Run(context.Background(), PathCount(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 0 {
		t.Errorf("empty dag returned %d values", len(vals))
	}
}

func TestCustomComputeHook(t *testing.T) {
	// Hook: each node's value is max(parents)+1, i.e. its depth+1.
	d, err := gen.PipelineDAG(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	depth := func(id dag.NodeID, parents []uint64) uint64 {
		var m uint64
		for _, v := range parents {
			if v > m {
				m = v
			}
		}
		return m + 1
	}
	vals, err := New(d, Options{Workers: 8}).Run(context.Background(), depth)
	if err != nil {
		t.Fatal(err)
	}
	sink := dag.NodeID(d.NumNodes() - 1)
	if got, want := vals[sink], uint64(d.Depth()+1); got != want {
		t.Errorf("sink depth value = %d, want %d", got, want)
	}
}

// TestMidRunCancellation cancels while nodes are actively in flight and
// asserts the run returns promptly with ctx.Err() rather than finishing
// the whole graph.
func TestMidRunCancellation(t *testing.T) {
	// Deep pipeline: 40002 nodes, so the run is nowhere near done when the
	// first node signals.
	d, err := gen.PipelineDAG(10000, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := d.NumNodes()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	started := make(chan struct{})
	var once sync.Once
	var computed atomic.Int64
	hook := func(id dag.NodeID, parents []uint64) uint64 {
		once.Do(func() { close(started) })
		computed.Add(1)
		time.Sleep(50 * time.Microsecond) // keep nodes in flight long enough to observe
		return 1
	}

	done := make(chan error, 1)
	go func() {
		_, err := New(d, Options{Workers: 4}).Run(ctx, hook)
		done <- err
	}()

	<-started
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return promptly after mid-run cancel")
	}
	if got := computed.Load(); got == 0 || got >= int64(n) {
		t.Fatalf("computed %d of %d nodes, want mid-run cancellation (0 < computed < n)", got, n)
	}
}

// TestSerialCtxCancellation covers the cancellation-aware serial sweep used
// by the dagd dispatcher.
func TestSerialCtxCancellation(t *testing.T) {
	d, err := gen.PipelineDAG(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CountPathsSerialCtx(ctx, d, 0); err != context.Canceled {
		t.Fatalf("CountPathsSerialCtx = %v, want context.Canceled", err)
	}
	vals, err := CountPathsSerialCtx(context.Background(), d, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualCounts(t, CountPathsSerial(d, 0), vals)
}

func TestContextCancellation(t *testing.T) {
	d, err := gen.RandomDAG(2000, 0.01, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: run must bail out, not hang
	if _, err := CountPathsParallel(ctx, d, 4, 0); err == nil {
		t.Error("cancelled run returned nil error")
	}
}

func TestExecutorReusable(t *testing.T) {
	d, err := gen.RandomDAG(100, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(d, Options{Workers: 4})
	first, err := ex.Run(context.Background(), PathCount(0))
	if err != nil {
		t.Fatal(err)
	}
	second, err := ex.Run(context.Background(), PathCount(0))
	if err != nil {
		t.Fatal(err)
	}
	assertEqualCounts(t, first, second)
}

func BenchmarkCountPathsSerial(b *testing.B) {
	d, err := gen.RandomDAG(1000, 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountPathsSerial(d, 100)
	}
}

func BenchmarkCountPathsParallel(b *testing.B) {
	d, err := gen.RandomDAG(1000, 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CountPathsParallel(context.Background(), d, 0, 100); err != nil {
			b.Fatal(err)
		}
	}
}
