package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
)

// DynamicGraph is a DAG discovered while it executes (the Nabbit dynamic
// mode). The scheduler learns a node's successors only by calling Expand
// after executing it; the graph may grow on every expansion.
//
// Contract: node IDs are dense in [0, NumNodes()). Expand(u) returns u's
// successors, materializing them (and possibly siblings) as a side effect —
// after it returns, NumNodes covers every returned ID and Parents is final
// for all of them. Expand must be deterministic with respect to the graph
// structure (not the call order) so the final graph can be re-swept
// serially for verification, and must return an error — gen.ErrGrowthBound
// wrapped, for the built-in expander — when growth would exceed its caps.
type DynamicGraph interface {
	NumNodes() int
	Parents(v dag.NodeID) []dag.NodeID
	Expand(u dag.NodeID) ([]dag.NodeID, error)
}

// dynRun is the scheduling state of one dynamic execution. It reuses the
// work-stealing deques but swaps the fixed-size value/pending arrays for
// growable ones: growth takes the full lock, while every per-node access
// holds the read lock (element-level updates stay atomic — many read-lock
// holders decrement concurrently). A worker calls ensure after every
// Expand and before touching any child counter, so an index is always
// initialized (under the write lock) before any decrement can reach it.
type dynRun struct {
	g DynamicGraph
	f Compute

	mu      sync.RWMutex
	values  []uint64
	pending []int32

	size    atomic.Int64 // nodes covered by ensure so far
	retired atomic.Int64
	steals  atomic.Int64

	deques []*wsDeque
	wake   chan struct{}
	done   chan struct{}

	abort   chan struct{}
	errOnce sync.Once
	err     error
}

// RunDynamic executes f over every node g discovers, in dependency order,
// on a work-stealing pool of the given size (zero or negative means
// runtime.NumCPU()). It returns the per-node values of the final graph,
// indexed by NodeID. If any expansion fails — typically the growth bound —
// the run winds down promptly and the expansion error is returned.
func RunDynamic(ctx context.Context, g DynamicGraph, workers int, f Compute) ([]uint64, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	r := &dynRun{
		g:      g,
		f:      f,
		deques: make([]*wsDeque, workers),
		wake:   make(chan struct{}, workers),
		done:   make(chan struct{}),
		abort:  make(chan struct{}),
	}
	for i := range r.deques {
		r.deques[i] = new(wsDeque)
	}
	r.ensure(g.NumNodes())
	// Seed the initially known roots (no workers running yet, plain appends).
	next := 0
	for v := range r.pending {
		if r.pending[v] == 0 {
			q := r.deques[next%workers]
			q.buf = append(q.buf, wsItem{id: dag.NodeID(v)})
			next++
		}
	}
	if next == 0 {
		return r.values, nil
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			r.worker(ctx, self)
		}(w)
	}
	wg.Wait()
	nodesExecuted.Add(r.retired.Load())
	stealsTotal.Add(r.steals.Load())
	if r.err != nil {
		return nil, r.err
	}
	if got, want := r.retired.Load(), r.size.Load(); got == want {
		return r.values, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("sched: dynamic run retired %d of %d discovered nodes (corrupt expansion)",
		r.retired.Load(), r.size.Load())
}

// ensure grows the value/pending arrays to cover n nodes, initializing each
// new node's pending counter from its (final, per the DynamicGraph
// contract) parent list. Safe to call concurrently; late callers see the
// arrays already grown and return without the write lock.
func (r *dynRun) ensure(n int) {
	if int(r.size.Load()) >= n {
		return
	}
	r.mu.Lock()
	old := len(r.values)
	if old < n {
		values := make([]uint64, n)
		copy(values, r.values)
		pending := make([]int32, n)
		copy(pending, r.pending)
		for v := old; v < n; v++ {
			pending[v] = int32(len(r.g.Parents(dag.NodeID(v))))
		}
		r.values = values
		r.pending = pending
		r.size.Store(int64(n))
	}
	r.mu.Unlock()
}

func (r *dynRun) fail(err error) {
	r.errOnce.Do(func() {
		r.err = err
		close(r.abort)
	})
}

func (r *dynRun) notify(k int) {
	for i := 0; i < k; i++ {
		select {
		case r.wake <- struct{}{}:
		default:
			return
		}
	}
}

func (r *dynRun) steal(self int, scratch *[]wsItem) (wsItem, bool) {
	w := len(r.deques)
	for off := 1; off < w; off++ {
		victim := r.deques[(self+off)%w]
		got := victim.stealHalf((*scratch)[:0])
		if len(got) == 0 {
			continue
		}
		r.steals.Add(1)
		if len(got) > 1 {
			r.deques[self].pushBatch(got[1:])
			r.notify(len(got) - 1)
		}
		first := got[0]
		*scratch = got[:0]
		return first, true
	}
	return wsItem{}, false
}

// worker mirrors wsRun.worker with two differences: the graph's edges come
// from Expand (called after the node's value is computed, mimicking a node
// discovering its successors as it runs), and array accesses hold the read
// lock because another worker may be growing the arrays concurrently.
func (r *dynRun) worker(ctx context.Context, self int) {
	q := r.deques[self]
	parentBuf := make([]uint64, 0, 16)
	batch := make([]wsItem, 0, 16)
	stealBuf := make([]wsItem, 0, 16)
	var next wsItem
	have := false
	for {
		if !have {
			var ok bool
			if next, ok = q.popTail(); !ok {
				if next, ok = r.steal(self, &stealBuf); !ok {
					select {
					case <-r.done:
						return
					case <-r.abort:
						return
					case <-ctx.Done():
						return
					case <-r.wake:
						continue
					}
				}
			}
			have = true
		}
		select {
		case <-ctx.Done():
			return
		case <-r.abort:
			return
		default:
		}
		id := next.id
		have = false

		// Compute the node's value from its already-final parent list.
		parents := r.g.Parents(id)
		r.mu.RLock()
		parentBuf = parentBuf[:0]
		for _, p := range parents {
			parentBuf = append(parentBuf, r.values[p])
		}
		r.mu.RUnlock()
		v := r.f(id, parentBuf)
		r.mu.RLock()
		r.values[id] = v
		r.mu.RUnlock()

		// Discover successors; a growth-bound error aborts the whole run.
		children, err := r.g.Expand(id)
		if err != nil {
			r.fail(err)
			return
		}
		r.ensure(r.g.NumNodes())

		batch = batch[:0]
		r.mu.RLock()
		for _, c := range children {
			if atomic.AddInt32(&r.pending[c], -1) == 0 {
				batch = append(batch, wsItem{id: c})
			}
		}
		r.mu.RUnlock()
		if len(batch) > 0 {
			next = batch[0]
			have = true
			if len(batch) > 1 {
				q.pushBatch(batch[1:])
				r.notify(len(batch) - 1)
			}
		}
		if r.retired.Add(1) == r.size.Load() {
			close(r.done)
			return
		}
	}
}
