package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
)

// TestDeepChainExecution proves the scheduler handles Nabbit's huge-span
// graphs iteratively: a ~1e6-deep chain would blow the stack under any
// per-level recursion, but the keep-first-child continuation walks it as a
// loop inside one worker.
func TestDeepChainExecution(t *testing.T) {
	const n = 1 << 20
	d, err := gen.ChainDAG(n)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(d, Options{Workers: 8})
	vals, err := ex.Run(context.Background(), mustLookup("longestpath").Compute(0))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := vals[n-1], uint64(n-1); got != want {
		t.Fatalf("chain sink depth = %d, want %d", got, want)
	}
}

// TestDeepWidthOnePipeline is the same span stress through the pipeline
// generator at width 1, the other shape the run layer admits at full depth.
func TestDeepWidthOnePipeline(t *testing.T) {
	const stages = 1<<20 - 2
	d, err := gen.PipelineDAG(stages, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Depth(); got != stages+1 {
		t.Fatalf("Depth = %d, want %d", got, stages+1)
	}
	vals, err := New(d, Options{Workers: 4}).Run(context.Background(), PathCount(0))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != 1 {
			t.Fatalf("node %d path count = %d, want 1 (width-1 pipeline has one path)", i, v)
		}
	}
}

// BenchmarkDeepChain pins the per-node cost (time and allocations) of the
// deep-span path: allocations must stay amortized-constant per node, not
// per-level.
func BenchmarkDeepChain(b *testing.B) {
	const n = 1 << 18
	d, err := gen.ChainDAG(n)
	if err != nil {
		b.Fatal(err)
	}
	ex := New(d, Options{Workers: 4})
	hook := PathCount(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Run(context.Background(), hook); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSplitWorkMatchesSerial pins the parallel_work path end to end inside
// the scheduler: values computed with the pure hook plus scheduler-side
// sliced work must equal the ordinary serial reference, and more than one
// worker must actually have executed slices of some node's work.
func TestSplitWorkMatchesSerial(t *testing.T) {
	d, err := gen.ChainDAG(64)
	if err != nil {
		t.Fatal(err)
	}
	w := mustLookup("hashchain")
	serial, err := w.Serial(context.Background(), d, 0)
	if err != nil {
		t.Fatal(err)
	}
	pure := w.(SplitComputable).PureCompute()

	const splitWork = 1 << 20 // chunks = min(workers, splitWork/4096) = 8
	ex := New(d, Options{Workers: 8, SplitWork: splitWork})
	// Slice stealing is timing-dependent; retry a few times before declaring
	// that no second worker ever participated.
	participated := 0
	for attempt := 0; attempt < 10; attempt++ {
		vals, err := ex.Run(context.Background(), pure)
		if err != nil {
			t.Fatal(err)
		}
		if verr := w.Verify(d, serial, vals); verr != nil {
			t.Fatal(verr)
		}
		if participated = ex.SplitWorkers(); participated >= 2 {
			break
		}
	}
	if participated < 2 {
		t.Fatalf("SplitWorkers = %d after retries, want >= 2 (no intra-node parallelism observed)", participated)
	}
}

// TestSplitWorkSingleNode is the degenerate Nabbit UseParallelNodes case: a
// one-node graph has zero inter-node parallelism, so any speedup must come
// from splitting the node's own work.
func TestSplitWorkSingleNode(t *testing.T) {
	d, err := gen.ChainDAG(1)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(d, Options{Workers: 4, SplitWork: 1 << 18})
	vals, err := ex.Run(context.Background(), mustLookup("pathcount").(SplitComputable).PureCompute())
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 1 {
		t.Fatalf("single-node value = %d, want 1", vals[0])
	}
}

// TestRunDynamicMatchesSerial executes a dynamic expansion in parallel and
// verifies the values against a serial sweep of the final graph — the same
// verification contract run.Execute applies.
func TestRunDynamicMatchesSerial(t *testing.T) {
	for _, wl := range []string{"pathcount", "hashchain", "longestpath"} {
		w := mustLookup(wl)
		dyn, err := gen.NewDynamic(gen.Config{Shape: gen.Dynamic, Stages: 8, Width: 3, EdgeProb: 0.3, Seed: 17}, gen.DynLimits{})
		if err != nil {
			t.Fatal(err)
		}
		vals, err := RunDynamic(context.Background(), dyn, 8, w.Compute(0))
		if err != nil {
			t.Fatalf("%s: RunDynamic: %v", wl, err)
		}
		final, err := dyn.FinalDAG()
		if err != nil {
			t.Fatalf("%s: FinalDAG: %v", wl, err)
		}
		serial, err := w.Serial(context.Background(), final, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Verify(final, serial, vals); err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
	}
}

// TestRunDynamicGrowthBound pins the fail-closed path: an expansion that
// exceeds its node cap aborts the run promptly with the growth-bound error.
func TestRunDynamicGrowthBound(t *testing.T) {
	dyn, err := gen.NewDynamic(gen.Config{Shape: gen.Dynamic, Stages: 40, Width: 4, EdgeProb: 0, Seed: 2},
		gen.DynLimits{MaxNodes: 500})
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := RunDynamic(context.Background(), dyn, 4, PathCount(0))
	if !errors.Is(rerr, gen.ErrGrowthBound) {
		t.Fatalf("RunDynamic = %v, want gen.ErrGrowthBound", rerr)
	}
}

// slowDyn wraps a gen.Dyn with a per-expand delay so cancellation can land
// mid-run deterministically.
type slowDyn struct {
	*gen.Dyn
	delay time.Duration
	calls atomic.Int64
}

func (s *slowDyn) Expand(u dag.NodeID) ([]dag.NodeID, error) {
	s.calls.Add(1)
	time.Sleep(s.delay)
	return s.Dyn.Expand(u)
}

func TestRunDynamicCancellation(t *testing.T) {
	inner, err := gen.NewDynamic(gen.Config{Shape: gen.Dynamic, Stages: 1000, Width: 2, EdgeProb: 0, Seed: 4}, gen.DynLimits{})
	if err != nil {
		t.Fatal(err)
	}
	dyn := &slowDyn{Dyn: inner, delay: 200 * time.Microsecond}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	started := make(chan struct{})
	var once sync.Once
	hook := func(id dag.NodeID, parents []uint64) uint64 {
		once.Do(func() { close(started) })
		return 1
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunDynamic(ctx, dyn, 4, hook)
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("RunDynamic = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunDynamic did not return promptly after cancel")
	}
}

// TestRunDynamicSingleLeaf covers the smallest dynamic graph (root with
// stages=1) and a single worker, exercising the no-steal path.
func TestRunDynamicSingleLeaf(t *testing.T) {
	dyn, err := gen.NewDynamic(gen.Config{Shape: gen.Dynamic, Stages: 1, Width: 1, Seed: 6}, gen.DynLimits{})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := RunDynamic(context.Background(), dyn, 1, PathCount(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 1 {
		t.Fatalf("values = %v, want [1 1] (root and its single child)", vals)
	}
}
