package sched

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
)

// Work-stealing core. Each worker owns a deque of ready items: it pushes
// and pops at the tail (LIFO, so execution runs depth-first along the DAG
// and stays cache-warm), while idle workers steal half a victim's deque
// from the head (FIFO, so thieves take the oldest — widest — frontier and
// leave the victim its hot tail). A retiring node publishes all of its
// newly-ready children in a single batched push; the first child is kept
// back and executed directly, so a chain of unary nodes never touches a
// deque at all.
//
// Memory-model note: a child's parents' values are always visible to the
// worker that executes it. The last parent's writer performs an atomic
// decrement that reaches zero, then publishes the child either by keeping
// it (same goroutine, program order) or under the deque mutex; any other
// parent's write is ordered before its own decrement, and Go's
// sequentially-consistent atomics order that decrement before the final
// one. Acquiring the deque mutex (locally or via steal) therefore
// establishes happens-before from every parent's write to the child's read,
// and runs stay clean under the race detector.

// wsItem is one deque entry. chunk 0 means "the whole node"; chunk k > 0 is
// the k-th slice of a split node's emulated work (the Nabbit
// UseParallelNodes mode, see the split-work section of the worker loop).
type wsItem struct {
	id    dag.NodeID
	chunk int32
}

// wsDeque is one worker's ready queue. The trailing pad keeps separately
// indexed deques off each other's cache line (the struct is padded to 64
// bytes and heap-allocated individually).
type wsDeque struct {
	mu  sync.Mutex
	buf []wsItem
	_   [24]byte
}

// pushBatch appends items to the tail under one lock acquisition.
func (q *wsDeque) pushBatch(items []wsItem) {
	q.mu.Lock()
	q.buf = append(q.buf, items...)
	q.mu.Unlock()
}

// popTail removes and returns the newest entry (owner side, LIFO).
func (q *wsDeque) popTail() (wsItem, bool) {
	q.mu.Lock()
	n := len(q.buf)
	if n == 0 {
		q.mu.Unlock()
		return wsItem{}, false
	}
	it := q.buf[n-1]
	q.buf = q.buf[:n-1]
	q.mu.Unlock()
	return it, true
}

// stealHalf removes the oldest half (rounded up) of the deque and appends
// it to into, returning the extended slice. Stealing from the head keeps
// FIFO order for the thief and leaves the victim its recently pushed tail.
func (q *wsDeque) stealHalf(into []wsItem) []wsItem {
	q.mu.Lock()
	n := len(q.buf)
	if n == 0 {
		q.mu.Unlock()
		return into
	}
	k := (n + 1) / 2
	into = append(into, q.buf[:k]...)
	rest := copy(q.buf, q.buf[k:])
	q.buf = q.buf[:rest]
	q.mu.Unlock()
	return into
}

// wsRun is the per-Run scheduling state shared by all workers.
type wsRun struct {
	d       *dag.DAG
	f       Compute
	values  []uint64
	pending []atomic.Int32
	deques  []*wsDeque
	// wake is a token semaphore for parked workers: every publish of ready
	// work sends up to one token per item (non-blocking, capacity = worker
	// count), so a worker that scanned every deque empty and blocked is
	// guaranteed a wakeup for work published after its scan.
	wake    chan struct{}
	done    chan struct{}
	retired atomic.Int64
	steals  atomic.Int64 // successful stealHalf operations this run

	// Split-work state (Nabbit UseParallelNodes). When splitWork > 0 the
	// Compute hook is pure (no spin folded in) and the scheduler burns
	// splitWork spin iterations per node itself, sliced into chunks pieces
	// that idle workers can steal. remaining[v] counts a node's unfinished
	// slices; whichever worker drops it to zero finalizes the node.
	splitWork int
	chunks    int
	remaining []atomic.Int32
	splitMask atomic.Uint64 // bit per worker (mod 64) that ran a split slice
}

func newWSRun(d *dag.DAG, f Compute, workers int, values []uint64, splitWork, chunks int) *wsRun {
	n := len(values)
	r := &wsRun{
		d:         d,
		f:         f,
		values:    values,
		pending:   make([]atomic.Int32, n),
		deques:    make([]*wsDeque, workers),
		wake:      make(chan struct{}, workers),
		done:      make(chan struct{}),
		splitWork: splitWork,
		chunks:    chunks,
	}
	if chunks > 1 {
		r.remaining = make([]atomic.Int32, n)
	}
	for i := range r.deques {
		r.deques[i] = new(wsDeque)
	}
	// Seed the sources round-robin across the deques so workers start with
	// disjoint work. Workers have not started yet, so plain appends are fine.
	next := 0
	for v := 0; v < n; v++ {
		deg := d.InDegree(dag.NodeID(v))
		r.pending[v].Store(int32(deg))
		if deg == 0 {
			q := r.deques[next%workers]
			q.buf = append(q.buf, wsItem{id: dag.NodeID(v)})
			next++
		}
	}
	return r
}

// chunkSize returns the spin iterations of slice k (1-based): splitWork
// divided as evenly as possible, with the remainder spread over the lowest
// slice numbers so every slice differs by at most one iteration.
func (r *wsRun) chunkSize(k int) int {
	base := r.splitWork / r.chunks
	if k <= r.splitWork%r.chunks {
		base++
	}
	return base
}

// markSplit records that worker self executed a split slice. Go 1.22 has no
// atomic Or, so the bit lands via a CAS loop.
func (r *wsRun) markSplit(self int) {
	bit := uint64(1) << (uint(self) % 64)
	for {
		old := r.splitMask.Load()
		if old&bit != 0 || r.splitMask.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// notify wakes up to k parked workers, dropping tokens once the semaphore
// is full (at that point every worker already has a pending wakeup).
func (r *wsRun) notify(k int) {
	for i := 0; i < k; i++ {
		select {
		case r.wake <- struct{}{}:
		default:
			return
		}
	}
}

// steal scans the other workers' deques round-robin from self+1 and takes
// half of the first non-empty one: the first stolen item is returned to
// execute immediately, the rest land on self's deque (with a notify so
// other parked workers can re-steal the surplus).
func (r *wsRun) steal(self int, scratch *[]wsItem) (wsItem, bool) {
	w := len(r.deques)
	for off := 1; off < w; off++ {
		victim := r.deques[(self+off)%w]
		got := victim.stealHalf((*scratch)[:0])
		if len(got) == 0 {
			continue
		}
		r.steals.Add(1)
		if len(got) > 1 {
			r.deques[self].pushBatch(got[1:])
			r.notify(len(got) - 1)
		}
		first := got[0]
		*scratch = got[:0]
		return first, true
	}
	return wsItem{}, false
}

// worker is one scheduler goroutine: execute the local deque depth-first,
// steal when it runs dry, park when the whole frontier is empty.
func (r *wsRun) worker(ctx context.Context, self int) {
	q := r.deques[self]
	n := int64(len(r.values))
	parentBuf := make([]uint64, 0, 16)
	batch := make([]wsItem, 0, 16)
	stealBuf := make([]wsItem, 0, 16)
	var next wsItem
	have := false
	for {
		if !have {
			var ok bool
			if next, ok = q.popTail(); !ok {
				if next, ok = r.steal(self, &stealBuf); !ok {
					select {
					case <-r.done:
						return
					case <-ctx.Done():
						return
					case <-r.wake:
						continue
					}
				}
			}
			have = true
		}
		// One cheap cancellation poll per item: a non-blocking receive on a
		// not-ready channel stays on its lock-free fast path.
		select {
		case <-ctx.Done():
			return
		default:
		}
		it := next
		have = false

		// Split-work protocol: the first worker to touch a node stakes out
		// its slice counter and publishes slices 2..chunks for others to
		// steal, then burns slice 1 itself. Whichever worker's decrement
		// hits zero falls through to finalize the node; everyone else goes
		// back for more work. The counter store precedes the publish (deque
		// mutex), so slice holders always see it initialized, and the
		// decrement chain orders every slice's spin before the finalize.
		if r.splitWork > 0 {
			if r.chunks == 1 {
				spin(r.splitWork)
			} else {
				if it.chunk == 0 {
					r.remaining[it.id].Store(int32(r.chunks))
					batch = batch[:0]
					for k := int32(2); k <= int32(r.chunks); k++ {
						batch = append(batch, wsItem{id: it.id, chunk: k})
					}
					q.pushBatch(batch)
					r.notify(len(batch))
					r.markSplit(self)
					spin(r.chunkSize(1))
				} else {
					r.markSplit(self)
					spin(r.chunkSize(int(it.chunk)))
				}
				if r.remaining[it.id].Add(-1) > 0 {
					continue
				}
			}
		}
		id := it.id

		parentBuf = parentBuf[:0]
		for _, p := range r.d.Parents(id) {
			parentBuf = append(parentBuf, r.values[p])
		}
		r.values[id] = r.f(id, parentBuf)

		// Retire: collect every child whose last dependency this was, keep
		// the first to run next, and publish the rest in one batched push.
		batch = batch[:0]
		for _, c := range r.d.Children(id) {
			if r.pending[c].Add(-1) == 0 {
				batch = append(batch, wsItem{id: c})
			}
		}
		if len(batch) > 0 {
			next = batch[0]
			have = true
			if len(batch) > 1 {
				q.pushBatch(batch[1:])
				r.notify(len(batch) - 1)
			}
		}
		if r.retired.Add(1) == n {
			close(r.done)
			return
		}
	}
}
