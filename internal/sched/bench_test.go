package sched

import (
	"context"
	"fmt"
	"testing"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
)

// Baseline benchmarks for the two generator shapes, parameterized by worker
// count, so perf PRs can compare like for like:
//
//	go test -bench 'BenchmarkRandomDAG|BenchmarkPipelineDAG' -benchmem ./internal/sched/

const benchWork = 500 // per-node busy work; enough that scheduling isn't the whole cost

var benchWorkerCounts = []int{1, 2, 4, 8}

func BenchmarkRandomDAG(b *testing.B) {
	d, err := gen.RandomDAG(2000, 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CountPathsParallel(ctx, d, workers, benchWork); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPipelineDAG(b *testing.B) {
	// Deep and narrow: large span, the shape that stresses scheduler depth.
	d, err := gen.PipelineDAG(500, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CountPathsParallel(ctx, d, workers, benchWork); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
