package sched

import (
	"context"
	"strings"
	"testing"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Workloads()
	for _, want := range []string{"pathcount", "hashchain", "longestpath"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("built-in workload %q not registered (have %v)", want, names)
		}
	}
	def, err := LookupWorkload("")
	if err != nil {
		t.Fatalf("LookupWorkload(\"\"): %v", err)
	}
	if def.Name() != DefaultWorkload {
		t.Errorf("empty name resolved to %q, want %q", def.Name(), DefaultWorkload)
	}
	if _, err := LookupWorkload("bogus"); err == nil {
		t.Error("LookupWorkload(bogus) succeeded")
	} else if !strings.Contains(err.Error(), "pathcount") {
		t.Errorf("unknown-workload error should name the registered set, got %v", err)
	}
}

func TestRegisterWorkloadRejectsBadNames(t *testing.T) {
	if err := RegisterWorkload(&funcWorkload{name: "", fn: pathCountFn}); err == nil {
		t.Error("empty-name registration succeeded")
	}
	if err := RegisterWorkload(&funcWorkload{name: DefaultWorkload, fn: pathCountFn}); err == nil {
		t.Error("duplicate registration succeeded")
	}
}

// TestAllWorkloadsParallelMatchesSerial is the registry-wide version of the
// original pathcount self-check: every registered workload must verify its
// parallel result against its own serial reference, on both generator
// shapes, with and without emulated work.
func TestAllWorkloadsParallelMatchesSerial(t *testing.T) {
	random, err := gen.RandomDAG(500, 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	pipeline, err := gen.PipelineDAG(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Workloads() {
		w, err := LookupWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			label string
			d     *dag.DAG
			work  int
		}{
			{"random", random, 0},
			{"random+work", random, 20},
			{"pipeline", pipeline, 0},
		} {
			serial, err := w.Serial(context.Background(), tc.d, tc.work)
			if err != nil {
				t.Fatalf("%s/%s: Serial: %v", name, tc.label, err)
			}
			parallel, err := New(tc.d, Options{Workers: 8}).Run(context.Background(), w.Compute(tc.work))
			if err != nil {
				t.Fatalf("%s/%s: Run: %v", name, tc.label, err)
			}
			if err := w.Verify(tc.d, serial, parallel); err != nil {
				t.Errorf("%s/%s: %v", name, tc.label, err)
			}
		}
	}
}

func TestVerifyReportsDivergence(t *testing.T) {
	d, err := gen.PipelineDAG(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := LookupWorkload(DefaultWorkload)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := w.Serial(context.Background(), d, 0)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := make([]uint64, len(serial))
	copy(corrupt, serial)
	corrupt[3]++
	if err := w.Verify(d, serial, corrupt); err == nil {
		t.Error("Verify accepted a corrupted result")
	} else if !strings.Contains(err.Error(), "node 3") {
		t.Errorf("Verify error should name the diverging node, got %v", err)
	}
	if err := w.Verify(d, serial, serial[:len(serial)-1]); err == nil {
		t.Error("Verify accepted a length mismatch")
	}
}

// TestHashChainOrderSensitive proves the hashchain mix is non-commutative:
// the same three-node graph built with its two edges in opposite order
// (which flips the Parents order of the join node) must produce a different
// digest at the join. This is the property that lets the self-check catch
// out-of-order parent delivery, not just missed dependencies.
func TestHashChainOrderSensitive(t *testing.T) {
	build := func(first, second dag.NodeID) *dag.DAG {
		b := dag.NewBuilder(3)
		if err := b.AddEdge(first, 2); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(second, 2); err != nil {
			t.Fatal(err)
		}
		d, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	w, err := LookupWorkload("hashchain")
	if err != nil {
		t.Fatal(err)
	}
	a, err := w.Serial(context.Background(), build(0, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := w.Serial(context.Background(), build(1, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != bb[0] || a[1] != bb[1] {
		t.Fatal("source digests changed with edge order; they must depend only on node ID")
	}
	if a[2] == bb[2] {
		t.Errorf("join digest %#x identical under reversed parent order; hashchain mix is commutative", a[2])
	}
}

func TestLongestPathMatchesDepth(t *testing.T) {
	d, err := gen.PipelineDAG(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := LookupWorkload("longestpath")
	if err != nil {
		t.Fatal(err)
	}
	values, err := w.Serial(context.Background(), d, 0)
	if err != nil {
		t.Fatal(err)
	}
	sink := dag.NodeID(d.NumNodes() - 1)
	if got, want := values[sink], uint64(d.Depth()); got != want {
		t.Errorf("longestpath sink value = %d, want graph depth %d", got, want)
	}
	for _, s := range d.Sources() {
		if values[s] != 0 {
			t.Errorf("source %d depth = %d, want 0", s, values[s])
		}
	}
}

// TestManyWorkersFewNodes parks most of the pool immediately and exercises
// the wake/steal/termination handshake with far more workers than nodes.
func TestManyWorkersFewNodes(t *testing.T) {
	b := dag.NewBuilder(4)
	for _, e := range [][2]dag.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		parallel, err := New(d, Options{Workers: 32}).Run(context.Background(), PathCount(0))
		if err != nil {
			t.Fatal(err)
		}
		assertEqualCounts(t, CountPathsSerial(d, 0), parallel)
	}
}

// TestWideFanout drives the batched-enqueue path hard: one source retires
// and publishes ~2000 ready children in a single batch, which idle workers
// must then steal and drain.
func TestWideFanout(t *testing.T) {
	const width = 2000
	b := dag.NewBuilder(width + 2)
	source, sink := dag.NodeID(0), dag.NodeID(width+1)
	for i := 1; i <= width; i++ {
		if err := b.AddEdge(source, dag.NodeID(i)); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(dag.NodeID(i), sink); err != nil {
			t.Fatal(err)
		}
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	serial := CountPathsSerial(d, 0)
	parallel, err := CountPathsParallel(context.Background(), d, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualCounts(t, serial, parallel)
	if serial[sink] != width {
		t.Errorf("fan-out sink count = %d, want %d", serial[sink], width)
	}
}
