package sched

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
)

// Workload bundles everything the engine needs to run one kind of per-node
// computation over a DAG: a registry name, the concurrent Compute hook, a
// single-threaded reference sweep, and a verifier comparing the two. The
// scheduler itself is workload-agnostic; the run layer resolves a workload
// by name at admission time and dispatches through this interface, so new
// scenarios plug in without touching the scheduler or the service.
type Workload interface {
	// Name is the registry key ("pathcount", "hashchain", ...).
	Name() string
	// Compute returns the per-node hook with work busy-iterations of
	// emulated compute folded in. The returned hook must be safe for
	// concurrent invocation on distinct nodes.
	Compute(work int) Compute
	// Serial computes the reference values with a single-threaded sweep in
	// topological order, polling ctx for cooperative cancellation.
	Serial(ctx context.Context, d *dag.DAG, work int) ([]uint64, error)
	// Verify checks the parallel values against the serial reference and
	// returns a descriptive error on the first divergence.
	Verify(d *dag.DAG, serial, parallel []uint64) error
}

// SplitComputable is the optional Workload extension behind the
// parallel_work spec knob (Nabbit UseParallelNodes). A workload that can
// separate its emulated busy-work from its value recurrence implements
// PureCompute, returning the hook with NO spin folded in; the scheduler
// then burns the work itself via Options.SplitWork, sliced across idle
// workers, and finalizes the node with the pure hook. Workloads whose
// "work" is inherent to the value computation cannot split and simply
// don't implement this — admission rejects parallel_work for them.
type SplitComputable interface {
	PureCompute() Compute
}

// DefaultWorkload is the registry key assumed when a caller names no
// workload.
const DefaultWorkload = "pathcount"

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Workload)
)

// RegisterWorkload adds w to the registry. It rejects empty names and
// duplicates, so a name can never be silently rebound underneath a running
// service.
func RegisterWorkload(w Workload) error {
	name := w.Name()
	if name == "" {
		return fmt.Errorf("sched: workload has empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("sched: workload %q already registered", name)
	}
	registry[name] = w
	return nil
}

// LookupWorkload resolves a workload name; the empty string resolves to
// DefaultWorkload. Unknown names report the registered set, so admission
// errors tell the caller what would have been accepted.
func LookupWorkload(name string) (Workload, error) {
	if name == "" {
		name = DefaultWorkload
	}
	registryMu.RLock()
	w, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown workload %q (registered: %s)",
			name, strings.Join(Workloads(), ", "))
	}
	return w, nil
}

// Workloads returns the sorted names of all registered workloads.
func Workloads() []string {
	registryMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}

// nodeFunc is the pure per-node recurrence of a workload: the node's value
// as a function of its ID and its parents' values (in Parents order).
type nodeFunc func(id dag.NodeID, parentValues []uint64) uint64

// funcWorkload adapts a nodeFunc into a full Workload: Compute folds in
// spin()-emulated per-node work, Serial is a cancellable topological sweep,
// and Verify compares elementwise. All built-in workloads are funcWorkloads;
// external implementations may satisfy Workload directly.
type funcWorkload struct {
	name string
	fn   nodeFunc
}

func (w *funcWorkload) Name() string { return w.name }

func (w *funcWorkload) Compute(work int) Compute {
	fn := w.fn
	return func(id dag.NodeID, parentValues []uint64) uint64 {
		spin(work)
		return fn(id, parentValues)
	}
}

// PureCompute implements SplitComputable: the recurrence with no emulated
// work, for split-work runs where the scheduler spins on the workload's
// behalf. The serial reference still spins inline, so split and unsplit
// runs verify against the same values (spin never feeds the recurrence).
func (w *funcWorkload) PureCompute() Compute {
	fn := w.fn
	return func(id dag.NodeID, parentValues []uint64) uint64 {
		return fn(id, parentValues)
	}
}

func (w *funcWorkload) Serial(ctx context.Context, d *dag.DAG, work int) ([]uint64, error) {
	return serialSweep(ctx, d, work, w.fn)
}

func (w *funcWorkload) Verify(d *dag.DAG, serial, parallel []uint64) error {
	if len(serial) != len(parallel) {
		return fmt.Errorf("sched: workload %s: serial computed %d values, parallel %d",
			w.name, len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			return fmt.Errorf("sched: workload %s: node %d: parallel value %#x != serial reference %#x",
				w.name, i, parallel[i], serial[i])
		}
	}
	return nil
}

// serialSweep evaluates fn over d in topological order on one goroutine,
// burning work spin iterations per node. It polls ctx on a spin-iteration
// budget, not a fixed node stride: with heavy per-node work a 64-node
// stride would mean seconds between checks, defeating prompt cancellation
// and shutdown force-cancel.
func serialSweep(ctx context.Context, d *dag.DAG, work int, fn nodeFunc) ([]uint64, error) {
	const pollBudget = 1 << 20
	pollEvery := 64
	if work > 0 {
		if pollEvery = pollBudget / work; pollEvery < 1 {
			pollEvery = 1
		} else if pollEvery > 64 {
			pollEvery = 64
		}
	}
	values := make([]uint64, d.NumNodes())
	buf := make([]uint64, 0, 16)
	for i, u := range d.TopoOrder() {
		if i%pollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		spin(work)
		buf = buf[:0]
		for _, p := range d.Parents(u) {
			buf = append(buf, values[p])
		}
		values[u] = fn(u, buf)
	}
	return values, nil
}

// Built-in workloads. pathcount is the original source→sink path counter;
// hashchain stresses ordering correctness with a non-commutative mix; and
// longestpath computes each node's critical-path depth.
func init() {
	for _, w := range []*funcWorkload{
		{name: "pathcount", fn: pathCountFn},
		{name: "hashchain", fn: hashChainFn},
		{name: "longestpath", fn: longestPathFn},
	} {
		if err := RegisterWorkload(w); err != nil {
			panic(err)
		}
	}
}

// pathCountFn counts distinct source→any-node paths: sources get 1, every
// other node the sum of its parents' counts, in wrapping uint64 arithmetic.
func pathCountFn(id dag.NodeID, parentValues []uint64) uint64 {
	if len(parentValues) == 0 {
		return 1
	}
	var sum uint64
	for _, v := range parentValues {
		sum += v
	}
	return sum
}

// hashChainFn folds the parents' digests into the node's own seed with a
// multiply-xor-rotate mix. The mix is deliberately non-commutative and
// non-associative: reordering parents changes the digest, so a scheduler
// that ever presented parent values out of Parents order would be caught
// by the serial-vs-parallel self-check, not just one that dropped a
// dependency edge (which pathcount already catches).
func hashChainFn(id dag.NodeID, parentValues []uint64) uint64 {
	h := (uint64(id) + 1) * 0x9e3779b97f4a7c15 // splitmix-style per-node seed
	h ^= h >> 29
	for _, v := range parentValues {
		h = (h ^ v) * 0x100000001b3
		h = bits.RotateLeft64(h, 23)
	}
	return h
}

// longestPathFn computes the critical-path depth: sources are 0, every
// other node max(parents)+1. The sink values of a pipeline DAG equal the
// graph's Depth(), which doubles as a cheap structural cross-check.
func longestPathFn(id dag.NodeID, parentValues []uint64) uint64 {
	var m uint64
	for _, v := range parentValues {
		if v > m {
			m = v
		}
	}
	if len(parentValues) == 0 {
		return 0
	}
	return m + 1
}
