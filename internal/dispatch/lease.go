package dispatch

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

// This file is the remote half of the dispatcher: in lease mode
// (Options.Remote) no in-process pool drains the tenant queues — instead
// internal/fleet pulls ready runs through Lease on behalf of registered
// workers and reports outcomes back through CompleteLease, or gives up on
// a dead worker through ExpireLease. The scheduling policy (strict
// priority between classes, weighted deficit round-robin within one,
// in-flight caps) is exactly the embedded policy: Lease runs the same
// pick over the same queues, so fairness guarantees hold no matter where
// execution happens.

// Lease blocks until a queued run matching the worker's supported
// workloads is scheduled to it, then transitions the run to running
// (store.Begin, attributing it to worker and logging the grant through
// the WAL-backed store) and returns the running snapshot. It returns
// ctx.Err() when the caller gives up waiting (long-poll deadline),
// ErrShuttingDown once a drain has begun and the queues are empty.
//
// supports filters which queue entries this worker may take, by workload
// name and DAG shape (nil accepts everything); a tenant whose queued work
// is entirely unsupported is skipped without losing its rotation credit.
// onCancel is the run's cancel hook: the store invokes it (possibly under
// a store shard lock — it must not call back into the dispatcher) when
// cancellation is requested, and the fleet layer relays it to the worker
// on its next heartbeat.
func (d *Dispatcher) Lease(ctx context.Context, worker string, supports func(workload, shape string) bool, onCancel func(id string)) (run.Run, error) {
	stop := context.AfterFunc(ctx, func() {
		// Lock-step with the wait loop below so a cancellation arriving
		// between the ctx.Err() check and cond.Wait() is never lost.
		d.mu.Lock()
		defer d.mu.Unlock()
		d.cond.Broadcast()
	})
	defer stop()

	for {
		d.mu.Lock()
		var picked queued
		var tq *tenantQueue
		for {
			if err := ctx.Err(); err != nil {
				d.mu.Unlock()
				return run.Run{}, err
			}
			found := false
			for _, cl := range d.classes {
				if tq, picked, found = cl.pick(supports); found {
					break
				}
			}
			if found {
				break
			}
			// A drain keeps serving leases until the queues are empty:
			// queued work still needs workers. Leased runs finishing is
			// drainRemote's concern, not Lease's.
			if d.closed && d.queuedLocked() == 0 {
				d.mu.Unlock()
				return run.Run{}, ErrShuttingDown
			}
			d.cond.Wait()
		}
		tq.inflight++
		d.leased[picked.id] = &leaseEntry{tq: tq, workload: picked.workload, shape: picked.shape}
		now := time.Now()
		d.met.queueWait.With(tq.cfg.Name).Observe(now.Sub(picked.at).Seconds())
		d.mu.Unlock()

		// Begin outside mu: the WAL-backed store fsyncs here.
		r, err := d.store.Begin(picked.id, now, worker, func() { onCancel(picked.id) })
		if err != nil {
			if errors.Is(err, run.ErrNotQueued) || errors.Is(err, run.ErrNotFound) {
				// Cancelled while queued and popped before Cancel could
				// unlink it: release the claim and pick again.
				d.mu.Lock()
				delete(d.leased, picked.id)
				tq.inflight--
				d.cond.Broadcast()
				d.mu.Unlock()
				continue
			}
			// Durable-append failure with the in-memory transition standing
			// (see wal.Store.Begin): lease it anyway — abandoning the run
			// now would strand it in running with no lease to expire.
			log.Printf("dispatch: recording lease of %s by %s: %v (leasing anyway)", picked.id, worker, err)
		}
		return r, nil
	}
}

// CompleteLease records a worker-reported outcome for a leased run and
// releases its lease: state must be terminal, and errMsg carries the
// worker-side error text for failed and cancelled outcomes. It returns
// ErrNotLeased when the run has no outstanding lease — the loser of a
// completion-vs-expiry race — in which case the report is discarded and
// the re-dispatched attempt proceeds elsewhere.
func (d *Dispatcher) CompleteLease(id string, state run.State, errMsg string, result *run.Result) (run.Run, error) {
	d.mu.Lock()
	le, ok := d.leased[id]
	if !ok {
		d.mu.Unlock()
		return run.Run{}, ErrNotLeased
	}
	delete(d.leased, id)
	d.mu.Unlock()

	// Reconstitute the worker's outcome as the error Finish classifies:
	// nil → succeeded, a context.Canceled-wrapped error → cancelled,
	// anything else → failed.
	var runErr error
	switch state {
	case run.StateSucceeded:
	case run.StateCancelled:
		if errMsg == "" {
			runErr = context.Canceled
		} else {
			runErr = fmt.Errorf("%s: %w", errMsg, context.Canceled)
		}
	default:
		if errMsg == "" {
			errMsg = "worker reported failure"
		}
		runErr = errors.New(errMsg)
	}

	fr, ferr := d.store.Finish(id, result, runErr)
	if ferr != nil && !errors.Is(ferr, run.ErrNotRunning) {
		log.Printf("dispatch: recording completion of %s: %v", id, ferr)
	}
	if ferr == nil {
		d.met.completed.With(fr.Spec.Tenant, fr.State.String()).Inc()
		if fr.StartedAt != nil && fr.FinishedAt != nil {
			d.met.runDuration.With(fr.Spec.Workload, fr.Spec.Shape.String()).
				Observe(fr.FinishedAt.Sub(*fr.StartedAt).Seconds())
		}
		if result != nil {
			d.met.runNodes.With(fr.Spec.Workload).Add(float64(result.Nodes))
		}
	}
	d.release(le.tq, true)
	d.store.EvictTerminal(d.opts.RetainRuns)
	return fr, ferr
}

// ExpireLease abandons a leased run whose worker stopped heartbeating:
// the run is requeued through the store (Restarts++, WAL-logged with the
// same requeue record crash recovery writes) and re-enqueued at the tail
// of its tenant's queue for re-dispatch, bypassing queue-depth quotas the
// same way crash recovery does — the work was already admitted once.
// Returns ErrNotLeased when the run's completion won the race.
func (d *Dispatcher) ExpireLease(id string) (run.Run, error) {
	d.mu.Lock()
	le, ok := d.leased[id]
	if !ok {
		d.mu.Unlock()
		return run.Run{}, ErrNotLeased
	}
	delete(d.leased, id)
	d.mu.Unlock()

	r, err := d.store.Requeue(id)
	if err != nil {
		// The run left the running state some other way (e.g. it was
		// deleted); just surrender the slot.
		d.release(le.tq, false)
		return r, err
	}
	d.mu.Lock()
	le.tq.inflight--
	le.tq.queue = append(le.tq.queue, queued{id: id, at: time.Now(), workload: le.workload, shape: le.shape})
	d.cond.Broadcast()
	d.mu.Unlock()
	d.met.redispatched.With(r.Spec.Tenant).Inc()
	return r, nil
}

// LeasedLen returns how many runs are currently leased to remote workers.
func (d *Dispatcher) LeasedLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.leased)
}

// Remote reports whether the dispatcher runs in lease mode.
func (d *Dispatcher) Remote() bool { return d.opts.Remote }
