// Package dispatch pulls queued runs off a bounded queue and executes them
// on a pool of dispatcher goroutines, recording outcomes back into the run
// store. It is the bridge between the dagd API surface (internal/server)
// and the DAG engine (internal/gen + internal/sched).
//
// Each dispatcher executes one run at a time via run.Execute (the same
// path the dagbench CLI uses): generate, serial reference, concurrent
// scheduler, self-check. Every run gets its own cancellable context
// registered in the store, so POST /v1/runs/{id}/cancel aborts the exact
// run it names, and Shutdown can drain gracefully or force-cancel
// everything in flight. Cancelling a run that is still queued removes it
// from the queue immediately, freeing its slot for new submissions.
package dispatch

import (
	"context"
	"errors"
	"log"
	"runtime"
	"sync"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

// Submission/shutdown errors.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity; the caller should surface backpressure (HTTP 429).
	ErrQueueFull = errors.New("dispatch: queue full")
	// ErrShuttingDown is returned by Submit after Shutdown has begun.
	ErrShuttingDown = errors.New("dispatch: shutting down")
)

// Options configures a Dispatcher.
type Options struct {
	// QueueDepth bounds how many runs may wait in the queue. Zero or
	// negative means 256.
	QueueDepth int
	// Dispatchers is the number of goroutines executing runs, i.e. how
	// many runs proceed concurrently. Zero or negative means NumCPU.
	Dispatchers int
	// DefaultRunWorkers is the scheduler pool size for specs that leave
	// Workers at 0. Zero or negative means NumCPU.
	DefaultRunWorkers int
	// DefaultWorkload is stamped onto specs that name no workload. Empty
	// means the registry default (sched.DefaultWorkload). An unknown name
	// here is caught by spec validation at Submit time.
	DefaultWorkload string
	// RetainRuns bounds how many terminal runs the store keeps; the
	// oldest-finished are evicted past it. Zero means 4096; negative
	// means unlimited retention.
	RetainRuns int
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.Dispatchers <= 0 {
		o.Dispatchers = runtime.NumCPU()
	}
	if o.DefaultRunWorkers <= 0 {
		o.DefaultRunWorkers = runtime.NumCPU()
	}
	if o.RetainRuns == 0 {
		o.RetainRuns = 4096
	}
	return o
}

// Dispatcher owns the bounded run queue and the goroutine pool draining it.
type Dispatcher struct {
	store run.Store
	opts  Options

	// baseCtx parents every run's context; force-cancelling it aborts all
	// in-flight runs during a hard shutdown.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	wg sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []string // pending run IDs, FIFO; length is the live backlog
	closed bool
}

// New creates a Dispatcher recording into store (any run.Store — in-memory
// or WAL-backed) and starts its goroutine pool. Callers must eventually
// call Shutdown.
func New(store run.Store, opts Options) *Dispatcher {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	d := &Dispatcher{
		store:      store,
		opts:       opts,
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	d.cond = sync.NewCond(&d.mu)
	for i := 0; i < opts.Dispatchers; i++ {
		d.wg.Add(1)
		go d.loop()
	}
	return d
}

// QueueDepth returns the queue capacity (for health reporting).
func (d *Dispatcher) QueueDepth() int { return d.opts.QueueDepth }

// QueueLen returns how many runs are currently waiting.
func (d *Dispatcher) QueueLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.queue)
}

// Dispatchers returns the pool size.
func (d *Dispatcher) Dispatchers() int { return d.opts.Dispatchers }

// Draining reports whether Shutdown has begun, i.e. whether new
// submissions would be refused with ErrShuttingDown. Readiness probes use
// this to flip unready while liveness stays green.
func (d *Dispatcher) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// Submit validates spec, registers a queued run, and enqueues it. It never
// blocks: a full queue fails fast with ErrQueueFull and no run is left
// behind in the store.
func (d *Dispatcher) Submit(spec run.Spec) (run.Run, error) {
	// Stamp the service default before validation so the stored spec (and
	// any 400 for a bad default) reflects what will actually execute.
	if spec.Workload == "" {
		spec.Workload = d.opts.DefaultWorkload
	}
	if err := spec.Validate(); err != nil {
		return run.Run{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return run.Run{}, ErrShuttingDown
	}
	if len(d.queue) >= d.opts.QueueDepth {
		return run.Run{}, ErrQueueFull
	}
	r, err := d.store.Create(spec)
	if err != nil {
		// Durable stores refuse to admit a run they could not log; surface
		// the failure instead of accepting work that a restart would lose.
		return run.Run{}, err
	}
	d.queue = append(d.queue, r.ID)
	d.cond.Signal()
	return r, nil
}

// Recover enqueues runs that already exist in the store as queued — the
// interrupted runs a durable store re-admitted during crash recovery. It
// deliberately ignores QueueDepth: recovered work was admitted before the
// restart, and dropping it now would turn a crash into silent data loss.
// The transient over-depth backlog drains like any other. Returns how many
// runs were enqueued (zero after Shutdown has begun).
func (d *Dispatcher) Recover(ids []string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0
	}
	d.queue = append(d.queue, ids...)
	d.cond.Broadcast()
	return len(ids)
}

// Cancel requests cancellation of the identified run (see run.Store.Cancel
// for the state semantics). A run cancelled while still queued is removed
// from the queue immediately, so its slot is free for new submissions.
func (d *Dispatcher) Cancel(id string) (run.Run, error) {
	r, err := d.store.Cancel(id)
	if err == nil && r.State == run.StateCancelled && r.StartedAt == nil {
		// Cancelled straight out of the queue: drop the pending entry.
		d.mu.Lock()
		for i, qid := range d.queue {
			if qid == id {
				d.queue = append(d.queue[:i], d.queue[i+1:]...)
				break
			}
		}
		d.mu.Unlock()
	}
	return r, err
}

// Shutdown stops accepting new runs, lets queued and in-flight runs drain,
// and waits for the pool to exit. If ctx expires first, every in-flight
// run is force-cancelled (it will finish as cancelled) and Shutdown keeps
// waiting for the pool, returning ctx's error. Shutdown is idempotent.
func (d *Dispatcher) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		d.cond.Broadcast()
	}
	d.mu.Unlock()

	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		d.baseCancel()
		<-done
		return ctx.Err()
	}
}

// next blocks until a run ID is available or the queue is closed and
// drained; ok is false only on the latter.
func (d *Dispatcher) next() (id string, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.queue) == 0 && !d.closed {
		d.cond.Wait()
	}
	if len(d.queue) == 0 {
		return "", false
	}
	id = d.queue[0]
	d.queue = d.queue[1:]
	return id, true
}

// loop is one dispatcher goroutine: pop, execute, repeat until the queue
// closes and drains.
func (d *Dispatcher) loop() {
	defer d.wg.Done()
	for {
		id, ok := d.next()
		if !ok {
			return
		}
		d.execute(id)
	}
}

// execute runs one queued run end to end and records its outcome.
func (d *Dispatcher) execute(id string) {
	ctx, cancel := context.WithCancel(d.baseCtx)
	defer cancel()

	r, err := d.store.Begin(id, cancel)
	if err != nil {
		if errors.Is(err, run.ErrNotQueued) || errors.Is(err, run.ErrNotFound) {
			// Cancelled while queued and popped before Cancel could unlink
			// it (or rolled back): the run never became ours to execute.
			return
		}
		// Anything else is a durable-store append failure — the in-memory
		// queued→running transition stood (see wal.Store.Begin), so
		// abandoning the run here would strand it in running forever, with
		// every Await parked on it. Execute it; only its begin record may
		// be missing from the log.
		log.Printf("dispatch: recording begin of %s: %v (executing anyway)", id, err)
	}

	res, err := run.Execute(ctx, r.Spec, d.opts.DefaultRunWorkers)
	if _, ferr := d.store.Finish(id, res, err); ferr != nil && !errors.Is(ferr, run.ErrNotRunning) {
		// A WAL append failure: the outcome is recorded in memory but may
		// not survive a restart. Nothing the dispatcher can do beyond log.
		log.Printf("dispatch: recording finish of %s: %v", id, ferr)
	}
	d.store.EvictTerminal(d.opts.RetainRuns)
}
