// Package dispatch admits queued runs into per-tenant bounded queues and
// executes them on a pool of dispatcher goroutines, recording outcomes back
// into the run store. It is the bridge between the dagd API surface
// (internal/server) and the DAG engine (internal/gen + internal/sched).
//
// # Multi-tenant scheduling
//
// Every run belongs to a tenant (internal/tenant): submissions are
// attributed at admission, rate-limited by the tenant's token bucket, and
// bounded by the tenant's queue-depth quota. Dispatchers drain the queues
// with strict priority between tenant priority classes and weighted
// deficit round-robin within a class, so a single heavy tenant saturating
// its own queue cannot starve anyone else: each rotation gives every
// backlogged tenant `weight` runs. A tenant at its in-flight cap is
// skipped — its queued work waits without blocking other tenants' queues.
//
// Each dispatcher executes one run at a time via run.Execute (the same
// path the dagbench CLI uses): generate, serial reference, concurrent
// scheduler, self-check. Every run gets its own cancellable context
// registered in the store, so POST /v1/runs/{id}/cancel aborts the exact
// run it names, and Shutdown can drain gracefully or force-cancel
// everything in flight. Cancelling a run that is still queued removes it
// from its tenant's queue immediately, freeing the slot for new
// submissions.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/metrics"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/tenant"
)

// Submission/shutdown errors.
var (
	// ErrQueueFull is returned by Submit when the tenant's queue is at the
	// service-wide default depth; the caller should surface backpressure
	// (HTTP 429).
	ErrQueueFull = errors.New("dispatch: queue full")
	// ErrQuotaExceeded is returned by Submit when the tenant's explicitly
	// configured queue-depth quota is exhausted (HTTP 429).
	ErrQuotaExceeded = errors.New("dispatch: tenant queue quota exceeded")
	// ErrRateLimited is returned by Submit when the tenant's token bucket
	// is empty; the wrapping RetryableError carries how long until the next
	// token accrues (HTTP 429 + Retry-After).
	ErrRateLimited = errors.New("dispatch: tenant submit rate exceeded")
	// ErrShuttingDown is returned by Submit after Shutdown has begun.
	ErrShuttingDown = errors.New("dispatch: shutting down")
	// ErrNotLeased is returned by CompleteLease and ExpireLease when the
	// run has no outstanding lease — typically the loser of a completion
	// vs. expiry race, whose report must be discarded.
	ErrNotLeased = errors.New("dispatch: run not leased")
)

// RetryableError wraps a backpressure rejection (ErrRateLimited,
// ErrQuotaExceeded, ErrQueueFull) with the tenant it hit and a retry hint
// the API layer surfaces as the Retry-After header.
type RetryableError struct {
	Err        error
	Tenant     string
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *RetryableError) Error() string {
	return fmt.Sprintf("%v (tenant %q, retry after %v)", e.Err, e.Tenant, e.RetryAfter)
}

// Unwrap exposes the underlying sentinel to errors.Is.
func (e *RetryableError) Unwrap() error { return e.Err }

// Options configures a Dispatcher.
type Options struct {
	// QueueDepth bounds how many runs may wait in a tenant's queue when the
	// tenant config sets no MaxQueueDepth of its own. Zero or negative
	// means 256.
	QueueDepth int
	// Dispatchers is the number of goroutines executing runs, i.e. how
	// many runs proceed concurrently. Zero or negative means NumCPU.
	Dispatchers int
	// DefaultRunWorkers is the scheduler pool size for specs that leave
	// Workers at 0. Zero or negative means NumCPU.
	DefaultRunWorkers int
	// DefaultWorkload is stamped onto specs that name no workload. Empty
	// means the registry default (sched.DefaultWorkload). An unknown name
	// here is caught by spec validation at Submit time.
	DefaultWorkload string
	// RetainRuns bounds how many terminal runs the store keeps; the
	// oldest-finished are evicted past it. Zero means 4096; negative
	// means unlimited retention.
	RetainRuns int
	// Tenants is the admission policy: weights, priority classes, quotas,
	// and rate limits per tenant. Nil means a registry holding only the
	// catch-all default tenant, which reproduces the pre-tenant behavior
	// (one queue, QueueDepth bound, no rate limit).
	Tenants *tenant.Registry
	// Metrics receives the dispatcher's instrumentation (queue depths,
	// wait times, run outcomes). Nil disables it — every instrument in
	// internal/metrics is a no-op on nil.
	Metrics *metrics.Registry
	// Remote switches the dispatcher from embedded execution to lease
	// mode: no dispatcher goroutines are started, and ready runs are
	// handed out through Lease / CompleteLease / ExpireLease (driven by
	// internal/fleet) instead of being executed in-process. Admission,
	// tenant fair queuing, and the store contract are identical in both
	// modes.
	Remote bool
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.Dispatchers <= 0 {
		o.Dispatchers = runtime.NumCPU()
	}
	if o.DefaultRunWorkers <= 0 {
		o.DefaultRunWorkers = runtime.NumCPU()
	}
	if o.RetainRuns == 0 {
		o.RetainRuns = 4096
	}
	if o.Tenants == nil {
		// NewRegistry(nil) cannot fail: there is nothing to validate.
		o.Tenants, _ = tenant.NewRegistry(nil)
	}
	return o
}

// queued is one pending queue entry: the run's ID, when it entered the
// queue (so pops can observe queue-wait and scrapes the oldest entry's
// age), and its workload name and DAG shape so lease mode can match
// entries against a worker's advertised capabilities without a store read
// per candidate.
type queued struct {
	id       string
	at       time.Time
	workload string
	shape    string
}

// leaseEntry tracks one run handed to a remote worker: which tenant queue
// owns its in-flight slot and the workload/shape to re-stamp on the queue
// entry if the lease expires. Guarded by the Dispatcher's mu.
type leaseEntry struct {
	tq       *tenantQueue
	workload string
	shape    string
}

// tenantQueue is one tenant's scheduling state. All fields are guarded by
// the Dispatcher's mu.
type tenantQueue struct {
	cfg    tenant.Config
	bucket *tenant.Bucket // nil when the tenant has no submit rate limit

	queue    []queued // pending runs, FIFO within the tenant
	reserved int      // Submit slots held while store.Create runs outside mu
	inflight int      // runs currently claimed by dispatchers
	deficit  int      // deficit-round-robin credit within the priority class

	// Monotonic counters for stats.
	submitted   uint64 // runs admitted to the queue (including recoveries)
	completed   uint64 // runs executed to a terminal state by a dispatcher
	rejected    uint64 // submissions refused for queue depth / quota
	rateLimited uint64 // submissions refused by the token bucket
}

// depth is the tenant's effective queue bound: its configured quota, or
// the service-wide default.
func (tq *tenantQueue) depth(serviceDefault int) int {
	if tq.cfg.MaxQueueDepth > 0 {
		return tq.cfg.MaxQueueDepth
	}
	return serviceDefault
}

// atInFlightCap reports whether the tenant may not start another run.
func (tq *tenantQueue) atInFlightCap() bool {
	return tq.cfg.MaxInFlight > 0 && tq.inflight >= tq.cfg.MaxInFlight
}

// priorityClass is the deficit-round-robin rotation over one priority
// level's tenants. Guarded by the Dispatcher's mu.
type priorityClass struct {
	priority int
	order    []*tenantQueue
	cursor   int
}

// pick dequeues the next run this class should dispatch, or reports false
// when no tenant in the class has an eligible queued run. It implements
// unit-cost deficit round-robin: when the cursor reaches a backlogged
// tenant with no credit left, the tenant is granted `weight` credits and
// serves them one pick at a time before the cursor moves on — so over a
// full rotation each backlogged tenant drains runs in proportion to its
// weight. An empty queue forfeits its remaining credit (classic DRR: idle
// tenants must not bank bursts); a tenant at its in-flight cap is skipped
// with its credit intact and resumes when capacity frees up.
//
// eligible, when non-nil, restricts the pick to entries whose workload and
// DAG shape it accepts — lease mode passes the requesting worker's
// advertised capabilities. The earliest eligible entry in the tenant's
// FIFO is served; a tenant whose queued work is entirely ineligible is
// skipped with its credit intact, exactly like an at-cap tenant (another
// worker may drain it). A nil eligible reproduces the embedded pick byte
// for byte.
func (cl *priorityClass) pick(eligible func(workload, shape string) bool) (*tenantQueue, queued, bool) {
	n := len(cl.order)
	for i := 0; i < n; i++ {
		tq := cl.order[cl.cursor]
		if len(tq.queue) == 0 {
			tq.deficit = 0
			cl.cursor = (cl.cursor + 1) % n
			continue
		}
		if tq.atInFlightCap() {
			cl.cursor = (cl.cursor + 1) % n
			continue
		}
		j := 0
		if eligible != nil {
			j = -1
			for k := range tq.queue {
				if eligible(tq.queue[k].workload, tq.queue[k].shape) {
					j = k
					break
				}
			}
			if j < 0 {
				cl.cursor = (cl.cursor + 1) % n
				continue
			}
		}
		if tq.deficit <= 0 {
			tq.deficit = tq.cfg.Weight
		}
		tq.deficit--
		entry := tq.queue[j]
		if j == 0 {
			tq.queue = tq.queue[1:]
		} else {
			tq.queue = append(tq.queue[:j], tq.queue[j+1:]...)
		}
		if tq.deficit <= 0 || len(tq.queue) == 0 {
			cl.cursor = (cl.cursor + 1) % n
		}
		return tq, entry, true
	}
	return nil, queued{}, false
}

// Dispatcher owns the per-tenant run queues and the goroutine pool
// draining them.
type Dispatcher struct {
	store run.Store
	opts  Options

	// baseCtx parents every run's context; force-cancelling it aborts all
	// in-flight runs during a hard shutdown.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	wg sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string]*tenantQueue
	classes []*priorityClass // strictly descending by priority
	leased  map[string]*leaseEntry
	closed  bool

	met instruments
}

// instruments is the dispatcher's metric handles. Every field is nil-safe
// (see internal/metrics), so an unconfigured registry costs nothing.
type instruments struct {
	submits      *metrics.CounterVec   // dagd_submits_total{tenant}
	rejections   *metrics.CounterVec   // dagd_submit_rejections_total{tenant,reason}
	queueDepth   *metrics.GaugeVec     // dagd_queue_depth{tenant,priority}
	inflight     *metrics.GaugeVec     // dagd_inflight_runs{tenant,priority}
	oldestAge    *metrics.GaugeVec     // dagd_queue_oldest_age_seconds{tenant,priority}
	queueWait    *metrics.HistogramVec // dagd_queue_wait_seconds{tenant}
	completed    *metrics.CounterVec   // dagd_runs_completed_total{tenant,state}
	runDuration  *metrics.HistogramVec // dagd_run_duration_seconds{workload,shape}
	runNodes     *metrics.CounterVec   // dagd_run_nodes_total{workload}
	redispatched *metrics.CounterVec   // dagd_runs_redispatched_total{tenant}
}

// newInstruments registers the dispatcher's metric families. reg may be nil.
func newInstruments(reg *metrics.Registry) instruments {
	runBuckets := []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}
	return instruments{
		submits: reg.CounterVec("dagd_submits_total",
			"Runs admitted to a tenant queue (including crash-recovery re-admissions).", "tenant"),
		rejections: reg.CounterVec("dagd_submit_rejections_total",
			"Submissions refused, by cause: rate_limited, quota_exceeded, queue_full, shutting_down, invalid_spec.",
			"tenant", "reason"),
		queueDepth: reg.GaugeVec("dagd_queue_depth",
			"Runs currently waiting in the tenant's queue.", "tenant", "priority"),
		inflight: reg.GaugeVec("dagd_inflight_runs",
			"Runs currently claimed by dispatcher goroutines.", "tenant", "priority"),
		oldestAge: reg.GaugeVec("dagd_queue_oldest_age_seconds",
			"Age of the oldest queued run at scrape time (0 when the queue is empty).",
			"tenant", "priority"),
		queueWait: reg.HistogramVec("dagd_queue_wait_seconds",
			"Submit-to-dispatch latency: time a run waited in its tenant queue.",
			runBuckets, "tenant"),
		completed: reg.CounterVec("dagd_runs_completed_total",
			"Runs that reached a terminal state, by tenant and final state.", "tenant", "state"),
		runDuration: reg.HistogramVec("dagd_run_duration_seconds",
			"Wall time of run.Execute (generate + serial reference + parallel + verify).",
			runBuckets, "workload", "shape"),
		runNodes: reg.CounterVec("dagd_run_nodes_total",
			"DAG nodes executed by completed runs.", "workload"),
		redispatched: reg.CounterVec("dagd_runs_redispatched_total",
			"Runs requeued after their worker lease expired (Restarts incremented).", "tenant"),
	}
}

// New creates a Dispatcher recording into store (any run.Store — in-memory
// or WAL-backed) and starts its goroutine pool. Callers must eventually
// call Shutdown.
func New(store run.Store, opts Options) *Dispatcher {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	d := &Dispatcher{
		store:      store,
		opts:       opts,
		baseCtx:    ctx,
		baseCancel: cancel,
		queues:     make(map[string]*tenantQueue),
		leased:     make(map[string]*leaseEntry),
	}
	d.cond = sync.NewCond(&d.mu)

	byPriority := make(map[int]*priorityClass)
	for _, cfg := range opts.Tenants.Configs() {
		tq := &tenantQueue{cfg: cfg}
		if cfg.SubmitRate > 0 {
			tq.bucket = tenant.NewBucket(cfg.SubmitRate, cfg.SubmitBurst)
		}
		d.queues[cfg.Name] = tq
		cl, ok := byPriority[cfg.Priority]
		if !ok {
			cl = &priorityClass{priority: cfg.Priority}
			byPriority[cfg.Priority] = cl
			d.classes = append(d.classes, cl)
		}
		cl.order = append(cl.order, tq)
	}
	sort.Slice(d.classes, func(i, j int) bool { return d.classes[i].priority > d.classes[j].priority })
	// Deterministic rotation order within each class.
	for _, cl := range d.classes {
		sort.Slice(cl.order, func(i, j int) bool { return cl.order[i].cfg.Name < cl.order[j].cfg.Name })
	}

	d.met = newInstruments(opts.Metrics)
	// Queue depth, in-flight, and oldest-age are derived state refreshed at
	// scrape time: one lock acquisition per scrape instead of gauge
	// bookkeeping on every queue mutation.
	opts.Metrics.OnCollect(func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		now := time.Now()
		for name, tq := range d.queues {
			prio := strconv.Itoa(tq.cfg.Priority)
			d.met.queueDepth.With(name, prio).Set(float64(len(tq.queue)))
			d.met.inflight.With(name, prio).Set(float64(tq.inflight))
			age := 0.0
			if len(tq.queue) > 0 {
				age = now.Sub(tq.queue[0].at).Seconds()
			}
			d.met.oldestAge.With(name, prio).Set(age)
		}
	})

	// In remote mode no execution pool runs in-process; internal/fleet
	// drains the queues through Lease instead.
	if !opts.Remote {
		for i := 0; i < opts.Dispatchers; i++ {
			d.wg.Add(1)
			go d.loop()
		}
	}
	return d
}

// queueForLocked returns the queue a tenant name schedules into: the named
// tenant's own queue, or the catch-all default's. The registry is static
// for the dispatcher's lifetime, so the mapping never changes — a run
// enqueued, cancelled, or recovered under a name always lands on the same
// queue.
func (d *Dispatcher) queueForLocked(name string) *tenantQueue {
	if tq, ok := d.queues[name]; ok {
		return tq
	}
	return d.queues[tenant.Default]
}

// QueueDepth returns the default per-tenant queue capacity (for health
// reporting); tenants with a configured MaxQueueDepth use that instead.
func (d *Dispatcher) QueueDepth() int { return d.opts.QueueDepth }

// QueueLen returns how many runs are currently waiting across all tenants.
func (d *Dispatcher) QueueLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.queuedLocked()
}

func (d *Dispatcher) queuedLocked() int {
	n := 0
	for _, tq := range d.queues {
		n += len(tq.queue)
	}
	return n
}

// Dispatchers returns the pool size.
func (d *Dispatcher) Dispatchers() int { return d.opts.Dispatchers }

// Draining reports whether Shutdown has begun, i.e. whether new
// submissions would be refused with ErrShuttingDown. Readiness probes use
// this to flip unready while liveness stays green.
func (d *Dispatcher) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// TenantStats is one tenant's scheduling snapshot, surfaced per tenant in
// the service stats.
type TenantStats struct {
	Weight      int    `json:"weight"`
	Priority    int    `json:"priority,omitempty"`
	Queued      int    `json:"queued"`
	InFlight    int    `json:"in_flight"`
	Submitted   uint64 `json:"submitted"`
	Completed   uint64 `json:"completed"`
	Rejected    uint64 `json:"rejected,omitempty"`
	RateLimited uint64 `json:"rate_limited,omitempty"`
}

// TenantStats snapshots every tenant's queue state and counters.
func (d *Dispatcher) TenantStats() map[string]TenantStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tenantStatsLocked()
}

func (d *Dispatcher) tenantStatsLocked() map[string]TenantStats {
	out := make(map[string]TenantStats, len(d.queues))
	for name, tq := range d.queues {
		out[name] = TenantStats{
			Weight:      tq.cfg.Weight,
			Priority:    tq.cfg.Priority,
			Queued:      len(tq.queue),
			InFlight:    tq.inflight,
			Submitted:   tq.submitted,
			Completed:   tq.completed,
			Rejected:    tq.rejected,
			RateLimited: tq.rateLimited,
		}
	}
	return out
}

// Snapshot is one internally consistent view of the dispatcher's state: the
// total queue length is exactly the sum of the per-tenant Queued values, and
// Draining matches the same instant. TenantStats/QueueLen/Draining taken
// separately can each be individually correct yet mutually inconsistent —
// the /healthz handler serializes a Snapshot instead.
type Snapshot struct {
	QueueLen int
	Draining bool
	Tenants  map[string]TenantStats
}

// Snapshot captures queue lengths, drain state, and every tenant's counters
// under a single lock acquisition.
func (d *Dispatcher) Snapshot() Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Snapshot{
		QueueLen: d.queuedLocked(),
		Draining: d.closed,
		Tenants:  d.tenantStatsLocked(),
	}
}

// Submit resolves the spec's tenant, enforces the tenant's rate limit and
// queue quota, validates the spec, registers a queued run, and enqueues
// it. It never blocks on execution: backpressure fails fast with a
// RetryableError wrapping ErrRateLimited, ErrQuotaExceeded, or
// ErrQueueFull, and no run is left behind in the store.
//
// The store.Create call — which may fsync a WAL record — runs outside the
// queue lock: Submit reserves the tenant's queue slot under the lock,
// creates, then converts the reservation into a real queue entry. Other
// submissions, cancellations, and dispatcher pops proceed during the disk
// write.
func (d *Dispatcher) Submit(spec run.Spec) (run.Run, error) {
	// Stamp the service defaults before validation so the stored spec (and
	// any 400 for a bad default) reflects what will actually execute. The
	// tenant attribution is resolved here — never trusted from the spec —
	// so unknown names collapse onto the catch-all default tenant.
	if spec.Workload == "" {
		spec.Workload = d.opts.DefaultWorkload
	}
	cfg := d.opts.Tenants.Resolve(spec.Tenant)
	spec.Tenant = cfg.Name
	spec.Priority = cfg.Priority
	if err := spec.Validate(); err != nil {
		d.met.rejections.With(cfg.Name, "invalid_spec").Inc()
		return run.Run{}, err
	}

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.met.rejections.With(cfg.Name, "shutting_down").Inc()
		return run.Run{}, ErrShuttingDown
	}
	tq := d.queueForLocked(cfg.Name)
	if tq.bucket != nil {
		if ok, retry := tq.bucket.Take(); !ok {
			tq.rateLimited++
			d.mu.Unlock()
			d.met.rejections.With(cfg.Name, "rate_limited").Inc()
			return run.Run{}, &RetryableError{Err: ErrRateLimited, Tenant: cfg.Name, RetryAfter: retry}
		}
	}
	if len(tq.queue)+tq.reserved >= tq.depth(d.opts.QueueDepth) {
		tq.rejected++
		sentinel := ErrQueueFull
		reason := "queue_full"
		if tq.cfg.MaxQueueDepth > 0 {
			sentinel = ErrQuotaExceeded
			reason = "quota_exceeded"
		}
		d.mu.Unlock()
		d.met.rejections.With(cfg.Name, reason).Inc()
		return run.Run{}, &RetryableError{Err: sentinel, Tenant: cfg.Name, RetryAfter: time.Second}
	}
	tq.reserved++
	d.mu.Unlock()

	r, err := d.store.Create(spec)

	d.mu.Lock()
	tq.reserved--
	if err != nil {
		d.mu.Unlock()
		// Durable stores refuse to admit a run they could not log; surface
		// the failure instead of accepting work that a restart would lose.
		return run.Run{}, err
	}
	if d.closed {
		d.mu.Unlock()
		// Shutdown began while the record was being written; the pool may
		// already have drained, so enqueuing now could strand the run in
		// queued forever. Roll the create back — the ID never escaped.
		if derr := d.store.Delete(r.ID); derr != nil {
			log.Printf("dispatch: rolling back %s admitted during shutdown: %v", r.ID, derr)
		}
		d.met.rejections.With(cfg.Name, "shutting_down").Inc()
		return run.Run{}, ErrShuttingDown
	}
	tq.queue = append(tq.queue, queued{id: r.ID, at: time.Now(), workload: spec.Workload, shape: spec.Shape.String()})
	tq.submitted++
	d.cond.Signal()
	d.mu.Unlock()
	d.met.submits.With(cfg.Name).Inc()
	return r, nil
}

// Recover enqueues runs that already exist in the store as queued — the
// interrupted runs a durable store re-admitted during crash recovery —
// each into its owning tenant's queue (runs whose tenant is no longer
// configured drain through the catch-all default queue, keeping their
// original attribution). It deliberately ignores queue-depth quotas:
// recovered work was admitted before the restart, and dropping it now
// would turn a crash into silent data loss. The transient over-depth
// backlog drains like any other. Returns how many runs were enqueued
// (zero after Shutdown has begun).
func (d *Dispatcher) Recover(runs []run.Run) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0
	}
	now := time.Now()
	for _, r := range runs {
		tq := d.queueForLocked(r.Spec.Tenant)
		tq.queue = append(tq.queue, queued{id: r.ID, at: now, workload: r.Spec.Workload, shape: r.Spec.Shape.String()})
		tq.submitted++
		d.met.submits.With(tq.cfg.Name).Inc()
	}
	d.cond.Broadcast()
	return len(runs)
}

// Cancel requests cancellation of the identified run (see run.Store.Cancel
// for the state semantics). A run cancelled while still queued is removed
// from its tenant's queue immediately, so the slot is free for new
// submissions.
func (d *Dispatcher) Cancel(id string) (run.Run, error) {
	r, err := d.store.Cancel(id)
	if err == nil && r.State == run.StateCancelled && r.StartedAt == nil {
		// Cancelled straight out of the queue: drop the pending entry.
		d.mu.Lock()
		tq := d.queueForLocked(r.Spec.Tenant)
		for i, entry := range tq.queue {
			if entry.id == id {
				tq.queue = append(tq.queue[:i], tq.queue[i+1:]...)
				break
			}
		}
		// Draining dispatchers may be waiting for exactly this queue to
		// empty.
		d.cond.Broadcast()
		d.mu.Unlock()
		// The run reached a terminal state without ever passing through a
		// dispatcher, so the execute-side counter will not see it.
		d.met.completed.With(r.Spec.Tenant, run.StateCancelled.String()).Inc()
	}
	return r, err
}

// Shutdown stops accepting new runs, lets queued and in-flight runs drain,
// and waits for the pool to exit. If ctx expires first, every in-flight
// run is force-cancelled (it will finish as cancelled) and Shutdown keeps
// waiting for the pool, returning ctx's error. In remote mode there is no
// pool: Shutdown instead waits for the queues to empty and every
// outstanding lease to complete or expire; if ctx expires first the
// remaining leased runs are abandoned (they replay as queued on the next
// boot, exactly like a crash). Shutdown is idempotent.
func (d *Dispatcher) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		d.cond.Broadcast()
	}
	d.mu.Unlock()

	if d.opts.Remote {
		return d.drainRemote(ctx)
	}

	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		d.baseCancel()
		<-done
		return ctx.Err()
	}
}

// drainRemote waits for remote-mode work to finish: CompleteLease and
// ExpireLease broadcast on every state change, so the wait re-checks until
// nothing is queued or leased, or ctx gives up.
func (d *Dispatcher) drainRemote(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		// Taking mu before broadcasting guarantees the waiter below is
		// either still before its ctx.Err() check or parked in Wait —
		// never in between, where a wakeup could be lost.
		d.mu.Lock()
		defer d.mu.Unlock()
		d.cond.Broadcast()
	})
	defer stop()
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.queuedLocked()+len(d.leased) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		d.cond.Wait()
	}
	return nil
}

// next blocks until a run is scheduled to this dispatcher or the queues
// are closed and drained; ok is false only on the latter. The returned
// tenantQueue has had its in-flight count incremented — the caller owes a
// release. dispatchedAt is the pop time, which Begin stamps on the run.
func (d *Dispatcher) next() (id string, tq *tenantQueue, dispatchedAt time.Time, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		for _, cl := range d.classes {
			if q, picked, found := cl.pick(nil); found {
				q.inflight++
				now := time.Now()
				d.met.queueWait.With(q.cfg.Name).Observe(now.Sub(picked.at).Seconds())
				return picked.id, q, now, true
			}
		}
		// Nothing eligible. During a drain, queued runs stuck behind an
		// in-flight cap still count as pending work: a release will
		// broadcast and re-run the pick.
		if d.closed && d.queuedLocked() == 0 {
			return "", nil, time.Time{}, false
		}
		d.cond.Wait()
	}
}

// release returns a claimed in-flight slot, waking dispatchers that may
// have been skipping the tenant at its cap (and drain waiters).
func (d *Dispatcher) release(tq *tenantQueue, completed bool) {
	d.mu.Lock()
	tq.inflight--
	if completed {
		tq.completed++
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// loop is one dispatcher goroutine: pop, execute, repeat until the queues
// close and drain.
func (d *Dispatcher) loop() {
	defer d.wg.Done()
	for {
		id, tq, dispatchedAt, ok := d.next()
		if !ok {
			return
		}
		d.execute(id, tq, dispatchedAt)
	}
}

// execute runs one queued run end to end and records its outcome.
func (d *Dispatcher) execute(id string, tq *tenantQueue, dispatchedAt time.Time) {
	ctx, cancel := context.WithCancel(d.baseCtx)
	defer cancel()

	r, err := d.store.Begin(id, dispatchedAt, "", cancel)
	if err != nil {
		if errors.Is(err, run.ErrNotQueued) || errors.Is(err, run.ErrNotFound) {
			// Cancelled while queued and popped before Cancel could unlink
			// it (or rolled back): the run never became ours to execute.
			d.release(tq, false)
			return
		}
		// Anything else is a durable-store append failure — the in-memory
		// queued→running transition stood (see wal.Store.Begin), so
		// abandoning the run here would strand it in running forever, with
		// every Await parked on it. Execute it; only its begin record may
		// be missing from the log.
		log.Printf("dispatch: recording begin of %s: %v (executing anyway)", id, err)
	}

	start := time.Now()
	res, err := run.Execute(ctx, r.Spec, d.opts.DefaultRunWorkers)
	fr, ferr := d.store.Finish(id, res, err)
	if ferr != nil && !errors.Is(ferr, run.ErrNotRunning) {
		// A WAL append failure: the outcome is recorded in memory but may
		// not survive a restart. Nothing the dispatcher can do beyond log.
		log.Printf("dispatch: recording finish of %s: %v", id, ferr)
	}
	if ferr == nil {
		d.met.completed.With(r.Spec.Tenant, fr.State.String()).Inc()
		d.met.runDuration.With(r.Spec.Workload, r.Spec.Shape.String()).Observe(time.Since(start).Seconds())
		if res != nil {
			d.met.runNodes.With(r.Spec.Workload).Add(float64(res.Nodes))
		}
	}
	d.release(tq, true)
	d.store.EvictTerminal(d.opts.RetainRuns)
}
