package dispatch

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/tenant"
)

func newDispatcher(t *testing.T, opts Options) (run.Store, *Dispatcher) {
	t.Helper()
	store := run.NewMemStore()
	d := New(store, opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	return store, d
}

// waitForState polls until the run reaches want or the deadline passes.
func waitForState(t *testing.T, store run.Store, id string, want run.State) run.Run {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		r, err := store.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if r.State == want {
			return r
		}
		if r.State.Terminal() {
			t.Fatalf("run %s reached terminal state %s (error %q), want %s", id, r.State, r.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never reached state %s", id, want)
	return run.Run{}
}

func pipelineSpec(stages, width, work int) run.Spec {
	return run.Spec{
		Config: gen.Config{Shape: gen.Pipeline, Stages: stages, Width: width},
		Work:   work,
	}
}

func TestSubmitExecutesToSuccess(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 8, Dispatchers: 2})
	specs := []run.Spec{
		pipelineSpec(50, 4, 0),
		{Config: gen.Config{Shape: gen.Random, Nodes: 400, EdgeProb: 0.02, Seed: 3}, Workers: 4},
	}
	for _, spec := range specs {
		r, err := d.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		got := waitForState(t, store, r.ID, run.StateSucceeded)
		if got.Result == nil {
			t.Fatalf("succeeded run %s has no result", r.ID)
		}
		if !got.Result.Match {
			t.Errorf("run %s: parallel/serial mismatch", r.ID)
		}
		if got.Result.SinkPaths == 0 {
			t.Errorf("run %s: zero sink paths", r.ID)
		}
		if got.StartedAt == nil || got.FinishedAt == nil {
			t.Errorf("run %s missing timestamps: %+v", r.ID, got)
		}
	}
}

// TestDefaultWorkloadStamped verifies the service-level default workload is
// applied at admission: the stored spec and the finished result both carry
// it, and an explicit workload in the spec still wins.
func TestDefaultWorkloadStamped(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 8, Dispatchers: 1, DefaultWorkload: "hashchain"})

	r, err := d.Submit(pipelineSpec(20, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Spec.Workload != "hashchain" {
		t.Errorf("stored spec workload = %q, want service default hashchain", r.Spec.Workload)
	}
	got := waitForState(t, store, r.ID, run.StateSucceeded)
	if got.Result.Workload != "hashchain" {
		t.Errorf("result workload = %q, want hashchain", got.Result.Workload)
	}

	explicit := pipelineSpec(20, 2, 0)
	explicit.Workload = "longestpath"
	r2, err := d.Submit(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Spec.Workload != "longestpath" {
		t.Errorf("explicit workload overridden to %q", r2.Spec.Workload)
	}
	waitForState(t, store, r2.ID, run.StateSucceeded)
}

// TestUnknownDefaultWorkloadFailsSubmit: a bad service default is caught at
// admission, not deep inside a dispatcher goroutine.
func TestUnknownDefaultWorkloadFailsSubmit(t *testing.T) {
	_, d := newDispatcher(t, Options{QueueDepth: 4, Dispatchers: 1, DefaultWorkload: "no-such"})
	if _, err := d.Submit(pipelineSpec(5, 2, 0)); err == nil {
		t.Error("Submit with unknown default workload succeeded")
	}
}

func TestSubmitInvalidSpec(t *testing.T) {
	_, d := newDispatcher(t, Options{QueueDepth: 2, Dispatchers: 1})
	if _, err := d.Submit(run.Spec{Config: gen.Config{Shape: gen.Random, Nodes: 1}}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 1, Dispatchers: 1})
	// Saturate the single dispatcher with a slow run, then the depth-1 queue.
	slow := pipelineSpec(500, 4, 50000)
	first, err := d.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, first.ID, run.StateRunning)
	if _, err := d.Submit(slow); err != nil {
		t.Fatalf("queueing one run behind an in-flight one: %v", err)
	}
	// Queue now holds one entry; the next submit must fail fast.
	overflow := 0
	for i := 0; i < 20; i++ {
		if _, err := d.Submit(pipelineSpec(5, 2, 0)); errors.Is(err, ErrQueueFull) {
			overflow++
		}
	}
	if overflow == 0 {
		t.Fatal("no submission hit ErrQueueFull with a saturated depth-1 queue")
	}
	// Rejected submissions must not leak store entries: first + queued one
	// plus any that got in after the dispatcher advanced.
	if n := store.Len(); n > 3 {
		t.Errorf("store holds %d runs after rejections, want <= 3", n)
	}
}

func TestCancelInFlightRun(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 4, Dispatchers: 1})
	// Big enough that it cannot finish before we cancel: ~160k nodes with
	// real per-node work.
	r, err := d.Submit(pipelineSpec(40000, 4, 2000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, r.ID, run.StateRunning)
	if _, err := d.Cancel(r.ID); err != nil {
		t.Fatal(err)
	}
	got := waitForState(t, store, r.ID, run.StateCancelled)
	if got.FinishedAt == nil {
		t.Error("cancelled run missing FinishedAt")
	}
}

func TestCancelQueuedRunNeverExecutes(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 4, Dispatchers: 1})
	// Head run occupies the dispatcher; the second sits in the queue.
	head, err := d.Submit(pipelineSpec(2000, 4, 20000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, head.ID, run.StateRunning)
	queued, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if c, err := d.Cancel(queued.ID); err != nil || c.State != run.StateCancelled {
		t.Fatalf("Cancel(queued) = %+v, %v", c, err)
	}
	if _, err := d.Cancel(head.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, head.ID, run.StateCancelled)
	// The queued run must stay cancelled (dispatcher skipped it) and never
	// gain a StartedAt.
	got, err := store.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != run.StateCancelled || got.StartedAt != nil {
		t.Errorf("cancelled-in-queue run = %+v, want cancelled and never started", got)
	}
}

func TestCancelQueuedFreesSlot(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 1, Dispatchers: 1})
	head, err := d.Submit(pipelineSpec(2000, 4, 20000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, head.ID, run.StateRunning)
	queued, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(pipelineSpec(5, 2, 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	if _, err := d.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if d.QueueLen() != 0 {
		t.Fatalf("QueueLen after cancelling queued run = %d, want 0", d.QueueLen())
	}
	// The freed slot must accept a new submission immediately.
	replacement, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatalf("submit after cancel = %v, want slot freed", err)
	}
	if _, err := d.Cancel(head.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, replacement.ID, run.StateSucceeded)
}

func TestTerminalRunRetention(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 16, Dispatchers: 2, RetainRuns: 3})
	var ids []string
	for i := 0; i < 8; i++ {
		r, err := d.Submit(pipelineSpec(5, 2, 0))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID)
		waitForState(t, store, r.ID, run.StateSucceeded)
	}
	if n := store.Len(); n > 3 {
		t.Errorf("store holds %d terminal runs with RetainRuns=3", n)
	}
	// The newest run always survives its own eviction pass.
	if _, err := store.Get(ids[len(ids)-1]); err != nil {
		t.Errorf("newest run evicted: %v", err)
	}
}

func TestShutdownDrains(t *testing.T) {
	store := run.NewMemStore()
	d := New(store, Options{QueueDepth: 8, Dispatchers: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		r, err := d.Submit(pipelineSpec(30, 3, 0))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID)
	}
	if d.Draining() {
		t.Error("Draining() true before Shutdown")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if !d.Draining() {
		t.Error("Draining() false after Shutdown")
	}
	for _, id := range ids {
		r, err := store.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if r.State != run.StateSucceeded {
			t.Errorf("run %s after drain = %s, want succeeded", id, r.State)
		}
	}
	if _, err := d.Submit(pipelineSpec(5, 2, 0)); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Submit after Shutdown = %v, want ErrShuttingDown", err)
	}
	// Idempotent.
	if err := d.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown = %v", err)
	}
}

func TestShutdownForceCancelsOnDeadline(t *testing.T) {
	store := run.NewMemStore()
	d := New(store, Options{QueueDepth: 4, Dispatchers: 1})
	r, err := d.Submit(pipelineSpec(40000, 4, 5000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, r.ID, run.StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := d.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	got, err := store.Get(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != run.StateCancelled {
		t.Errorf("force-cancelled run state = %s, want cancelled", got.State)
	}
}

// beginDegradedStore mimics a WAL store whose disk fails the Begin append:
// per the run.Store contract the queued→running transition stands in
// memory, but the call reports an error.
type beginDegradedStore struct {
	run.Store
}

func (s *beginDegradedStore) Begin(id string, dispatchedAt time.Time, worker string, cancel context.CancelFunc) (run.Run, error) {
	r, err := s.Store.Begin(id, dispatchedAt, worker, cancel)
	if err != nil {
		return r, err
	}
	return r, errors.New("wal: appending record: disk full")
}

// TestExecuteSurvivesBeginLogFailure pins that a durability error from
// Begin does not strand the run: the transition stood, so the dispatcher
// must execute it to a terminal state rather than abandoning it in
// running forever (where every Await would park until timeout).
func TestExecuteSurvivesBeginLogFailure(t *testing.T) {
	store := &beginDegradedStore{Store: run.NewMemStore()}
	d := New(store, Options{QueueDepth: 4, Dispatchers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	r, err := d.Submit(pipelineSpec(10, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	got := waitForState(t, store, r.ID, run.StateSucceeded)
	if got.Result == nil || !got.Result.Match {
		t.Fatalf("run finished without a matching result: %+v", got)
	}
}

// mustRegistry builds a tenant registry or fails the test.
func mustRegistry(t *testing.T, cfgs ...tenant.Config) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// plugDispatcher submits a long cancellable run on the default tenant and
// waits until it occupies the (single) dispatcher, so subsequent
// submissions pile up in their tenant queues. Returns the plug's ID.
func plugDispatcher(t *testing.T, store run.Store, d *Dispatcher) string {
	t.Helper()
	plug, err := d.Submit(pipelineSpec(40000, 4, 2000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, plug.ID, run.StateRunning)
	return plug.ID
}

func tenantSpec(name string, stages, width, work int) run.Spec {
	s := pipelineSpec(stages, width, work)
	s.Tenant = name
	return s
}

// TestTenantAttributionStamped: Submit resolves the spec's tenant through
// the registry — configured names stick (with the class stamped), unknown
// names collapse onto the catch-all default.
func TestTenantAttributionStamped(t *testing.T) {
	reg := mustRegistry(t, tenant.Config{Name: "known", Priority: 3})
	store, d := newDispatcher(t, Options{QueueDepth: 8, Dispatchers: 1, Tenants: reg})

	r, err := d.Submit(tenantSpec("known", 5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Spec.Tenant != "known" || r.Spec.Priority != 3 {
		t.Errorf("stored spec attribution = %q/%d, want known/3", r.Spec.Tenant, r.Spec.Priority)
	}
	u, err := d.Submit(tenantSpec("never-configured", 5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if u.Spec.Tenant != tenant.Default {
		t.Errorf("unknown tenant stored as %q, want %q", u.Spec.Tenant, tenant.Default)
	}
	waitForState(t, store, r.ID, run.StateSucceeded)
	waitForState(t, store, u.ID, run.StateSucceeded)
}

// TestWeightedFairness is the starvation acceptance test: with one
// dispatcher and two equal-weight tenants, a light tenant that queued 10
// runs gets ~half of the first 20 completions even though a heavy tenant
// queued 20 runs first — DRR interleaves the queues instead of draining
// FIFO by arrival.
func TestWeightedFairness(t *testing.T) {
	reg := mustRegistry(t,
		tenant.Config{Name: "heavy", Weight: 1},
		tenant.Config{Name: "light", Weight: 1},
	)
	store, d := newDispatcher(t, Options{QueueDepth: 64, Dispatchers: 1, Tenants: reg})
	plugID := plugDispatcher(t, store, d)

	var heavy, light []string
	for i := 0; i < 20; i++ {
		r, err := d.Submit(tenantSpec("heavy", 5, 2, 0))
		if err != nil {
			t.Fatal(err)
		}
		heavy = append(heavy, r.ID)
	}
	for i := 0; i < 10; i++ {
		r, err := d.Submit(tenantSpec("light", 5, 2, 0))
		if err != nil {
			t.Fatal(err)
		}
		light = append(light, r.ID)
	}
	if _, err := d.Cancel(plugID); err != nil {
		t.Fatal(err)
	}

	type done struct {
		tenant string
		at     time.Time
	}
	var finished []done
	for _, batch := range []struct {
		name string
		ids  []string
	}{{"heavy", heavy}, {"light", light}} {
		for _, id := range batch.ids {
			got := waitForState(t, store, id, run.StateSucceeded)
			finished = append(finished, done{batch.name, *got.FinishedAt})
		}
	}
	sort.Slice(finished, func(i, j int) bool { return finished[i].at.Before(finished[j].at) })

	lightDone := 0
	for _, f := range finished[:20] {
		if f.tenant == "light" {
			lightDone++
		}
	}
	// Exact DRR alternation gives 10/20; anything under the acceptance
	// floor (~40%) means the light tenant was starved behind the backlog.
	if lightDone < 8 {
		t.Errorf("light tenant got %d of the first 20 completions, want >= 8 (fair share)", lightDone)
	}
}

// TestPriorityClassDrainsFirst: with both classes backlogged, every
// higher-class run completes before any lower-class run starts.
func TestPriorityClassDrainsFirst(t *testing.T) {
	reg := mustRegistry(t,
		tenant.Config{Name: "batch", Priority: 0},
		tenant.Config{Name: "interactive", Priority: 1},
	)
	store, d := newDispatcher(t, Options{QueueDepth: 64, Dispatchers: 1, Tenants: reg})
	plugID := plugDispatcher(t, store, d)

	var lowIDs, highIDs []string
	for i := 0; i < 10; i++ {
		r, err := d.Submit(tenantSpec("batch", 5, 2, 0))
		if err != nil {
			t.Fatal(err)
		}
		lowIDs = append(lowIDs, r.ID)
	}
	for i := 0; i < 5; i++ {
		r, err := d.Submit(tenantSpec("interactive", 5, 2, 0))
		if err != nil {
			t.Fatal(err)
		}
		highIDs = append(highIDs, r.ID)
	}
	if _, err := d.Cancel(plugID); err != nil {
		t.Fatal(err)
	}

	var lastHigh, firstLow time.Time
	for _, id := range highIDs {
		got := waitForState(t, store, id, run.StateSucceeded)
		if got.FinishedAt.After(lastHigh) {
			lastHigh = *got.FinishedAt
		}
	}
	for _, id := range lowIDs {
		got := waitForState(t, store, id, run.StateSucceeded)
		if firstLow.IsZero() || got.StartedAt.Before(firstLow) {
			firstLow = *got.StartedAt
		}
	}
	if firstLow.Before(lastHigh) {
		t.Errorf("a batch (priority 0) run started at %v before the interactive (priority 1) backlog drained at %v",
			firstLow, lastHigh)
	}
}

// TestInFlightCapSkipsNotBlocks: a tenant at its in-flight cap is passed
// over, leaving the dispatcher free for other tenants, and its queued work
// resumes once the cap frees up.
func TestInFlightCapSkipsNotBlocks(t *testing.T) {
	reg := mustRegistry(t,
		tenant.Config{Name: "capped", MaxInFlight: 1},
		tenant.Config{Name: "free"},
	)
	store, d := newDispatcher(t, Options{QueueDepth: 16, Dispatchers: 2, Tenants: reg})

	first, err := d.Submit(tenantSpec("capped", 40000, 4, 2000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, first.ID, run.StateRunning)
	second, err := d.Submit(tenantSpec("capped", 5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}

	// The second dispatcher must skip the capped tenant's queued run and
	// pick up other tenants' work instead.
	other, err := d.Submit(tenantSpec("free", 5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, other.ID, run.StateSucceeded)
	if got, err := store.Get(second.ID); err != nil || got.State != run.StateQueued {
		t.Fatalf("capped tenant's second run = %v state %s, want still queued", err, got.State)
	}

	// Releasing the cap (cancelling the hog) lets the queued run proceed.
	if _, err := d.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, second.ID, run.StateSucceeded)
}

// TestSubmitRateLimited: past the token bucket, Submit fails fast with
// ErrRateLimited and a positive Retry-After hint naming the tenant.
func TestSubmitRateLimited(t *testing.T) {
	reg := mustRegistry(t, tenant.Config{Name: "limited", SubmitRate: 0.01, SubmitBurst: 1})
	_, d := newDispatcher(t, Options{QueueDepth: 8, Dispatchers: 1, Tenants: reg})

	if _, err := d.Submit(tenantSpec("limited", 5, 2, 0)); err != nil {
		t.Fatalf("first submit within burst: %v", err)
	}
	_, err := d.Submit(tenantSpec("limited", 5, 2, 0))
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second submit = %v, want ErrRateLimited", err)
	}
	var re *RetryableError
	if !errors.As(err, &re) {
		t.Fatalf("rate-limit error %v is not a *RetryableError", err)
	}
	if re.Tenant != "limited" || re.RetryAfter <= 0 {
		t.Errorf("RetryableError = %+v, want tenant limited and positive RetryAfter", re)
	}
	// Other tenants are unaffected.
	if _, err := d.Submit(pipelineSpec(5, 2, 0)); err != nil {
		t.Errorf("default-tenant submit during another tenant's rate limiting: %v", err)
	}
}

// TestQuotaExceeded: a tenant's configured MaxQueueDepth rejects with
// ErrQuotaExceeded (not the generic ErrQueueFull) and leaves other tenants
// untouched.
func TestQuotaExceeded(t *testing.T) {
	reg := mustRegistry(t, tenant.Config{Name: "small", MaxQueueDepth: 1})
	store, d := newDispatcher(t, Options{QueueDepth: 64, Dispatchers: 1, Tenants: reg})
	plugID := plugDispatcher(t, store, d)

	if _, err := d.Submit(tenantSpec("small", 5, 2, 0)); err != nil {
		t.Fatalf("first queued submit within quota: %v", err)
	}
	_, err := d.Submit(tenantSpec("small", 5, 2, 0))
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota submit = %v, want ErrQuotaExceeded", err)
	}
	if errors.Is(err, ErrQueueFull) {
		t.Error("quota rejection also matches ErrQueueFull; codes must stay distinct")
	}
	var re *RetryableError
	if !errors.As(err, &re) || re.Tenant != "small" {
		t.Fatalf("quota error %v does not carry the tenant", err)
	}
	// The default tenant still has its own (service-default) depth.
	if _, err := d.Submit(pipelineSpec(5, 2, 0)); err != nil {
		t.Errorf("default-tenant submit while another tenant is at quota: %v", err)
	}
	if _, err := d.Cancel(plugID); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRoutesToOwningTenantQueue: recovered runs land in their own
// tenant's queue — and runs attributed to a tenant that is no longer
// configured drain through the default queue while keeping their recorded
// attribution.
func TestRecoverRoutesToOwningTenantQueue(t *testing.T) {
	reg := mustRegistry(t,
		tenant.Config{Name: "alpha"},
		tenant.Config{Name: "beta"},
	)
	store, d := newDispatcher(t, Options{QueueDepth: 16, Dispatchers: 1, Tenants: reg})
	plugID := plugDispatcher(t, store, d)

	var recovered []run.Run
	for _, name := range []string{"alpha", "beta", "ghost"} {
		r, err := store.Create(tenantSpec(name, 5, 2, 0))
		if err != nil {
			t.Fatal(err)
		}
		recovered = append(recovered, r)
	}
	if n := d.Recover(recovered); n != 3 {
		t.Fatalf("Recover admitted %d runs, want 3", n)
	}

	stats := d.TenantStats()
	if stats["alpha"].Queued != 1 || stats["beta"].Queued != 1 {
		t.Errorf("per-tenant queued = alpha:%d beta:%d, want 1 each", stats["alpha"].Queued, stats["beta"].Queued)
	}
	// "ghost" is unconfigured: its run drains via the default queue.
	if stats[tenant.Default].Queued != 1 {
		t.Errorf("default queue holds %d recovered runs, want 1 (the unconfigured tenant's)", stats[tenant.Default].Queued)
	}

	if _, err := d.Cancel(plugID); err != nil {
		t.Fatal(err)
	}
	for _, r := range recovered {
		got := waitForState(t, store, r.ID, run.StateSucceeded)
		if got.Spec.Tenant != r.Spec.Tenant {
			t.Errorf("run %s attribution changed across recovery: %q -> %q", r.ID, r.Spec.Tenant, got.Spec.Tenant)
		}
	}
}

// TestQueuedCancelPoppedBeforeUnlink is the regression test for the race
// where a dispatcher pops an ID after store.Cancel succeeded but before
// Dispatcher.Cancel unlinks it from the queue: Begin returns ErrNotQueued
// and the dispatcher must skip the run — never execute it — and free the
// slot for the next one. Cancelling through the store directly models the
// lost race deterministically (the queue entry is never unlinked at all).
func TestQueuedCancelPoppedBeforeUnlink(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 8, Dispatchers: 1})
	plugID := plugDispatcher(t, store, d)

	victim, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	follower, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Bypass Dispatcher.Cancel so the stale ID stays in the queue — exactly
	// the window where a dispatcher pops before the unlink runs.
	if _, err := store.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Cancel(plugID); err != nil {
		t.Fatal(err)
	}
	// The follower completing proves the dispatcher skipped the stale entry
	// without wedging or leaking the slot.
	waitForState(t, store, follower.ID, run.StateSucceeded)
	got, err := store.Get(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != run.StateCancelled || got.StartedAt != nil {
		t.Errorf("raced-cancel run = state %s started %v, want cancelled and never started", got.State, got.StartedAt)
	}
}

// blockingCreateStore parks every Create until released, modeling a WAL
// store mid-fsync.
type blockingCreateStore struct {
	run.Store
	entered chan struct{} // closed when the first Create is reached
	release chan struct{} // Create returns once this closes
	once    sync.Once
}

func (s *blockingCreateStore) Create(spec run.Spec) (run.Run, error) {
	s.once.Do(func() { close(s.entered) })
	<-s.release
	return s.Store.Create(spec)
}

// TestSubmitDoesNotHoldLockAcrossCreate pins the satellite fix: with
// store.Create blocked (an fsync in flight), QueueLen and other
// submissions' backpressure checks must not block behind it.
func TestSubmitDoesNotHoldLockAcrossCreate(t *testing.T) {
	store := &blockingCreateStore{
		Store:   run.NewMemStore(),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	d := New(store, Options{QueueDepth: 1, Dispatchers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})

	submitted := make(chan error, 1)
	go func() {
		_, err := d.Submit(pipelineSpec(5, 2, 0))
		submitted <- err
	}()
	<-store.entered

	// The queue lock must be free while Create is in flight.
	lens := make(chan int, 1)
	go func() { lens <- d.QueueLen() }()
	select {
	case n := <-lens:
		if n != 0 {
			t.Errorf("QueueLen during Create = %d, want 0 (slot reserved, not enqueued)", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("QueueLen blocked behind an in-flight store.Create")
	}

	// The reservation still counts against the depth: a concurrent submit
	// sees the depth-1 queue as full instead of over-admitting.
	overflow := make(chan error, 1)
	go func() {
		_, err := d.Submit(pipelineSpec(5, 2, 0))
		overflow <- err
	}()
	select {
	case err := <-overflow:
		if !errors.Is(err, ErrQueueFull) {
			t.Errorf("submit during reserved Create = %v, want ErrQueueFull", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second Submit blocked behind the first's store.Create")
	}

	close(store.release)
	if err := <-submitted; err != nil {
		t.Fatalf("blocked submit failed after release: %v", err)
	}
}
