package dispatch

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

func newDispatcher(t *testing.T, opts Options) (run.Store, *Dispatcher) {
	t.Helper()
	store := run.NewMemStore()
	d := New(store, opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	return store, d
}

// waitForState polls until the run reaches want or the deadline passes.
func waitForState(t *testing.T, store run.Store, id string, want run.State) run.Run {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		r, err := store.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if r.State == want {
			return r
		}
		if r.State.Terminal() {
			t.Fatalf("run %s reached terminal state %s (error %q), want %s", id, r.State, r.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never reached state %s", id, want)
	return run.Run{}
}

func pipelineSpec(stages, width, work int) run.Spec {
	return run.Spec{
		Config: gen.Config{Shape: gen.Pipeline, Stages: stages, Width: width},
		Work:   work,
	}
}

func TestSubmitExecutesToSuccess(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 8, Dispatchers: 2})
	specs := []run.Spec{
		pipelineSpec(50, 4, 0),
		{Config: gen.Config{Shape: gen.Random, Nodes: 400, EdgeProb: 0.02, Seed: 3}, Workers: 4},
	}
	for _, spec := range specs {
		r, err := d.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		got := waitForState(t, store, r.ID, run.StateSucceeded)
		if got.Result == nil {
			t.Fatalf("succeeded run %s has no result", r.ID)
		}
		if !got.Result.Match {
			t.Errorf("run %s: parallel/serial mismatch", r.ID)
		}
		if got.Result.SinkPaths == 0 {
			t.Errorf("run %s: zero sink paths", r.ID)
		}
		if got.StartedAt == nil || got.FinishedAt == nil {
			t.Errorf("run %s missing timestamps: %+v", r.ID, got)
		}
	}
}

// TestDefaultWorkloadStamped verifies the service-level default workload is
// applied at admission: the stored spec and the finished result both carry
// it, and an explicit workload in the spec still wins.
func TestDefaultWorkloadStamped(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 8, Dispatchers: 1, DefaultWorkload: "hashchain"})

	r, err := d.Submit(pipelineSpec(20, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Spec.Workload != "hashchain" {
		t.Errorf("stored spec workload = %q, want service default hashchain", r.Spec.Workload)
	}
	got := waitForState(t, store, r.ID, run.StateSucceeded)
	if got.Result.Workload != "hashchain" {
		t.Errorf("result workload = %q, want hashchain", got.Result.Workload)
	}

	explicit := pipelineSpec(20, 2, 0)
	explicit.Workload = "longestpath"
	r2, err := d.Submit(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Spec.Workload != "longestpath" {
		t.Errorf("explicit workload overridden to %q", r2.Spec.Workload)
	}
	waitForState(t, store, r2.ID, run.StateSucceeded)
}

// TestUnknownDefaultWorkloadFailsSubmit: a bad service default is caught at
// admission, not deep inside a dispatcher goroutine.
func TestUnknownDefaultWorkloadFailsSubmit(t *testing.T) {
	_, d := newDispatcher(t, Options{QueueDepth: 4, Dispatchers: 1, DefaultWorkload: "no-such"})
	if _, err := d.Submit(pipelineSpec(5, 2, 0)); err == nil {
		t.Error("Submit with unknown default workload succeeded")
	}
}

func TestSubmitInvalidSpec(t *testing.T) {
	_, d := newDispatcher(t, Options{QueueDepth: 2, Dispatchers: 1})
	if _, err := d.Submit(run.Spec{Config: gen.Config{Shape: gen.Random, Nodes: 1}}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 1, Dispatchers: 1})
	// Saturate the single dispatcher with a slow run, then the depth-1 queue.
	slow := pipelineSpec(500, 4, 50000)
	first, err := d.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, first.ID, run.StateRunning)
	if _, err := d.Submit(slow); err != nil {
		t.Fatalf("queueing one run behind an in-flight one: %v", err)
	}
	// Queue now holds one entry; the next submit must fail fast.
	overflow := 0
	for i := 0; i < 20; i++ {
		if _, err := d.Submit(pipelineSpec(5, 2, 0)); errors.Is(err, ErrQueueFull) {
			overflow++
		}
	}
	if overflow == 0 {
		t.Fatal("no submission hit ErrQueueFull with a saturated depth-1 queue")
	}
	// Rejected submissions must not leak store entries: first + queued one
	// plus any that got in after the dispatcher advanced.
	if n := store.Len(); n > 3 {
		t.Errorf("store holds %d runs after rejections, want <= 3", n)
	}
}

func TestCancelInFlightRun(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 4, Dispatchers: 1})
	// Big enough that it cannot finish before we cancel: ~160k nodes with
	// real per-node work.
	r, err := d.Submit(pipelineSpec(40000, 4, 2000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, r.ID, run.StateRunning)
	if _, err := d.Cancel(r.ID); err != nil {
		t.Fatal(err)
	}
	got := waitForState(t, store, r.ID, run.StateCancelled)
	if got.FinishedAt == nil {
		t.Error("cancelled run missing FinishedAt")
	}
}

func TestCancelQueuedRunNeverExecutes(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 4, Dispatchers: 1})
	// Head run occupies the dispatcher; the second sits in the queue.
	head, err := d.Submit(pipelineSpec(2000, 4, 20000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, head.ID, run.StateRunning)
	queued, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if c, err := d.Cancel(queued.ID); err != nil || c.State != run.StateCancelled {
		t.Fatalf("Cancel(queued) = %+v, %v", c, err)
	}
	if _, err := d.Cancel(head.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, head.ID, run.StateCancelled)
	// The queued run must stay cancelled (dispatcher skipped it) and never
	// gain a StartedAt.
	got, err := store.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != run.StateCancelled || got.StartedAt != nil {
		t.Errorf("cancelled-in-queue run = %+v, want cancelled and never started", got)
	}
}

func TestCancelQueuedFreesSlot(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 1, Dispatchers: 1})
	head, err := d.Submit(pipelineSpec(2000, 4, 20000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, head.ID, run.StateRunning)
	queued, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(pipelineSpec(5, 2, 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	if _, err := d.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if d.QueueLen() != 0 {
		t.Fatalf("QueueLen after cancelling queued run = %d, want 0", d.QueueLen())
	}
	// The freed slot must accept a new submission immediately.
	replacement, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatalf("submit after cancel = %v, want slot freed", err)
	}
	if _, err := d.Cancel(head.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, replacement.ID, run.StateSucceeded)
}

func TestTerminalRunRetention(t *testing.T) {
	store, d := newDispatcher(t, Options{QueueDepth: 16, Dispatchers: 2, RetainRuns: 3})
	var ids []string
	for i := 0; i < 8; i++ {
		r, err := d.Submit(pipelineSpec(5, 2, 0))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID)
		waitForState(t, store, r.ID, run.StateSucceeded)
	}
	if n := store.Len(); n > 3 {
		t.Errorf("store holds %d terminal runs with RetainRuns=3", n)
	}
	// The newest run always survives its own eviction pass.
	if _, err := store.Get(ids[len(ids)-1]); err != nil {
		t.Errorf("newest run evicted: %v", err)
	}
}

func TestShutdownDrains(t *testing.T) {
	store := run.NewMemStore()
	d := New(store, Options{QueueDepth: 8, Dispatchers: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		r, err := d.Submit(pipelineSpec(30, 3, 0))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID)
	}
	if d.Draining() {
		t.Error("Draining() true before Shutdown")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if !d.Draining() {
		t.Error("Draining() false after Shutdown")
	}
	for _, id := range ids {
		r, err := store.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if r.State != run.StateSucceeded {
			t.Errorf("run %s after drain = %s, want succeeded", id, r.State)
		}
	}
	if _, err := d.Submit(pipelineSpec(5, 2, 0)); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Submit after Shutdown = %v, want ErrShuttingDown", err)
	}
	// Idempotent.
	if err := d.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown = %v", err)
	}
}

func TestShutdownForceCancelsOnDeadline(t *testing.T) {
	store := run.NewMemStore()
	d := New(store, Options{QueueDepth: 4, Dispatchers: 1})
	r, err := d.Submit(pipelineSpec(40000, 4, 5000))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, store, r.ID, run.StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := d.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	got, err := store.Get(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != run.StateCancelled {
		t.Errorf("force-cancelled run state = %s, want cancelled", got.State)
	}
}

// beginDegradedStore mimics a WAL store whose disk fails the Begin append:
// per the run.Store contract the queued→running transition stands in
// memory, but the call reports an error.
type beginDegradedStore struct {
	run.Store
}

func (s *beginDegradedStore) Begin(id string, cancel context.CancelFunc) (run.Run, error) {
	r, err := s.Store.Begin(id, cancel)
	if err != nil {
		return r, err
	}
	return r, errors.New("wal: appending record: disk full")
}

// TestExecuteSurvivesBeginLogFailure pins that a durability error from
// Begin does not strand the run: the transition stood, so the dispatcher
// must execute it to a terminal state rather than abandoning it in
// running forever (where every Await would park until timeout).
func TestExecuteSurvivesBeginLogFailure(t *testing.T) {
	store := &beginDegradedStore{Store: run.NewMemStore()}
	d := New(store, Options{QueueDepth: 4, Dispatchers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	r, err := d.Submit(pipelineSpec(10, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	got := waitForState(t, store, r.ID, run.StateSucceeded)
	if got.Result == nil || !got.Result.Match {
		t.Fatalf("run finished without a matching result: %+v", got)
	}
}
