package dispatch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/tenant"
)

func newRemoteDispatcher(t *testing.T, opts Options) (run.Store, *Dispatcher) {
	t.Helper()
	opts.Remote = true
	store := run.NewMemStore()
	d := New(store, opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	return store, d
}

func lease(t *testing.T, d *Dispatcher, worker string) run.Run {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r, err := d.Lease(ctx, worker, nil, func(string) {})
	if err != nil {
		t.Fatalf("Lease(%s): %v", worker, err)
	}
	return r
}

func TestLeaseCompleteLifecycle(t *testing.T) {
	store, d := newRemoteDispatcher(t, Options{QueueDepth: 8})
	sub, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}

	r := lease(t, d, "w1")
	if r.ID != sub.ID || r.State != run.StateRunning || r.Worker != "w1" {
		t.Fatalf("Lease = %+v, want %s running on w1", r, sub.ID)
	}
	if r.DispatchedAt == nil || r.StartedAt == nil {
		t.Fatalf("Lease left timestamps unset: %+v", r)
	}
	if d.LeasedLen() != 1 {
		t.Fatalf("LeasedLen = %d, want 1", d.LeasedLen())
	}

	fr, err := d.CompleteLease(r.ID, run.StateSucceeded, "", &run.Result{Match: true, Nodes: 12})
	if err != nil {
		t.Fatal(err)
	}
	if fr.State != run.StateSucceeded || fr.Worker != "w1" {
		t.Fatalf("CompleteLease = %+v, want succeeded on w1", fr)
	}
	if d.LeasedLen() != 0 {
		t.Fatalf("LeasedLen after complete = %d, want 0", d.LeasedLen())
	}
	if got, _ := store.Get(r.ID); got.State != run.StateSucceeded {
		t.Fatalf("store state = %s, want succeeded", got.State)
	}

	// Double completion: the lease is gone.
	if _, err := d.CompleteLease(r.ID, run.StateSucceeded, "", nil); !errors.Is(err, ErrNotLeased) {
		t.Errorf("second CompleteLease = %v, want ErrNotLeased", err)
	}
}

func TestCompleteLeaseOutcomes(t *testing.T) {
	cases := []struct {
		name      string
		state     run.State
		errMsg    string
		wantState run.State
	}{
		{"failed", run.StateFailed, "node 3 exploded", run.StateFailed},
		{"cancelled", run.StateCancelled, "", run.StateCancelled},
		{"cancelled_with_msg", run.StateCancelled, "ctx done", run.StateCancelled},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store, d := newRemoteDispatcher(t, Options{QueueDepth: 8})
			sub, err := d.Submit(pipelineSpec(5, 2, 0))
			if err != nil {
				t.Fatal(err)
			}
			lease(t, d, "w1")
			fr, err := d.CompleteLease(sub.ID, tc.state, tc.errMsg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if fr.State != tc.wantState {
				t.Errorf("state = %s, want %s", fr.State, tc.wantState)
			}
			if tc.errMsg != "" && fr.Error == "" {
				t.Errorf("error text lost: %+v", fr)
			}
			if got, _ := store.Get(sub.ID); got.State != tc.wantState {
				t.Errorf("store state = %s, want %s", got.State, tc.wantState)
			}
		})
	}
}

func TestExpireLeaseRedispatches(t *testing.T) {
	store, d := newRemoteDispatcher(t, Options{QueueDepth: 8})
	sub, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	lease(t, d, "w1")

	r, err := d.ExpireLease(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != run.StateQueued || r.Restarts != 1 || r.Worker != "" {
		t.Fatalf("ExpireLease = %+v, want queued/restarts=1/no worker", r)
	}
	if d.LeasedLen() != 0 {
		t.Fatalf("LeasedLen after expiry = %d, want 0", d.LeasedLen())
	}
	// The dead worker's completion report loses the race.
	if _, err := d.CompleteLease(sub.ID, run.StateSucceeded, "", nil); !errors.Is(err, ErrNotLeased) {
		t.Errorf("CompleteLease after expiry = %v, want ErrNotLeased", err)
	}

	// A surviving worker picks the retry up and completes it.
	r2 := lease(t, d, "w2")
	if r2.ID != sub.ID || r2.Worker != "w2" || r2.Restarts != 1 {
		t.Fatalf("re-lease = %+v, want %s on w2 with restarts=1", r2, sub.ID)
	}
	if _, err := d.CompleteLease(sub.ID, run.StateSucceeded, "", &run.Result{Match: true}); err != nil {
		t.Fatal(err)
	}
	got, _ := store.Get(sub.ID)
	if got.State != run.StateSucceeded || got.Restarts != 1 || got.Worker != "w2" {
		t.Fatalf("final = %+v, want succeeded/1/w2", got)
	}
}

// TestLeaseWorkloadFilter pins eligibility routing: a worker that only
// supports hashchain must not be handed a pathcount run, and a tenant
// whose queued work is unsupported is skipped rather than blocking.
func TestLeaseWorkloadFilter(t *testing.T) {
	_, d := newRemoteDispatcher(t, Options{QueueDepth: 8})
	pc, err := d.Submit(pipelineSpec(5, 2, 0)) // default workload: pathcount
	if err != nil {
		t.Fatal(err)
	}
	hcSpec := pipelineSpec(5, 2, 0)
	hcSpec.Workload = "hashchain"
	hc, err := d.Submit(hcSpec)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r, err := d.Lease(ctx, "hc-only", func(w, _ string) bool { return w == "hashchain" }, func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != hc.ID {
		t.Fatalf("hashchain-only worker leased %s, want %s", r.ID, hc.ID)
	}

	// An unrestricted worker gets the remaining pathcount run.
	r2 := lease(t, d, "any")
	if r2.ID != pc.ID {
		t.Fatalf("unrestricted worker leased %s, want %s", r2.ID, pc.ID)
	}
	for _, id := range []string{pc.ID, hc.ID} {
		if _, err := d.CompleteLease(id, run.StateSucceeded, "", &run.Result{Match: true}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLeaseLongPollTimesOut(t *testing.T) {
	_, d := newRemoteDispatcher(t, Options{QueueDepth: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := d.Lease(ctx, "w1", nil, func(string) {})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Lease on empty queue = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("Lease blocked %v past its deadline", time.Since(start))
	}
}

// TestLeaseWakesOnSubmit verifies a parked Lease is woken by a concurrent
// Submit rather than waiting out its long-poll deadline.
func TestLeaseWakesOnSubmit(t *testing.T) {
	_, d := newRemoteDispatcher(t, Options{QueueDepth: 8})
	got := make(chan run.Run, 1)
	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		r, err := d.Lease(ctx, "w1", nil, func(string) {})
		if err != nil {
			errc <- err
			return
		}
		got <- r
	}()
	time.Sleep(20 * time.Millisecond) // let the lease park
	sub, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.ID != sub.ID {
			t.Fatalf("woken lease got %s, want %s", r.ID, sub.ID)
		}
		if _, err := d.CompleteLease(r.ID, run.StateSucceeded, "", &run.Result{Match: true}); err != nil {
			t.Fatal(err)
		}
	case err := <-errc:
		t.Fatalf("Lease: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("Lease never woke on Submit")
	}
}

// TestLeaseCancelHook verifies a cancel on a leased run fires the lease's
// hook (the fleet layer relays it to the worker) and that the worker's
// cancelled completion report lands as cancelled.
func TestLeaseCancelHook(t *testing.T) {
	store, d := newRemoteDispatcher(t, Options{QueueDepth: 8})
	sub, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var cancelled []string
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := d.Lease(ctx, "w1", nil, func(id string) {
		mu.Lock()
		cancelled = append(cancelled, id)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := d.Cancel(sub.ID); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	hooked := len(cancelled) == 1 && cancelled[0] == sub.ID
	mu.Unlock()
	if !hooked {
		t.Fatalf("cancel hook saw %v, want [%s]", cancelled, sub.ID)
	}
	// Run stays running until the worker acknowledges.
	if got, _ := store.Get(sub.ID); got.State != run.StateRunning {
		t.Fatalf("state after cancel = %s, want running until worker reports", got.State)
	}
	fr, err := d.CompleteLease(sub.ID, run.StateCancelled, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if fr.State != run.StateCancelled {
		t.Fatalf("final state = %s, want cancelled", fr.State)
	}
}

// TestCancelQueuedInRemoteMode pins that cancelling a still-queued run in
// remote mode unlinks it so no worker is ever handed a cancelled run.
func TestCancelQueuedInRemoteMode(t *testing.T) {
	_, d := newRemoteDispatcher(t, Options{QueueDepth: 8})
	sub, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r, err := d.Cancel(sub.ID); err != nil || r.State != run.StateCancelled {
		t.Fatalf("Cancel(queued) = %+v, %v", r, err)
	}
	if d.QueueLen() != 0 {
		t.Fatalf("QueueLen after cancel = %d, want 0", d.QueueLen())
	}
}

// TestRemoteShutdownDrains verifies Shutdown in remote mode waits for the
// outstanding lease to complete, then returns cleanly.
func TestRemoteShutdownDrains(t *testing.T) {
	store := run.NewMemStore()
	d := New(store, Options{QueueDepth: 8, Remote: true})
	sub, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	lease(t, d, "w1")

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- d.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v with a lease outstanding", err)
	default:
	}
	if _, err := d.CompleteLease(sub.ID, run.StateSucceeded, "", &run.Result{Match: true}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown = %v, want nil after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never returned after the last lease completed")
	}
	if _, err := d.Submit(pipelineSpec(5, 2, 0)); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Submit after Shutdown = %v, want ErrShuttingDown", err)
	}
}

// TestRemoteShutdownAbandonsOnCtxExpiry verifies a remote drain gives up
// when its context expires while a lease is still outstanding (the run
// stays running; a restart would replay it as queued).
func TestRemoteShutdownAbandonsOnCtxExpiry(t *testing.T) {
	store := run.NewMemStore()
	d := New(store, Options{QueueDepth: 8, Remote: true})
	sub, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	lease(t, d, "w1")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := d.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if got, _ := store.Get(sub.ID); got.State != run.StateRunning {
		t.Fatalf("abandoned run state = %s, want running", got.State)
	}
}

// TestLeaseDrainServesQueuedWork verifies a drain keeps granting leases
// until the queues are empty: queued work needs workers to finish.
func TestLeaseDrainServesQueuedWork(t *testing.T) {
	store := run.NewMemStore()
	d := New(store, Options{QueueDepth: 8, Remote: true})
	sub, err := d.Submit(pipelineSpec(5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- d.Shutdown(ctx)
	}()
	// Wait until the drain has begun so the lease below exercises the
	// closed-but-backlogged path.
	for !d.Draining() {
		time.Sleep(time.Millisecond)
	}
	r := lease(t, d, "w1")
	if r.ID != sub.ID {
		t.Fatalf("lease during drain = %s, want %s", r.ID, sub.ID)
	}
	if _, err := d.CompleteLease(r.ID, run.StateSucceeded, "", &run.Result{Match: true}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	// With the queues empty and closed, further leases are refused.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := d.Lease(ctx, "w1", nil, func(string) {}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Lease after drain = %v, want ErrShuttingDown", err)
	}
}

// TestLeaseFairnessAcrossTenants verifies lease mode preserves the DRR
// weight ratio the embedded pool guarantees: with tenants weighted 2:1
// and equal backlogs, grants alternate two-to-one.
func TestLeaseFairnessAcrossTenants(t *testing.T) {
	reg := mustRegistry(t,
		tenant.Config{Name: "default", Weight: 1},
		tenant.Config{Name: "heavy", Weight: 2},
	)
	_, d := newRemoteDispatcher(t, Options{QueueDepth: 64, Tenants: reg})
	for i := 0; i < 6; i++ {
		spec := pipelineSpec(5, 2, 0)
		spec.Tenant = "heavy"
		if _, err := d.Submit(spec); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Submit(pipelineSpec(5, 2, 0)); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for i := 0; i < 12; i++ {
		r := lease(t, d, "w1")
		order = append(order, r.Spec.Tenant)
		if _, err := d.CompleteLease(r.ID, run.StateSucceeded, "", &run.Result{Match: true}); err != nil {
			t.Fatal(err)
		}
	}
	// One full rotation serves heavy twice and default once, starting from
	// the alphabetically first tenant in the class.
	want := []string{"default", "heavy", "heavy", "default", "heavy", "heavy"}
	for i, tn := range order[:6] {
		if tn != want[i] {
			t.Fatalf("grant order %v, want prefix %v", order, want)
		}
	}
}
