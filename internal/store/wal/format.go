package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

// Record ops. All but opDel carry a full run snapshot.
const (
	opCreate    = "create"    // run admitted to the queue
	opBegin     = "begin"     // queued → running
	opFinish    = "finish"    // running → succeeded|failed|cancelled
	opCancel    = "cancel"    // queued → cancelled immediately
	opCancelReq = "cancelreq" // cancellation acknowledged on a running run
	opRequeue   = "requeue"   // interrupted → queued on recovery
	opPut       = "put"       // compaction baseline / recovery-repair snapshot
	opDel       = "del"       // run removed (eviction or submit rollback)
)

// record is the JSON payload of one framed WAL entry.
type record struct {
	Op  string   `json:"op"`
	Run *run.Run `json:"run,omitempty"`
	ID  string   `json:"id,omitempty"`
}

// frameHeaderSize is the fixed prefix of every record: payload length plus
// payload CRC32, both big-endian uint32.
const frameHeaderSize = 8

// maxRecordBytes bounds a single record's payload. The largest legitimate
// record is a queued explicit spec near run.MaxEdges (~4M edges at ~10 JSON
// bytes each); anything bigger is treated as corruption rather than an
// allocation request.
const maxRecordBytes = 128 << 20

// shardIndex maps a run ID to its owning shard. It must be a pure function
// of the ID and the (manifest-pinned) shard count: every record for one run
// lands in one shard, so per-shard replay order is total order for that run.
func shardIndex(id string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(shards))
}

// replayState is the fold over a log chain: the latest snapshot per
// surviving run, plus which non-terminal runs had a cancellation
// acknowledged (an opCancelReq with no terminal record after it).
type replayState struct {
	runs            map[string]run.Run
	cancelRequested map[string]bool
}

func newReplayState() *replayState {
	return &replayState{
		runs:            make(map[string]run.Run),
		cancelRequested: make(map[string]bool),
	}
}

// loadChain replays the snapshot + segment chain in dir — a shard directory,
// or a legacy pre-shard data dir during migration — and returns the
// surviving replay state and the highest file sequence number seen.
func loadChain(dir string) (*replayState, uint64, error) {
	snaps, segs, err := scanDir(dir)
	if err != nil {
		return nil, 0, err
	}
	state := newReplayState()
	var maxSeq uint64

	// Baseline: the highest-numbered snapshot. Older snapshots are only
	// leftovers from an interrupted cleanup; ignore them.
	var snapSeq uint64
	if len(snaps) > 0 {
		snapSeq = snaps[len(snaps)-1]
		maxSeq = snapSeq
		path := filepath.Join(dir, snapshotName(snapSeq))
		// A snapshot is written to a temp file, fsynced, and renamed into
		// place, so it is either absent or complete: any damage is real
		// corruption, never a torn tail.
		if err := replayFile(path, false, state); err != nil {
			return nil, 0, err
		}
	}

	for i, seq := range segs {
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq <= snapSeq {
			// Sealed before the snapshot was taken; its records are already
			// baked in. (Normally deleted by compaction — tolerate leftovers
			// from a crash between snapshot rename and segment removal.)
			continue
		}
		final := i == len(segs)-1
		if err := replayFile(filepath.Join(dir, segmentName(seq)), final, state); err != nil {
			return nil, 0, err
		}
	}
	return state, maxSeq, nil
}

// replayFile applies every record in path to state. final selects the
// torn-tail policy: in the final segment a truncated, checksum-failing, or
// undecodable record (and everything after it) is discarded by truncating
// the file; in any earlier file the same damage is corruption and an error.
func replayFile(path string, final bool, state *replayState) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: reading %s: %w", filepath.Base(path), err)
	}
	off := 0
	for {
		n, rec, err := decodeFrame(data[off:])
		if err == errEndOfLog {
			return nil
		}
		if err != nil {
			if !final {
				return fmt.Errorf("wal: %s is corrupt at offset %d: %w (refusing to load a damaged sealed file)",
					filepath.Base(path), off, err)
			}
			log.Printf("wal: truncating torn tail of %s at offset %d: %v", filepath.Base(path), off, err)
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(path), terr)
			}
			return nil
		}
		applyRecord(rec, state)
		off += n
	}
}

// applyRecord folds one decoded record into the replay state. Snapshots
// are last-writer-wins; the cancel-requested flag survives later
// non-terminal records for the run except an explicit requeue — a requeue
// supersedes the interrupted attempt (live lease expiry never requeues a
// cancel-requested run, and recovery only writes opRequeue when the flag
// was absent) — and becomes irrelevant once a terminal record lands.
func applyRecord(rec record, state *replayState) {
	switch rec.Op {
	case opDel:
		delete(state.runs, rec.ID)
		delete(state.cancelRequested, rec.ID)
	case opCancelReq:
		state.runs[rec.Run.ID] = *rec.Run
		state.cancelRequested[rec.Run.ID] = true
	case opRequeue:
		state.runs[rec.Run.ID] = *rec.Run
		delete(state.cancelRequested, rec.Run.ID)
	default:
		state.runs[rec.Run.ID] = *rec.Run
	}
}

// errEndOfLog marks a clean end of a record stream (zero bytes remaining).
var errEndOfLog = errors.New("wal: end of log")

// decodeFrame decodes one framed record from the front of b, returning the
// total bytes consumed. Any defect — short header, truncated payload,
// oversized or zero length, CRC mismatch, malformed JSON, or a record that
// fails validation — is an error; callers choose between torn-tail
// truncation and refusal.
func decodeFrame(b []byte) (int, record, error) {
	if len(b) == 0 {
		return 0, record{}, errEndOfLog
	}
	if len(b) < frameHeaderSize {
		return 0, record{}, fmt.Errorf("short frame header (%d bytes)", len(b))
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if n == 0 || n > maxRecordBytes {
		return 0, record{}, fmt.Errorf("implausible record length %d", n)
	}
	if uint32(len(b)-frameHeaderSize) < n {
		return 0, record{}, fmt.Errorf("truncated record: header claims %d bytes, %d remain", n, len(b)-frameHeaderSize)
	}
	payload := b[frameHeaderSize : frameHeaderSize+int(n)]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(b[4:8]); got != want {
		return 0, record{}, fmt.Errorf("checksum mismatch (got %08x, want %08x)", got, want)
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return 0, record{}, fmt.Errorf("undecodable record: %v", err)
	}
	if err := validateRecord(rec); err != nil {
		return 0, record{}, err
	}
	return frameHeaderSize + int(n), rec, nil
}

// validateRecord rejects structurally invalid records so replay never
// inserts a run it could not have written: every op must be known, del
// needs an ID, everything else needs a snapshot with a non-empty ID.
// (State names are enforced by JSON decoding already — run.State
// unmarshals from its text form and rejects unknown names.)
func validateRecord(rec record) error {
	switch rec.Op {
	case opDel:
		if rec.ID == "" {
			return errors.New("del record without id")
		}
	case opCreate, opBegin, opFinish, opCancel, opCancelReq, opRequeue, opPut:
		if rec.Run == nil || rec.Run.ID == "" {
			return fmt.Errorf("%s record without run snapshot", rec.Op)
		}
	default:
		return fmt.Errorf("unknown record op %q", rec.Op)
	}
	return nil
}

// encodeFrame appends the framed encoding of rec to buf.
func encodeFrame(buf []byte, rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("wal: encoding record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return buf, fmt.Errorf("wal: record payload %d bytes exceeds cap %d", len(payload), maxRecordBytes)
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...), nil
}

func segmentName(seq uint64) string  { return fmt.Sprintf("wal-%016d.log", seq) }
func snapshotName(seq uint64) string { return fmt.Sprintf("snapshot-%016d.log", seq) }
func shardDirName(i int) string      { return fmt.Sprintf("shard-%02d", i) }

// scanDir lists snapshot and segment sequence numbers in dir, each sorted
// ascending.
func scanDir(dir string) (snaps, segs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: scanning data dir: %w", err)
	}
	parse := func(name, prefix string) (uint64, bool) {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".log") {
			return 0, false
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".log")
		seq, err := strconv.ParseUint(mid, 10, 64)
		if err != nil {
			return 0, false
		}
		return seq, true
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parse(e.Name(), "snapshot-"); ok {
			snaps = append(snaps, seq)
		} else if seq, ok := parse(e.Name(), "wal-"); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return snaps, segs, nil
}

// writeFileAtomic stages data in a temp file, fsyncs it, and renames it to
// name inside dir, so the file is either absent or complete — never torn.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".*.tmp")
	if err != nil {
		return fmt.Errorf("wal: staging %s: %w", name, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: writing %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: syncing %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: closing %s: %w", name, err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: installing %s: %w", name, err)
	}
	return nil
}

// removeStaleTemps clears *.tmp staging debris a crash may have left in dir.
func removeStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
