package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

// writeLegacyLayout hand-crafts a pre-shard data dir: one root-level
// segment chain, no MANIFEST — byte-for-byte what the single-stream store
// left behind. Returns the IDs of the terminal, interrupted, and
// cancel-acknowledged runs it contains.
func writeLegacyLayout(t *testing.T, dir string) (terminalID, queuedID, cancelReqID string) {
	t.Helper()
	now := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	started := now.Add(time.Second)
	finishedAt := now.Add(2 * time.Second)
	spec := run.Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: 3, Width: 2}}

	var buf []byte
	var err error
	appendRec := func(rec record) {
		if buf, err = encodeFrame(buf, rec); err != nil {
			t.Fatalf("encodeFrame: %v", err)
		}
	}
	terminal := run.Run{
		ID: "r000001-aaaaaaaa", Spec: spec, State: run.StateQueued, CreatedAt: now,
	}
	appendRec(record{Op: opCreate, Run: &terminal})
	terminal.State = run.StateSucceeded
	terminal.StartedAt = &started
	terminal.FinishedAt = &finishedAt
	terminal.Result = &run.Result{Nodes: 8, Match: true}
	appendRec(record{Op: opFinish, Run: &terminal})

	queued := run.Run{
		ID: "r000002-bbbbbbbb", Spec: spec, State: run.StateQueued, CreatedAt: now.Add(3 * time.Second),
	}
	appendRec(record{Op: opCreate, Run: &queued})

	cancelled := run.Run{
		ID: "r000003-cccccccc", Spec: spec, State: run.StateRunning,
		CreatedAt: now.Add(4 * time.Second), StartedAt: &started,
	}
	appendRec(record{Op: opCreate, Run: &cancelled})
	appendRec(record{Op: opCancelReq, Run: &cancelled})

	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return terminal.ID, queued.ID, cancelled.ID
}

// TestLegacyMigration pins the in-place upgrade: opening a pre-shard data
// dir rewrites it into the sharded layout — runs land in their hash shards,
// the manifest pins the count, the root files are gone — with the same
// recovery semantics the single-stream store had (terminal history kept,
// interrupted runs re-admitted, acknowledged cancels finished).
func TestLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	terminalID, queuedID, cancelReqID := writeLegacyLayout(t, dir)

	s, recovered, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatalf("Open over legacy layout: %v", err)
	}
	if got, err := s.Get(terminalID); err != nil || got.State != run.StateSucceeded || got.Result == nil {
		t.Errorf("terminal run after migration = %+v, %v; want intact succeeded", got, err)
	}
	if len(recovered) != 1 || recovered[0].ID != queuedID || recovered[0].Restarts != 1 {
		t.Errorf("recovered = %+v, want just %s re-admitted with Restarts 1", recovered, queuedID)
	}
	if got, err := s.Get(cancelReqID); err != nil || got.State != run.StateCancelled {
		t.Errorf("cancel-acknowledged run after migration = %+v, %v; want cancelled", got, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The root chain is gone; its content lives in the shard dirs under a
	// manifest pinning the migrated count.
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("legacy root segment still present after migration (stat err %v)", err)
	}
	m, err := readManifest(dir)
	if err != nil || m == nil || m.Shards != 4 {
		t.Fatalf("manifest after migration = %+v, %v; want 4 shards", m, err)
	}
	for _, id := range []string{terminalID, cancelReqID} {
		sdir := filepath.Join(dir, shardDirName(shardIndex(id, 4)))
		if _, err := os.Stat(sdir); err != nil {
			t.Errorf("shard dir %s for %s missing: %v", sdir, id, err)
		}
	}

	// The migrated layout reopens cleanly with the count adopted from the
	// manifest...
	s2, recovered2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after migration: %v", err)
	}
	if s2.Shards() != 4 {
		t.Errorf("Shards() = %d after adopting manifest, want 4", s2.Shards())
	}
	if len(recovered2) != 1 || recovered2[0].ID != queuedID || recovered2[0].Restarts != 2 {
		t.Errorf("second recovery = %+v, want %s with Restarts 2", recovered2, queuedID)
	}
	if got, _ := s2.Get(terminalID); got.State != run.StateSucceeded {
		t.Errorf("terminal run state after reopen = %s, want succeeded", got.State)
	}
	s2.Close()

	// ...and fails closed under any other count.
	if _, _, err := Open(dir, Options{Shards: 2}); !errors.Is(err, ErrShardCountMismatch) {
		t.Fatalf("Open with mismatched shard count = %v, want ErrShardCountMismatch", err)
	}
}

// TestMigrationRefusesCorruptLegacyChain pins that migration inherits the
// corruption policy: a damaged sealed file in the legacy chain refuses to
// migrate rather than converting a partial history.
func TestMigrationRefusesCorruptLegacyChain(t *testing.T) {
	dir := t.TempDir()
	writeLegacyLayout(t, dir)
	// A second, later segment seals the first; then damage the sealed one.
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), fuzzBystander(t), 0o644); err != nil {
		t.Fatal(err)
	}
	sealed := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(sealed, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(dir, Options{Shards: 4}); err == nil {
		t.Fatal("Open migrated a corrupt legacy chain")
	}
	// No partial conversion: still no manifest, so the untouched legacy
	// layout (or its repairable tail) is what the operator gets to fix.
	if m, _ := readManifest(dir); m != nil {
		t.Errorf("manifest written despite failed migration: %+v", m)
	}
}
