package wal

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// walShard is one independent slice of the log: its own directory, mutex,
// active segment, sequence counter, compaction cycle, and group-commit
// batcher. Runs are routed here by shardIndex, so transitions for runs in
// different shards never contend on a lock or an fsync.
type walShard struct {
	store *Store
	index int
	dir   string

	mu         sync.Mutex
	seg        *os.File // active segment
	segBytes   int64
	nextSeq    uint64 // next file sequence number (segments and snapshots share it)
	appended   int    // records since the last compaction (or replayed since boot)
	compacting bool   // a background compaction is in flight
	closed     bool
	// cancelReq tracks runs in this shard with an acknowledged-but-unfinished
	// cancellation, so a compaction snapshot preserves the acknowledgement
	// (as an opCancelReq record) instead of flattening it into a plain put
	// that recovery would re-admit.
	cancelReq map[string]bool

	compactWG sync.WaitGroup
	gc        *groupCommit // nil unless group-commit fsync is on
	met       shardInstruments
}

func newShard(store *Store, index int) (*walShard, error) {
	sh := &walShard{
		store:     store,
		index:     index,
		dir:       filepath.Join(store.dir, shardDirName(index)),
		cancelReq: make(map[string]bool),
		met:       store.met.forShard(shardDirName(index)),
	}
	if err := os.MkdirAll(sh.dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", shardDirName(index), err)
	}
	removeStaleTemps(sh.dir)
	return sh, nil
}

// openSegmentLocked starts a fresh active segment. Callers hold mu (or are
// still single-threaded in Open).
func (sh *walShard) openSegmentLocked() error {
	seq := sh.nextSeq
	sh.nextSeq++
	f, err := os.OpenFile(filepath.Join(sh.dir, segmentName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	sh.seg = f
	sh.segBytes = 0
	return nil
}

// appendLocked writes one record to the active segment, triggering
// compaction or rotation as thresholds demand. Callers hold mu. The
// returned ticket is non-zero when the record's durability is deferred to
// the group committer: the caller must release mu and then waitDurable
// before acknowledging the transition.
func (sh *walShard) appendLocked(rec record) (uint64, error) {
	if sh.closed {
		return 0, errors.New("wal: store is closed")
	}
	buf, err := encodeFrame(nil, rec)
	if err != nil {
		return 0, err
	}
	if _, err := sh.seg.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: appending record: %w", err)
	}
	var ticket uint64
	if sh.gc != nil {
		ticket = sh.gc.ticket()
	} else if sh.store.opts.Fsync {
		// Per-record fsync: the pre-group-commit baseline, kept for the
		// syncEveryRecord benchmark mode.
		t0 := time.Now()
		if err := sh.seg.Sync(); err != nil {
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
		sh.met.fsyncs.Inc()
		sh.met.fsyncSeconds.Observe(time.Since(t0).Seconds())
		sh.met.batchSize.Observe(1)
	}
	sh.segBytes += int64(len(buf))
	sh.appended++
	sh.met.appends.Inc()
	sh.met.appendedBytes.Add(float64(len(buf)))
	if sh.store.opts.CompactThreshold > 0 && sh.appended >= sh.store.opts.CompactThreshold && !sh.compacting {
		sh.compacting = true
		sh.compactWG.Add(1)
		go sh.doCompact()
		return ticket, nil
	}
	if sh.segBytes >= sh.store.opts.SegmentMaxBytes {
		if err := sh.rotateLocked(); err != nil {
			log.Printf("wal: segment rotation failed (segment keeps growing until it succeeds): %v", err)
		}
	}
	return ticket, nil
}

// waitDurable blocks until the ticketed record is on disk. A zero ticket
// (no group committer) means durability was already settled inline.
func (sh *walShard) waitDurable(ticket uint64) error {
	if sh.gc == nil || ticket == 0 {
		return nil
	}
	return sh.gc.await(ticket)
}

// rotateLocked seals the active segment and starts a new one. Sealing syncs
// before closing, so every record written so far is durable — the group
// committer is advanced past all of them, and a committer that raced into
// Sync on the closed handle treats os.ErrClosed as success. Callers hold mu.
func (sh *walShard) rotateLocked() error {
	if err := sh.seg.Sync(); err != nil {
		return fmt.Errorf("wal: syncing sealed segment: %w", err)
	}
	if sh.gc != nil {
		sh.gc.markAllDurable()
	}
	if err := sh.seg.Close(); err != nil {
		return fmt.Errorf("wal: closing sealed segment: %w", err)
	}
	sh.met.rotations.Inc()
	return sh.openSegmentLocked()
}

// doCompact runs one background compaction. The shard lock is held only for
// phase 1 — allocating the snapshot's sequence number and rotating to a
// fresh active segment (the "swap") — so the write path never stalls behind
// the snapshot itself. Phase 2 encodes this shard's surviving runs, installs
// the snapshot atomically, and drops every file sealed before it.
//
// The snapshot may fold in state from records appended after the swap; that
// only ever makes recovery strictly newer, never loses an acknowledged
// record, because those records are still replayed on top of the snapshot.
func (sh *walShard) doCompact() {
	defer sh.compactWG.Done()
	t0 := time.Now()

	// Phase 1, under the lock: pick the snapshot's place in the chain and
	// swap in a fresh active segment. The sealed segments all sort below
	// snapSeq; the new active sorts above it.
	sh.mu.Lock()
	if sh.closed {
		sh.compacting = false
		sh.mu.Unlock()
		return
	}
	snapSeq := sh.nextSeq
	sh.nextSeq++
	if err := sh.rotateLocked(); err != nil {
		sh.compacting = false
		sh.mu.Unlock()
		log.Printf("wal: compaction swap failed (log keeps growing until it succeeds): %v", err)
		return
	}
	base := sh.appended
	sh.appended = 0
	cancelReq := make(map[string]bool, len(sh.cancelReq))
	for id := range sh.cancelReq {
		cancelReq[id] = true
	}
	sh.mu.Unlock()

	// Phase 2, off-path: snapshot this shard's slice of the store.
	fail := func(err error) {
		log.Printf("wal: compaction of %s failed (log keeps growing until it succeeds): %v", shardDirName(sh.index), err)
		sh.mu.Lock()
		sh.appended += base
		sh.compacting = false
		sh.mu.Unlock()
	}
	runs := sh.store.mem.List()
	var buf []byte
	count := 0
	var err error
	for i := range runs {
		if shardIndex(runs[i].ID, len(sh.store.shards)) != sh.index {
			continue
		}
		rec := record{Op: opPut, Run: &runs[i]}
		if cancelReq[runs[i].ID] && !runs[i].State.Terminal() {
			rec.Op = opCancelReq
		}
		if buf, err = encodeFrame(buf, rec); err != nil {
			fail(err)
			return
		}
		count++
	}
	if err := writeFileAtomic(sh.dir, snapshotName(snapSeq), buf); err != nil {
		fail(err)
		return
	}

	// The snapshot is durable; everything older is redundant. Removal
	// failures are tolerable (replay skips files at or below the snapshot's
	// sequence) — try again next compaction.
	snaps, segs, err := scanDir(sh.dir)
	if err == nil {
		for _, seq := range snaps {
			if seq < snapSeq {
				os.Remove(filepath.Join(sh.dir, snapshotName(seq)))
			}
		}
		for _, seq := range segs {
			if seq < snapSeq {
				os.Remove(filepath.Join(sh.dir, segmentName(seq)))
			}
		}
	}

	if dropped := base - count; dropped > 0 {
		sh.met.reclaimed.Add(float64(dropped))
	}
	sh.met.compactions.Inc()
	sh.met.compactSecs.Observe(time.Since(t0).Seconds())
	sh.mu.Lock()
	sh.compacting = false
	sh.mu.Unlock()
}

// close seals the shard: refuse new appends, stop the committer (draining
// one final batch), wait out any in-flight compaction, then sync and close
// the active segment.
func (sh *walShard) close() error {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return nil
	}
	sh.closed = true
	sh.mu.Unlock()

	if sh.gc != nil {
		sh.gc.stop()
	}
	sh.compactWG.Wait()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.seg == nil {
		return nil
	}
	if err := sh.seg.Sync(); err != nil {
		sh.seg.Close()
		return fmt.Errorf("wal: syncing on close: %w", err)
	}
	if sh.gc != nil {
		sh.gc.markAllDurable()
	}
	return sh.seg.Close()
}
