package wal

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

// BenchmarkWALAppend measures the durable append path (Create: one framed
// record written and, under fsync, made durable before return) across the
// axes the sharded redesign targets: serial vs 16 concurrent appenders,
// fsync off / group-commit fsync / the pre-group-commit per-record-fsync
// baseline, and 1 vs 8 shards. The acceptance bar for the redesign is
// Goroutines16/GroupFsync beating Goroutines16/PerRecordFsync/Shards1 by
// ≥ 4x records/sec.
//
// Compaction is disabled and segments are kept large so the numbers are
// the append+sync cost, not snapshot churn.
func BenchmarkWALAppend(b *testing.B) {
	type config struct {
		name    string
		workers int
		opts    Options
	}
	configs := []config{
		{"Serial/NoFsync", 1, Options{Shards: 1}},
		{"Serial/GroupFsync", 1, Options{Shards: 1, Fsync: true}},
		{"Serial/PerRecordFsync", 1, Options{Shards: 1, Fsync: true, syncEveryRecord: true}},
		{"Goroutines16/NoFsync/Shards1", 16, Options{Shards: 1}},
		{"Goroutines16/NoFsync/Shards8", 16, Options{Shards: 8}},
		{"Goroutines16/GroupFsync/Shards1", 16, Options{Shards: 1, Fsync: true}},
		{"Goroutines16/GroupFsync/Shards8", 16, Options{Shards: 8, Fsync: true}},
		{"Goroutines16/PerRecordFsync/Shards1", 16, Options{Shards: 1, Fsync: true, syncEveryRecord: true}},
	}
	spec := run.Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: 5, Width: 2}}
	for _, cfg := range configs {
		cfg.opts.CompactThreshold = -1
		cfg.opts.SegmentMaxBytes = 1 << 30
		b.Run(cfg.name, func(b *testing.B) {
			s, _, err := Open(b.TempDir(), cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			if cfg.workers == 1 {
				for i := 0; i < b.N; i++ {
					if _, err := s.Create(spec); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				var next int64
				var wg sync.WaitGroup
				errCh := make(chan error, cfg.workers)
				for w := 0; w < cfg.workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for atomic.AddInt64(&next, 1) <= int64(b.N) {
							if _, err := s.Create(spec); err != nil {
								errCh <- err
								return
							}
						}
					}()
				}
				wg.Wait()
				select {
				case err := <-errCh:
					b.Fatal(err)
				default:
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "appends/sec")
		})
	}
}

// BenchmarkWALFinishParallel measures the full transition path (Begin +
// Finish on pre-created runs) with 16 workers, comparing group-commit
// against the per-record baseline — closer to what a loaded dagd does per
// run than raw Creates.
func BenchmarkWALFinishParallel(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"GroupFsync/Shards8", Options{Shards: 8, Fsync: true}},
		{"PerRecordFsync/Shards1", Options{Shards: 1, Fsync: true, syncEveryRecord: true}},
	} {
		cfg.opts.CompactThreshold = -1
		cfg.opts.SegmentMaxBytes = 1 << 30
		b.Run(cfg.name, func(b *testing.B) {
			s, _, err := Open(b.TempDir(), cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			spec := run.Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: 5, Width: 2}}
			ids := make([]string, b.N)
			for i := range ids {
				r, err := s.Create(spec)
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = r.ID
			}
			b.ResetTimer()
			var next int64
			var wg sync.WaitGroup
			const workers = 16
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := atomic.AddInt64(&next, 1) - 1
						if i >= int64(b.N) {
							return
						}
						if _, err := s.Begin(ids[i], time.Now(), "", func() {}); err != nil {
							b.Error(err)
							return
						}
						if _, err := s.Finish(ids[i], &run.Result{Nodes: 12, Match: true}, nil); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "runs/sec")
		})
	}
}
