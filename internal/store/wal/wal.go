// Package wal is the durable run.Store implementation: an append-only
// write-ahead log of run state transitions layered over the in-memory
// MemStore. Reads are served from memory; every mutation is recorded to
// disk before the call returns, so a crashed dagd rebuilds its full run
// history — and re-admits interrupted work — by replaying the log on boot.
//
// # On-disk format
//
// A data directory holds two kinds of files, both sequences of identically
// framed records:
//
//	wal-<seq>.log      active/sealed log segments, one record per transition
//	snapshot-<seq>.log compacted baseline: one record per surviving run
//
// Each record is framed as
//
//	[4-byte big-endian payload length][4-byte big-endian CRC32 (IEEE) of payload][payload]
//
// where the payload is one JSON-encoded record: an op name plus either a
// full post-transition run snapshot ("create", "begin", "finish", "cancel",
// "requeue", "put") or a bare run ID ("del", written for evictions and
// deletes). Carrying the full snapshot makes replay trivially idempotent —
// the last record for an ID wins — and means a reordered or partially
// missing history still converges to a valid state.
//
// # Replay and corruption policy
//
// Open loads the highest-numbered snapshot, then replays every later
// segment in sequence order. A truncated or checksum-failing record in the
// final (active-at-crash) segment is treated as a torn tail: the file is
// truncated at the last good record and recovery proceeds — a crash
// mid-append must not brick the store. The same damage in any earlier file
// means real corruption (those files were sealed complete), and Open
// refuses to load rather than resurrect a partial history. Records that
// decode but fail validation (empty ID, unknown op) follow the same policy.
//
// # Recovery semantics
//
// After replay, terminal runs are restored as immutable history. Runs that
// were queued or running at crash time are re-admitted: their state is
// reset to queued (StartedAt cleared, Restarts incremented) and a "requeue"
// record logs the interrupted → queued transition. The recovered queued
// runs are returned from Open, oldest first, so the caller can hand them
// back to a dispatcher. A to-be-requeued run whose spec no longer passes
// validation (possible only if the log was hand-edited — CRC protects
// against accidental damage) is marked failed instead of re-executed.
package wal

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/metrics"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/tenant"
)

// Record ops. All but opDel carry a full run snapshot.
const (
	opCreate    = "create"    // run admitted to the queue
	opBegin     = "begin"     // queued → running
	opFinish    = "finish"    // running → succeeded|failed|cancelled
	opCancel    = "cancel"    // queued → cancelled immediately
	opCancelReq = "cancelreq" // cancellation acknowledged on a running run
	opRequeue   = "requeue"   // interrupted → queued on recovery
	opPut       = "put"       // compaction baseline / recovery-repair snapshot
	opDel       = "del"       // run removed (eviction or submit rollback)
)

// record is the JSON payload of one framed WAL entry.
type record struct {
	Op  string   `json:"op"`
	Run *run.Run `json:"run,omitempty"`
	ID  string   `json:"id,omitempty"`
}

// frameHeaderSize is the fixed prefix of every record: payload length plus
// payload CRC32, both big-endian uint32.
const frameHeaderSize = 8

// maxRecordBytes bounds a single record's payload. The largest legitimate
// record is a queued explicit spec near run.MaxEdges (~4M edges at ~10 JSON
// bytes each); anything bigger is treated as corruption rather than an
// allocation request.
const maxRecordBytes = 128 << 20

// Options configures a WAL store.
type Options struct {
	// Fsync forces an fsync after every appended record, making each
	// acknowledged transition durable against power loss, not just process
	// crash. Off by default: the OS page cache survives SIGKILL, and
	// per-record fsync costs ~milliseconds per transition on most disks.
	// Compaction snapshots are always fsynced before old segments are
	// removed, regardless of this setting.
	Fsync bool
	// CompactThreshold is how many records may be appended (or replayed
	// from segments on boot) before the store compacts: it writes all
	// surviving runs — mostly terminal history — into a snapshot file and
	// deletes the older segments. Zero means 4096; negative disables
	// compaction.
	CompactThreshold int
	// SegmentMaxBytes rotates the active segment once it grows past this
	// size, bounding the largest file replay must buffer. Zero means 8MB.
	SegmentMaxBytes int64
	// Metrics receives the store's instrumentation (append/fsync volume and
	// latency, rotations, compactions). Nil disables it.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.CompactThreshold == 0 {
		o.CompactThreshold = 4096
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 8 << 20
	}
	return o
}

// Store is the WAL-backed run.Store. The embedded MemStore answers every
// read; mu serializes mutations so the record order on disk always matches
// the order transitions were applied in memory (without it, two racing
// transitions on one run could log in the opposite order and replay to the
// wrong final state).
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	mem      *run.MemStore
	seg      *os.File // active segment
	segBytes int64
	nextSeq  uint64 // next file sequence number (segments and snapshots share it)
	appended int    // records since the last compaction (or replayed since boot)
	closed   bool

	met walInstruments
}

// walInstruments is the store's metric handles; all nil-safe.
type walInstruments struct {
	appends       *metrics.Counter   // dagd_wal_appends_total
	appendedBytes *metrics.Counter   // dagd_wal_appended_bytes_total
	fsyncs        *metrics.Counter   // dagd_wal_fsyncs_total
	fsyncSeconds  *metrics.Histogram // dagd_wal_fsync_seconds
	rotations     *metrics.Counter   // dagd_wal_segment_rotations_total
	compactions   *metrics.Counter   // dagd_wal_compactions_total
	compactSecs   *metrics.Histogram // dagd_wal_compaction_seconds
	reclaimed     *metrics.Counter   // dagd_wal_compaction_reclaimed_records_total
}

func newWALInstruments(reg *metrics.Registry) walInstruments {
	return walInstruments{
		appends: reg.Counter("dagd_wal_appends_total",
			"Records appended to the active WAL segment."),
		appendedBytes: reg.Counter("dagd_wal_appended_bytes_total",
			"Bytes appended to WAL segments (framed record size)."),
		fsyncs: reg.Counter("dagd_wal_fsyncs_total",
			"Per-record fsyncs performed because the store runs with Fsync on."),
		fsyncSeconds: reg.Histogram("dagd_wal_fsync_seconds",
			"Latency of per-record fsyncs.", metrics.IOBuckets),
		rotations: reg.Counter("dagd_wal_segment_rotations_total",
			"Active-segment rotations (seal + open a fresh segment)."),
		compactions: reg.Counter("dagd_wal_compactions_total",
			"Completed compactions (snapshot written, older files removed)."),
		compactSecs: reg.Histogram("dagd_wal_compaction_seconds",
			"Wall time of a completed compaction.", metrics.DefBuckets),
		reclaimed: reg.Counter("dagd_wal_compaction_reclaimed_records_total",
			"Log records dropped by compaction: records accumulated since the prior compaction minus the snapshot records that replaced them."),
	}
}

var _ run.Store = (*Store)(nil)

// Open loads (or initializes) the WAL in dir and returns the store plus the
// recovered queued runs — every run that was queued or running at crash
// time, already reset to queued — oldest first, for the caller to re-admit
// to its dispatcher.
func Open(dir string, opts Options) (*Store, []run.Run, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating data dir: %w", err)
	}
	s := &Store{dir: dir, opts: opts, mem: run.NewMemStore(), met: newWALInstruments(opts.Metrics)}

	replayed, maxSeq, err := s.load()
	if err != nil {
		return nil, nil, err
	}
	s.nextSeq = maxSeq + 1
	s.appended = len(replayed.runs)

	// Restore terminal history first, then convert interrupted runs.
	// repaired collects runs that recovery itself drives to a terminal
	// state (crash-orphaned cancellations, specs failing re-validation);
	// their synthesized snapshots are logged below as opPut.
	var recovered, repaired []run.Run
	for _, r := range replayed.runs {
		// Records written before tenancy existed carry no attribution;
		// replay them as the catch-all default tenant so history filters
		// and re-admission both have a real tenant to point at.
		if r.Spec.Tenant == "" {
			r.Spec.Tenant = tenant.Default
		}
		if r.State.Terminal() {
			s.mem.Restore(r)
			continue
		}
		if replayed.cancelRequested[r.ID] {
			// A cancel was acknowledged while this run was running, and the
			// process died before the dispatcher could record the terminal
			// outcome. Honoring the acknowledgement means finishing the
			// cancellation now, not re-executing the run.
			now := time.Now().Round(0)
			r.State = run.StateCancelled
			r.Error = "cancelled; the service restarted before the cancellation completed"
			r.FinishedAt = &now
			r.Result = nil
			run.RedactTerminalSpec(&r)
			repaired = append(repaired, r)
			s.mem.Restore(r)
			continue
		}
		// interrupted → queued: the process died before this run finished.
		r.State = run.StateQueued
		r.DispatchedAt = nil
		r.StartedAt = nil
		r.Result = nil
		r.Error = ""
		r.Restarts++
		if err := r.Spec.Validate(); err != nil {
			// Reachable when a newer dagd tightened admission bounds over
			// specs an older one logged (or the log was hand-edited — CRC
			// catches accidental damage): never re-execute a spec admission
			// would refuse now.
			now := time.Now().Round(0)
			r.State = run.StateFailed
			r.Error = fmt.Sprintf("spec failed re-validation during crash recovery: %v", err)
			r.FinishedAt = &now
			run.RedactTerminalSpec(&r)
			repaired = append(repaired, r)
			s.mem.Restore(r)
			continue
		}
		s.mem.Restore(r)
		recovered = append(recovered, r)
	}
	sort.Slice(recovered, func(i, j int) bool { return run.CompareRuns(recovered[i], recovered[j]) < 0 })

	if err := s.openSegment(); err != nil {
		return nil, nil, err
	}
	// Log the recovery transitions themselves, so a second crash before the
	// next compaction still replays to the re-admitted (or repaired) state.
	for _, r := range recovered {
		r := r
		if err := s.append(record{Op: opRequeue, Run: &r}); err != nil {
			s.seg.Close()
			return nil, nil, err
		}
	}
	for _, r := range repaired {
		r := r
		if err := s.append(record{Op: opPut, Run: &r}); err != nil {
			s.seg.Close()
			return nil, nil, err
		}
	}
	return s, recovered, nil
}

// replayState is the fold over a log chain: the latest snapshot per
// surviving run, plus which non-terminal runs had a cancellation
// acknowledged (an opCancelReq with no terminal record after it).
type replayState struct {
	runs            map[string]run.Run
	cancelRequested map[string]bool
}

// load replays the snapshot + segment chain and returns the surviving
// replay state and the highest file sequence number seen.
func (s *Store) load() (*replayState, uint64, error) {
	snaps, segs, err := scanDir(s.dir)
	if err != nil {
		return nil, 0, err
	}
	state := &replayState{
		runs:            make(map[string]run.Run),
		cancelRequested: make(map[string]bool),
	}
	var maxSeq uint64

	// Baseline: the highest-numbered snapshot. Older snapshots are only
	// leftovers from an interrupted cleanup; ignore them.
	var snapSeq uint64
	if len(snaps) > 0 {
		snapSeq = snaps[len(snaps)-1]
		maxSeq = snapSeq
		path := filepath.Join(s.dir, snapshotName(snapSeq))
		// A snapshot is written to a temp file, fsynced, and renamed into
		// place, so it is either absent or complete: any damage is real
		// corruption, never a torn tail.
		if err := replayFile(path, false, state); err != nil {
			return nil, 0, err
		}
	}

	for i, seq := range segs {
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq <= snapSeq {
			// Sealed before the snapshot was taken; its records are already
			// baked in. (Normally deleted by compaction — tolerate leftovers
			// from a crash between snapshot rename and segment removal.)
			continue
		}
		final := i == len(segs)-1
		if err := replayFile(filepath.Join(s.dir, segmentName(seq)), final, state); err != nil {
			return nil, 0, err
		}
	}
	return state, maxSeq, nil
}

// replayFile applies every record in path to state. final selects the
// torn-tail policy: in the final segment a truncated, checksum-failing, or
// undecodable record (and everything after it) is discarded by truncating
// the file; in any earlier file the same damage is corruption and an error.
func replayFile(path string, final bool, state *replayState) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: reading %s: %w", filepath.Base(path), err)
	}
	off := 0
	for {
		n, rec, err := decodeFrame(data[off:])
		if err == errEndOfLog {
			return nil
		}
		if err != nil {
			if !final {
				return fmt.Errorf("wal: %s is corrupt at offset %d: %w (refusing to load a damaged sealed file)",
					filepath.Base(path), off, err)
			}
			log.Printf("wal: truncating torn tail of %s at offset %d: %v", filepath.Base(path), off, err)
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(path), terr)
			}
			return nil
		}
		applyRecord(rec, state)
		off += n
	}
}

// applyRecord folds one decoded record into the replay state. Snapshots
// are last-writer-wins; the cancel-requested flag survives later
// non-terminal records for the run (a begin cannot follow a cancel
// request, but a requeue from an older recovery could only exist if the
// flag was absent) and becomes irrelevant once a terminal record lands.
func applyRecord(rec record, state *replayState) {
	switch rec.Op {
	case opDel:
		delete(state.runs, rec.ID)
		delete(state.cancelRequested, rec.ID)
	case opCancelReq:
		state.runs[rec.Run.ID] = *rec.Run
		state.cancelRequested[rec.Run.ID] = true
	default:
		state.runs[rec.Run.ID] = *rec.Run
	}
}

// errEndOfLog marks a clean end of a record stream (zero bytes remaining).
var errEndOfLog = errors.New("wal: end of log")

// decodeFrame decodes one framed record from the front of b, returning the
// total bytes consumed. Any defect — short header, truncated payload,
// oversized or zero length, CRC mismatch, malformed JSON, or a record that
// fails validation — is an error; callers choose between torn-tail
// truncation and refusal.
func decodeFrame(b []byte) (int, record, error) {
	if len(b) == 0 {
		return 0, record{}, errEndOfLog
	}
	if len(b) < frameHeaderSize {
		return 0, record{}, fmt.Errorf("short frame header (%d bytes)", len(b))
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if n == 0 || n > maxRecordBytes {
		return 0, record{}, fmt.Errorf("implausible record length %d", n)
	}
	if uint32(len(b)-frameHeaderSize) < n {
		return 0, record{}, fmt.Errorf("truncated record: header claims %d bytes, %d remain", n, len(b)-frameHeaderSize)
	}
	payload := b[frameHeaderSize : frameHeaderSize+int(n)]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(b[4:8]); got != want {
		return 0, record{}, fmt.Errorf("checksum mismatch (got %08x, want %08x)", got, want)
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return 0, record{}, fmt.Errorf("undecodable record: %v", err)
	}
	if err := validateRecord(rec); err != nil {
		return 0, record{}, err
	}
	return frameHeaderSize + int(n), rec, nil
}

// validateRecord rejects structurally invalid records so replay never
// inserts a run it could not have written: every op must be known, del
// needs an ID, everything else needs a snapshot with a non-empty ID.
// (State names are enforced by JSON decoding already — run.State
// unmarshals from its text form and rejects unknown names.)
func validateRecord(rec record) error {
	switch rec.Op {
	case opDel:
		if rec.ID == "" {
			return errors.New("del record without id")
		}
	case opCreate, opBegin, opFinish, opCancel, opCancelReq, opRequeue, opPut:
		if rec.Run == nil || rec.Run.ID == "" {
			return fmt.Errorf("%s record without run snapshot", rec.Op)
		}
	default:
		return fmt.Errorf("unknown record op %q", rec.Op)
	}
	return nil
}

// encodeFrame appends the framed encoding of rec to buf.
func encodeFrame(buf []byte, rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("wal: encoding record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return buf, fmt.Errorf("wal: record payload %d bytes exceeds cap %d", len(payload), maxRecordBytes)
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...), nil
}

func segmentName(seq uint64) string  { return fmt.Sprintf("wal-%016d.log", seq) }
func snapshotName(seq uint64) string { return fmt.Sprintf("snapshot-%016d.log", seq) }

// scanDir lists snapshot and segment sequence numbers in dir, each sorted
// ascending.
func scanDir(dir string) (snaps, segs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: scanning data dir: %w", err)
	}
	parse := func(name, prefix string) (uint64, bool) {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".log") {
			return 0, false
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".log")
		seq, err := strconv.ParseUint(mid, 10, 64)
		if err != nil {
			return 0, false
		}
		return seq, true
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parse(e.Name(), "snapshot-"); ok {
			snaps = append(snaps, seq)
		} else if seq, ok := parse(e.Name(), "wal-"); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return snaps, segs, nil
}

// openSegment starts a fresh active segment. Callers hold mu (or are still
// single-threaded in Open).
func (s *Store) openSegment() error {
	seq := s.nextSeq
	s.nextSeq++
	f, err := os.OpenFile(filepath.Join(s.dir, segmentName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	s.seg = f
	s.segBytes = 0
	return nil
}

// append writes one record to the active segment, rotating and compacting
// as thresholds demand. Callers hold mu.
func (s *Store) append(rec record) error {
	if s.closed {
		return errors.New("wal: store is closed")
	}
	buf, err := encodeFrame(nil, rec)
	if err != nil {
		return err
	}
	if _, err := s.seg.Write(buf); err != nil {
		return fmt.Errorf("wal: appending record: %w", err)
	}
	if s.opts.Fsync {
		t0 := time.Now()
		if err := s.seg.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		s.met.fsyncs.Inc()
		s.met.fsyncSeconds.Observe(time.Since(t0).Seconds())
	}
	s.segBytes += int64(len(buf))
	s.appended++
	s.met.appends.Inc()
	s.met.appendedBytes.Add(float64(len(buf)))
	if s.opts.CompactThreshold > 0 && s.appended >= s.opts.CompactThreshold {
		if err := s.compact(); err != nil {
			// Compaction failure is not data loss — the log is intact, just
			// longer than we'd like. Log and carry on.
			log.Printf("wal: compaction failed (log keeps growing until it succeeds): %v", err)
		}
		return nil
	}
	if s.segBytes >= s.opts.SegmentMaxBytes {
		if err := s.rotate(); err != nil {
			log.Printf("wal: segment rotation failed (segment keeps growing until it succeeds): %v", err)
		}
	}
	return nil
}

// rotate seals the active segment and starts a new one. Callers hold mu.
func (s *Store) rotate() error {
	if err := s.seg.Sync(); err != nil {
		return fmt.Errorf("wal: syncing sealed segment: %w", err)
	}
	if err := s.seg.Close(); err != nil {
		return fmt.Errorf("wal: closing sealed segment: %w", err)
	}
	s.met.rotations.Inc()
	return s.openSegment()
}

// compact writes the entire surviving state — terminal history plus any
// live runs — into a snapshot file and removes every older segment and
// snapshot. The snapshot is staged in a temp file, fsynced, then renamed,
// so a crash at any point leaves either the old chain or the new snapshot
// fully intact. Callers hold mu.
func (s *Store) compact() error {
	t0 := time.Now()
	snapSeq := s.nextSeq
	s.nextSeq++

	runs := s.mem.List()
	var buf []byte
	for i := range runs {
		var err error
		if buf, err = encodeFrame(buf, record{Op: opPut, Run: &runs[i]}); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: staging snapshot: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, snapshotName(snapSeq))); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: installing snapshot: %w", err)
	}

	// The snapshot is durable; everything older is redundant. Removal
	// failures are tolerable (replay skips files at or below the snapshot's
	// sequence) — try again next compaction.
	snaps, segs, err := scanDir(s.dir)
	if err == nil {
		for _, seq := range snaps {
			if seq < snapSeq {
				os.Remove(filepath.Join(s.dir, snapshotName(seq)))
			}
		}
		for _, seq := range segs {
			if seq < snapSeq {
				os.Remove(filepath.Join(s.dir, segmentName(seq)))
			}
		}
	}

	// The old active segment's sequence number is below snapSeq, so it was
	// just removed out from under its handle; swap in a fresh one.
	s.seg.Close()
	if dropped := s.appended - len(runs); dropped > 0 {
		s.met.reclaimed.Add(float64(dropped))
	}
	s.appended = 0
	s.met.compactions.Inc()
	s.met.compactSecs.Observe(time.Since(t0).Seconds())
	return s.openSegment()
}

// Create registers a queued run, logging it before the ID escapes. If the
// log write fails the in-memory entry is rolled back, so a run the WAL
// never heard of can never be observed.
func (s *Store) Create(spec run.Spec) (run.Run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, err := s.mem.Create(spec)
	if err != nil {
		return run.Run{}, err
	}
	if err := s.append(record{Op: opCreate, Run: &r}); err != nil {
		s.mem.Delete(r.ID)
		return run.Run{}, err
	}
	return r, nil
}

// Begin transitions queued → running (see run.Store). The transition is
// applied in memory first and then logged; a log failure is returned but
// the in-memory transition stands — memory is the source of truth while
// the process lives, and the next compaction re-syncs the log.
func (s *Store) Begin(id string, dispatchedAt time.Time, cancel context.CancelFunc) (run.Run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, err := s.mem.Begin(id, dispatchedAt, cancel)
	if err != nil {
		return r, err
	}
	return r, s.append(record{Op: opBegin, Run: &r})
}

// Finish transitions running → terminal (see run.Store).
func (s *Store) Finish(id string, result *run.Result, runErr error) (run.Run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, err := s.mem.Finish(id, result, runErr)
	if err != nil {
		return r, err
	}
	return r, s.append(record{Op: opFinish, Run: &r})
}

// Cancel requests cancellation (see run.Store). A queued → cancelled
// transition is logged terminally; a cancel acknowledged on a running run
// is logged as a cancel-request record, so that if the process dies before
// the dispatcher records the terminal outcome, recovery finishes the
// cancellation instead of resurrecting and re-executing an acknowledged-
// cancelled run.
func (s *Store) Cancel(id string) (run.Run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, err := s.mem.Cancel(id)
	if err != nil {
		return r, err
	}
	if r.State == run.StateCancelled && r.StartedAt == nil {
		return r, s.append(record{Op: opCancel, Run: &r})
	}
	if r.State == run.StateRunning {
		return r, s.append(record{Op: opCancelReq, Run: &r})
	}
	return r, nil
}

// Delete removes a run entirely (see run.Store).
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.mem.Get(id); err != nil {
		return nil // nothing tracked, nothing to log
	}
	if err := s.mem.Delete(id); err != nil {
		return err
	}
	return s.append(record{Op: opDel, ID: id})
}

// EvictTerminal evicts oldest-finished terminal runs past keep, logging a
// deletion per victim so replay converges to the same bounded history.
func (s *Store) EvictTerminal(keep int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := s.mem.EvictTerminalIDs(keep)
	for _, id := range ids {
		if err := s.append(record{Op: opDel, ID: id}); err != nil {
			// The run is gone from memory but not the log: after a crash it
			// would be resurrected until the next successful eviction or
			// compaction trims it again. Harmless beyond disk space.
			log.Printf("wal: logging eviction of %s: %v", id, err)
		}
	}
	return len(ids)
}

// Get returns a snapshot of one run (read-only; served from memory).
func (s *Store) Get(id string) (run.Run, error) { return s.mem.Get(id) }

// List returns all runs in (CreatedAt, ID) order (read-only).
func (s *Store) List() []run.Run { return s.mem.List() }

// Len returns the number of tracked runs (read-only).
func (s *Store) Len() int { return s.mem.Len() }

// CountByState returns per-state run counts (read-only).
func (s *Store) CountByState() map[run.State]int { return s.mem.CountByState() }

// Await blocks until the run is terminal or ctx is done (read-only; parks
// on the in-memory done channel, no log involvement).
func (s *Store) Await(ctx context.Context, id string) (run.Run, error) {
	return s.mem.Await(ctx, id)
}

// Close seals the active segment. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.seg.Sync(); err != nil {
		s.seg.Close()
		return fmt.Errorf("wal: syncing on close: %w", err)
	}
	return s.seg.Close()
}
