// Package wal is the durable run.Store implementation: an append-only
// write-ahead log of run state transitions layered over the in-memory
// MemStore. Reads are served from memory; every mutation is recorded to
// disk before the call returns, so a crashed dagd rebuilds its full run
// history — and re-admits interrupted work — by replaying the log on boot.
//
// # On-disk layout
//
// The log is sharded by run-ID hash: a data directory holds a MANIFEST file
// pinning the shard count, plus one directory per shard:
//
//	MANIFEST   {"version":1,"shards":N} — the layout contract
//	shard-00/  ... shard-<N-1>/
//
// Every record for a run lands in shardIndex(id) = fnv32a(id) mod N, so a
// run's full history lives in exactly one shard and per-shard replay order
// is a total order for that run. Shards are fully independent — each has
// its own mutex, active segment, rotation, group-commit batcher, and
// compaction cycle — so transitions for runs in different shards never
// contend. Because the routing depends on N, the manifest is load-bearing:
// opening an existing directory with a different shard count is refused
// with ErrShardCountMismatch rather than silently splitting run histories.
// A pre-shard (single-stream) layout is migrated in place on first open.
//
// Inside a shard, files follow the original single-stream format — both are
// sequences of identically framed records:
//
//	wal-<seq>.log      active/sealed log segments, one record per transition
//	snapshot-<seq>.log compacted baseline: one record per surviving run
//
// Each record is framed as
//
//	[4-byte big-endian payload length][4-byte big-endian CRC32 (IEEE) of payload][payload]
//
// where the payload is one JSON-encoded record: an op name plus either a
// full post-transition run snapshot ("create", "begin", "finish", "cancel",
// "requeue", "put") or a bare run ID ("del", written for evictions and
// deletes). Carrying the full snapshot makes replay trivially idempotent —
// the last record for an ID wins — and means a reordered or partially
// missing history still converges to a valid state.
//
// # Durability: group-commit fsync
//
// With Options.Fsync on, an append does not return until its record is on
// disk — but the fsync itself is batched per shard: every record that
// arrives while a sync is in flight joins the next batch and is covered by
// one fsync (bounded by Options.FsyncMaxDelay), so K concurrent appends
// cost ~1 fsync instead of K without weakening the contract. A lone append
// is never delayed. Compaction snapshots are always fsynced before old
// segments are removed, regardless of the Fsync setting.
//
// # Compaction: off the write path
//
// When a shard accumulates CompactThreshold records it compacts in a
// background goroutine: the shard lock is held only long enough to swap in
// a fresh active segment; encoding and installing the snapshot (and
// deleting the superseded files) happen off-path, so the write path never
// stalls behind a snapshot of the store.
//
// # Replay and corruption policy
//
// Open replays every shard (concurrently): the highest-numbered snapshot,
// then every later segment in sequence order. A truncated or
// checksum-failing record in a shard's final (active-at-crash) segment is
// treated as a torn tail: that file is truncated at the last good record
// and recovery proceeds — a crash mid-append must not brick the store, and
// damage in one shard's tail never touches another shard. The same damage
// in any earlier file means real corruption (those files were sealed
// complete), and Open refuses to load rather than resurrect a partial
// history. Records that decode but fail validation (empty ID, unknown op)
// follow the same policy.
//
// # Recovery semantics
//
// After replay, terminal runs are restored as immutable history. Runs that
// were queued or running at crash time are re-admitted: their state is
// reset to queued (StartedAt cleared, Restarts incremented) and a "requeue"
// record logs the interrupted → queued transition. The recovered queued
// runs are returned from Open, oldest first, so the caller can hand them
// back to a dispatcher. A to-be-requeued run whose spec no longer passes
// validation (possible only if the log was hand-edited — CRC protects
// against accidental damage) is marked failed instead of re-executed.
package wal

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/metrics"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/tenant"
)

// Options configures a WAL store.
type Options struct {
	// Fsync makes every acknowledged transition durable against power loss,
	// not just process crash: an append does not return until its record is
	// fsynced. Off by default — the OS page cache survives SIGKILL. Syncs
	// are group-committed per shard (see FsyncMaxDelay), so the cost under
	// concurrent load is ~1 fsync per batch, not per record. Compaction
	// snapshots are always fsynced before old segments are removed,
	// regardless of this setting.
	Fsync bool
	// FsyncMaxDelay bounds how long a group-commit batch may keep
	// accumulating once more than one append is waiting: a burst coalesces
	// into one fsync, a lone append is synced immediately. Zero means
	// DefaultFsyncMaxDelay (2ms); negative disables coalescing (every batch
	// is synced as soon as the committer gets to it).
	FsyncMaxDelay time.Duration
	// Shards is the number of independent log shards. Zero adopts the count
	// pinned in the data dir's manifest (or DefaultShards for a fresh dir).
	// Non-zero must match an existing manifest: run IDs are routed to shards
	// by hash mod Shards, so reopening with a different count is refused
	// (ErrShardCountMismatch) rather than splitting run histories.
	Shards int
	// CompactThreshold is how many records may be appended to one shard (or
	// replayed from its segments on boot) before that shard compacts in the
	// background: all its surviving runs — mostly terminal history — are
	// written into a snapshot file and the older segments deleted. Zero
	// means 4096; negative disables compaction.
	CompactThreshold int
	// SegmentMaxBytes rotates a shard's active segment once it grows past
	// this size, bounding the largest file replay must buffer. Zero means 8MB.
	SegmentMaxBytes int64
	// Metrics receives the store's instrumentation (append/fsync volume and
	// latency, commit batch sizes, rotations, compactions), all labelled by
	// shard. Nil disables it.
	Metrics *metrics.Registry

	// syncEveryRecord restores the pre-group-commit behavior of one inline
	// fsync per appended record. Test-only: it exists so BenchmarkWALAppend
	// can measure group commit against the baseline it replaced.
	syncEveryRecord bool
}

func (o Options) withDefaults() Options {
	if o.CompactThreshold == 0 {
		o.CompactThreshold = 4096
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 8 << 20
	}
	if o.FsyncMaxDelay == 0 {
		o.FsyncMaxDelay = DefaultFsyncMaxDelay
	}
	return o
}

// Store is the WAL-backed run.Store. The embedded MemStore answers every
// read; each shard's mutex serializes mutations for the runs it owns, so
// the record order on disk always matches the order transitions were
// applied in memory (without it, two racing transitions on one run could
// log in the opposite order and replay to the wrong final state) — while
// runs in different shards proceed in parallel.
type Store struct {
	dir    string
	opts   Options
	mem    *run.MemStore
	met    walInstruments
	shards []*walShard
}

var _ run.Store = (*Store)(nil)

// Open loads (or initializes) the WAL in dir and returns the store plus the
// recovered queued runs — every run that was queued or running at crash
// time, already reset to queued — oldest first, for the caller to re-admit
// to its dispatcher.
func Open(dir string, opts Options) (*Store, []run.Run, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating data dir: %w", err)
	}
	n, err := resolveShards(dir, opts.Shards)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		mem:  run.NewMemStore(),
		met:  newWALInstruments(opts.Metrics),
	}
	s.shards = make([]*walShard, n)
	for i := range s.shards {
		if s.shards[i], err = newShard(s, i); err != nil {
			return nil, nil, err
		}
	}

	// Replay all shards concurrently; runs never straddle shards, so the
	// per-shard states merge by plain union.
	type shardLoad struct {
		state  *replayState
		maxSeq uint64
		err    error
	}
	loads := make([]shardLoad, n)
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, maxSeq, err := loadChain(s.shards[i].dir)
			loads[i] = shardLoad{st, maxSeq, err}
		}(i)
	}
	wg.Wait()
	replayed := newReplayState()
	for i, ld := range loads {
		if ld.err != nil {
			return nil, nil, fmt.Errorf("wal: replaying %s: %w", shardDirName(i), ld.err)
		}
		s.shards[i].nextSeq = ld.maxSeq + 1
		s.shards[i].appended = len(ld.state.runs)
		for id, r := range ld.state.runs {
			replayed.runs[id] = r
		}
		for id := range ld.state.cancelRequested {
			replayed.cancelRequested[id] = true
		}
	}

	// Restore terminal history first, then convert interrupted runs.
	// repaired collects runs that recovery itself drives to a terminal
	// state (crash-orphaned cancellations, specs failing re-validation);
	// their synthesized snapshots are logged below as opPut.
	var recovered, repaired []run.Run
	for _, r := range replayed.runs {
		// Records written before tenancy existed carry no attribution;
		// replay them as the catch-all default tenant so history filters
		// and re-admission both have a real tenant to point at.
		if r.Spec.Tenant == "" {
			r.Spec.Tenant = tenant.Default
		}
		if r.State.Terminal() {
			s.mem.Restore(r)
			continue
		}
		if replayed.cancelRequested[r.ID] {
			// A cancel was acknowledged while this run was running, and the
			// process died before the dispatcher could record the terminal
			// outcome. Honoring the acknowledgement means finishing the
			// cancellation now, not re-executing the run.
			now := time.Now().Round(0)
			r.State = run.StateCancelled
			r.Error = "cancelled; the service restarted before the cancellation completed"
			r.FinishedAt = &now
			r.Result = nil
			run.RedactTerminalSpec(&r)
			repaired = append(repaired, r)
			s.mem.Restore(r)
			continue
		}
		// interrupted → queued: the process died before this run finished.
		r.State = run.StateQueued
		r.DispatchedAt = nil
		r.StartedAt = nil
		r.Result = nil
		r.Error = ""
		r.Restarts++
		if err := r.Spec.Validate(); err != nil {
			// Reachable when a newer dagd tightened admission bounds over
			// specs an older one logged (or the log was hand-edited — CRC
			// catches accidental damage): never re-execute a spec admission
			// would refuse now.
			now := time.Now().Round(0)
			r.State = run.StateFailed
			r.Error = fmt.Sprintf("spec failed re-validation during crash recovery: %v", err)
			r.FinishedAt = &now
			run.RedactTerminalSpec(&r)
			repaired = append(repaired, r)
			s.mem.Restore(r)
			continue
		}
		s.mem.Restore(r)
		recovered = append(recovered, r)
	}
	sort.Slice(recovered, func(i, j int) bool { return run.CompareRuns(recovered[i], recovered[j]) < 0 })

	for _, sh := range s.shards {
		if err := sh.openSegmentLocked(); err != nil {
			for _, sh2 := range s.shards {
				if sh2.seg != nil {
					sh2.seg.Close()
				}
			}
			return nil, nil, err
		}
	}
	// Committers start only after every shard has an active segment; sh.gc
	// is assigned together with its goroutine so close never waits on a
	// committer that was never started.
	if opts.Fsync && !opts.syncEveryRecord {
		for _, sh := range s.shards {
			sh.gc = newGroupCommit(opts.FsyncMaxDelay)
			go sh.gc.run(sh)
		}
	}

	// Log the recovery transitions themselves, so a second crash before the
	// next compaction still replays to the re-admitted (or repaired) state.
	logRecovery := func(rec record) error {
		sh := s.shardFor(rec.Run.ID)
		sh.mu.Lock()
		ticket, err := sh.appendLocked(rec)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
		return sh.waitDurable(ticket)
	}
	for _, r := range recovered {
		r := r
		if err := logRecovery(record{Op: opRequeue, Run: &r}); err != nil {
			s.Close()
			return nil, nil, err
		}
	}
	for _, r := range repaired {
		r := r
		if err := logRecovery(record{Op: opPut, Run: &r}); err != nil {
			s.Close()
			return nil, nil, err
		}
	}
	return s, recovered, nil
}

// shardFor routes a run ID to its owning shard.
func (s *Store) shardFor(id string) *walShard {
	return s.shards[shardIndex(id, len(s.shards))]
}

// Shards returns the store's shard count (pinned by the data dir manifest).
func (s *Store) Shards() int { return len(s.shards) }

// Create registers a queued run, logging it before the ID escapes. If the
// log write or its sync fails the in-memory entry is rolled back, so a run
// the WAL never heard of can never be observed.
func (s *Store) Create(spec run.Spec) (run.Run, error) {
	r, err := s.mem.Create(spec)
	if err != nil {
		return run.Run{}, err
	}
	// The ID is fresh and unpublished, so nothing can race this run's log
	// order; the shard lock is needed only for the append itself.
	sh := s.shardFor(r.ID)
	sh.mu.Lock()
	ticket, err := sh.appendLocked(record{Op: opCreate, Run: &r})
	sh.mu.Unlock()
	if err == nil {
		err = sh.waitDurable(ticket)
	}
	if err != nil {
		s.mem.Delete(r.ID)
		return run.Run{}, err
	}
	return r, nil
}

// Begin transitions queued → running (see run.Store). The transition is
// applied in memory and logged under the run's shard lock — so the record
// order on disk matches memory order — then awaited durable outside it; a
// log failure is returned but the in-memory transition stands — memory is
// the source of truth while the process lives, and the next compaction
// re-syncs the log.
func (s *Store) Begin(id string, dispatchedAt time.Time, worker string, cancel context.CancelFunc) (run.Run, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	r, err := s.mem.Begin(id, dispatchedAt, worker, cancel)
	if err != nil {
		sh.mu.Unlock()
		return r, err
	}
	ticket, err := sh.appendLocked(record{Op: opBegin, Run: &r})
	sh.mu.Unlock()
	if err != nil {
		return r, err
	}
	return r, sh.waitDurable(ticket)
}

// Requeue moves a running run back to queued (see run.Store) — the live
// lease-expiry path. The same opRequeue record crash recovery writes is
// appended, carrying the post-requeue snapshot (Restarts incremented,
// execution fields cleared), so a crash after a lease expiry replays the
// run as queued, not running. Any cancel-request flag is dropped with the
// lease: a cancel acknowledged against the dead worker's attempt is
// superseded by the re-dispatch (callers expire cancel-requested leases as
// cancelled instead of requeueing them).
func (s *Store) Requeue(id string) (run.Run, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	r, err := s.mem.Requeue(id)
	if err != nil {
		sh.mu.Unlock()
		return r, err
	}
	delete(sh.cancelReq, id)
	ticket, err := sh.appendLocked(record{Op: opRequeue, Run: &r})
	sh.mu.Unlock()
	if err != nil {
		return r, err
	}
	return r, sh.waitDurable(ticket)
}

// Finish transitions running → terminal (see run.Store).
func (s *Store) Finish(id string, result *run.Result, runErr error) (run.Run, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	r, err := s.mem.Finish(id, result, runErr)
	if err != nil {
		sh.mu.Unlock()
		return r, err
	}
	delete(sh.cancelReq, id)
	ticket, err := sh.appendLocked(record{Op: opFinish, Run: &r})
	sh.mu.Unlock()
	if err != nil {
		return r, err
	}
	return r, sh.waitDurable(ticket)
}

// Cancel requests cancellation (see run.Store). A queued → cancelled
// transition is logged terminally; a cancel acknowledged on a running run
// is logged as a cancel-request record, so that if the process dies before
// the dispatcher records the terminal outcome, recovery finishes the
// cancellation instead of resurrecting and re-executing an acknowledged-
// cancelled run.
func (s *Store) Cancel(id string) (run.Run, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	r, err := s.mem.Cancel(id)
	if err != nil {
		sh.mu.Unlock()
		return r, err
	}
	var rec record
	switch {
	case r.State == run.StateCancelled && r.StartedAt == nil:
		rec = record{Op: opCancel, Run: &r}
	case r.State == run.StateRunning:
		rec = record{Op: opCancelReq, Run: &r}
		sh.cancelReq[id] = true
	default:
		sh.mu.Unlock()
		return r, nil
	}
	ticket, err := sh.appendLocked(rec)
	sh.mu.Unlock()
	if err != nil {
		return r, err
	}
	return r, sh.waitDurable(ticket)
}

// Delete removes a run entirely (see run.Store).
func (s *Store) Delete(id string) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if _, err := s.mem.Get(id); err != nil {
		sh.mu.Unlock()
		return nil // nothing tracked, nothing to log
	}
	if err := s.mem.Delete(id); err != nil {
		sh.mu.Unlock()
		return err
	}
	delete(sh.cancelReq, id)
	ticket, err := sh.appendLocked(record{Op: opDel, ID: id})
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	return sh.waitDurable(ticket)
}

// EvictTerminal evicts oldest-finished terminal runs past keep, logging a
// deletion per victim so replay converges to the same bounded history. The
// deletions are appended per shard and awaited once per shard (group commit
// covers a whole batch with one fsync).
func (s *Store) EvictTerminal(keep int) int {
	ids := s.mem.EvictTerminalIDs(keep)
	if len(ids) == 0 {
		return 0
	}
	perShard := make(map[*walShard][]string)
	for _, id := range ids {
		sh := s.shardFor(id)
		perShard[sh] = append(perShard[sh], id)
	}
	for sh, victims := range perShard {
		var last uint64
		sh.mu.Lock()
		for _, id := range victims {
			delete(sh.cancelReq, id)
			ticket, err := sh.appendLocked(record{Op: opDel, ID: id})
			if err != nil {
				// The run is gone from memory but not the log: after a crash
				// it would be resurrected until the next successful eviction
				// or compaction trims it again. Harmless beyond disk space.
				log.Printf("wal: logging eviction of %s: %v", id, err)
				continue
			}
			if ticket > last {
				last = ticket
			}
		}
		sh.mu.Unlock()
		if err := sh.waitDurable(last); err != nil {
			log.Printf("wal: syncing evictions in %s: %v", shardDirName(sh.index), err)
		}
	}
	return len(ids)
}

// Get returns a snapshot of one run (read-only; served from memory).
func (s *Store) Get(id string) (run.Run, error) { return s.mem.Get(id) }

// List returns all runs in (CreatedAt, ID) order (read-only).
func (s *Store) List() []run.Run { return s.mem.List() }

// Len returns the number of tracked runs (read-only).
func (s *Store) Len() int { return s.mem.Len() }

// CountByState returns per-state run counts (read-only).
func (s *Store) CountByState() map[run.State]int { return s.mem.CountByState() }

// Await blocks until the run is terminal or ctx is done (read-only; parks
// on the in-memory done channel, no log involvement).
func (s *Store) Await(ctx context.Context, id string) (run.Run, error) {
	return s.mem.Await(ctx, id)
}

// Close seals every shard: stops the committers (draining a final batch),
// waits out in-flight compactions, and syncs + closes the active segments.
// The store must not be used afterwards.
func (s *Store) Close() error {
	var firstErr error
	for _, sh := range s.shards {
		if err := sh.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
