package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

// fuzzSegment builds a valid segment: create/begin/finish for one run plus
// a create for a second, the kind of tail a crash leaves behind.
func fuzzSegment(t interface{ Fatalf(string, ...any) }) []byte {
	now := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	started := now.Add(time.Second)
	finishedAt := now.Add(2 * time.Second)
	spec := run.Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: 3, Width: 2}}
	a := run.Run{ID: "r000001-aaaaaaaa", Spec: spec, State: run.StateQueued, CreatedAt: now}
	var buf []byte
	var err error
	appendRec := func(rec record) {
		if buf, err = encodeFrame(buf, rec); err != nil {
			t.Fatalf("encodeFrame: %v", err)
		}
	}
	appendRec(record{Op: opCreate, Run: &a})
	a.State = run.StateRunning
	a.StartedAt = &started
	appendRec(record{Op: opBegin, Run: &a})
	a.State = run.StateSucceeded
	a.FinishedAt = &finishedAt
	a.Result = &run.Result{Nodes: 8, Match: true}
	appendRec(record{Op: opFinish, Run: &a})
	b := run.Run{ID: "r000002-bbbbbbbb", Spec: spec, State: run.StateQueued, CreatedAt: now.Add(3 * time.Second)}
	appendRec(record{Op: opCreate, Run: &b})
	return buf
}

// FuzzWALReplay throws arbitrary bytes at the replay path, both as the
// final (active-at-crash) segment and as a sealed one shadowed by a valid
// later segment, and pins the corruption contract:
//
//   - replay never panics;
//   - a damaged final segment is safely truncated: Open succeeds and every
//     surviving run is structurally sound;
//   - a damaged sealed segment is rejected: Open either refuses (the
//     common case) or — if the mutation kept every frame intact — loads
//     only structurally sound runs. Corrupt bytes never resurrect a run
//     with an empty ID, an unknown state, or a half-applied transition.
func FuzzWALReplay(f *testing.F) {
	valid := fuzzSegment(f)
	f.Add(valid, true)
	f.Add(valid, false)
	// Bit flips at interesting offsets: length prefix, CRC, payload.
	for _, off := range []int{0, 2, 5, 9, 20, len(valid) / 2, len(valid) - 1} {
		mutated := append([]byte(nil), valid...)
		mutated[off] ^= 0x40
		f.Add(mutated, true)
		f.Add(mutated, false)
	}
	// Truncations: mid-header and mid-payload.
	f.Add(valid[:3], true)
	f.Add(valid[:len(valid)-5], true)
	f.Add(valid[:len(valid)-5], false)
	f.Add([]byte{}, true)
	f.Add([]byte("not a wal at all"), false)

	f.Fuzz(func(t *testing.T, data []byte, final bool) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if !final {
			// A later, valid segment makes the fuzzed file a sealed one.
			if err := os.WriteFile(filepath.Join(dir, segmentName(2)), fuzzSegment(t), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s, recovered, err := Open(dir, Options{})
		if err != nil {
			if final {
				// The final segment's damage must always be absorbed by
				// truncation, never refused.
				t.Fatalf("Open rejected a final-segment log instead of truncating: %v", err)
			}
			return // sealed-segment corruption: refusal is the contract
		}
		defer s.Close()

		// Whatever survived must be structurally sound.
		for _, r := range s.List() {
			if r.ID == "" {
				t.Fatal("replay resurrected a run with an empty ID")
			}
			if r.State.String() == "" || r.CreatedAt.IsZero() && r.State.Terminal() && r.FinishedAt == nil {
				t.Fatalf("replay resurrected malformed run %+v", r)
			}
			// After recovery no run may still claim to be running: it
			// either replayed terminal or was re-admitted as queued.
			if r.State == run.StateRunning {
				t.Fatalf("run %s still running after recovery", r.ID)
			}
		}
		for _, r := range recovered {
			if r.State != run.StateQueued || r.Restarts < 1 {
				t.Fatalf("recovered run %+v not re-admitted as queued", r)
			}
			// Re-admitted specs must pass the same admission check the API
			// enforces — recovery must not smuggle invalid work to a
			// dispatcher.
			if err := r.Spec.Validate(); err != nil {
				t.Fatalf("recovered run %s has unvalidatable spec: %v", r.ID, err)
			}
		}
	})
}
