package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

// fuzzShards is the shard count the fuzz layout is built with; small enough
// that the hand-picked run IDs below cover both shards.
const fuzzShards = 2

// fuzzSegment builds a valid segment: create/begin/finish for one run plus
// a create for a second, the kind of tail a crash leaves behind. Both IDs
// hash to the same shard under fuzzShards, so the whole segment is a legal
// single-shard chain.
func fuzzSegment(t interface{ Fatalf(string, ...any) }) []byte {
	now := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	started := now.Add(time.Second)
	finishedAt := now.Add(2 * time.Second)
	spec := run.Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: 3, Width: 2}}
	a := run.Run{ID: fuzzRunA, Spec: spec, State: run.StateQueued, CreatedAt: now}
	var buf []byte
	var err error
	appendRec := func(rec record) {
		if buf, err = encodeFrame(buf, rec); err != nil {
			t.Fatalf("encodeFrame: %v", err)
		}
	}
	appendRec(record{Op: opCreate, Run: &a})
	a.State = run.StateRunning
	a.StartedAt = &started
	appendRec(record{Op: opBegin, Run: &a})
	a.State = run.StateSucceeded
	a.FinishedAt = &finishedAt
	a.Result = &run.Result{Nodes: 8, Match: true}
	appendRec(record{Op: opFinish, Run: &a})
	b := run.Run{ID: fuzzRunB, Spec: spec, State: run.StateQueued, CreatedAt: now.Add(3 * time.Second)}
	appendRec(record{Op: opCreate, Run: &b})
	return buf
}

// fuzzBystander builds a one-record segment holding a terminal run whose ID
// hashes to the other shard — the canary that shard-local damage must never
// touch.
func fuzzBystander(t interface{ Fatalf(string, ...any) }) []byte {
	now := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	finishedAt := now.Add(time.Second)
	spec := run.Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: 3, Width: 2}}
	c := run.Run{
		ID: fuzzRunOther, Spec: spec, State: run.StateSucceeded,
		CreatedAt: now, FinishedAt: &finishedAt,
		Result: &run.Result{Nodes: 8, Match: true},
	}
	buf, err := encodeFrame(nil, record{Op: opPut, Run: &c})
	if err != nil {
		t.Fatalf("encodeFrame: %v", err)
	}
	return buf
}

// The fuzz layout's run IDs. fuzzRunA and fuzzRunB share a shard;
// fuzzRunOther lives in the other one. Pinned by TestFuzzShardRouting so a
// change to shardIndex cannot silently turn the isolation check vacuous.
const (
	fuzzRunA     = "r000001-aaaaaaaa"
	fuzzRunB     = "r000003-cccccccc"
	fuzzRunOther = "r000002-bbbbbbbb"
)

func TestFuzzShardRouting(t *testing.T) {
	sa, sb := shardIndex(fuzzRunA, fuzzShards), shardIndex(fuzzRunB, fuzzShards)
	so := shardIndex(fuzzRunOther, fuzzShards)
	if sa != sb {
		t.Fatalf("fuzzRunA and fuzzRunB must share a shard, got %d and %d", sa, sb)
	}
	if so == sa {
		t.Fatalf("fuzzRunOther must live in the other shard, got %d for both", so)
	}
}

// FuzzWALReplay throws arbitrary bytes at the sharded replay path, both as
// a shard's final (active-at-crash) segment and as a sealed one shadowed by
// a valid later segment, and pins the corruption contract:
//
//   - replay never panics;
//   - a damaged final segment is safely truncated — and only in its own
//     shard: Open succeeds, every surviving run is structurally sound, and
//     the bystander run in the other shard is untouched;
//   - a damaged sealed segment is rejected: Open either refuses (the
//     common case) or — if the mutation kept every frame intact — loads
//     only structurally sound runs. Corrupt bytes never resurrect a run
//     with an empty ID, an unknown state, or a half-applied transition.
func FuzzWALReplay(f *testing.F) {
	valid := fuzzSegment(f)
	f.Add(valid, true)
	f.Add(valid, false)
	// Bit flips at interesting offsets: length prefix, CRC, payload.
	for _, off := range []int{0, 2, 5, 9, 20, len(valid) / 2, len(valid) - 1} {
		mutated := append([]byte(nil), valid...)
		mutated[off] ^= 0x40
		f.Add(mutated, true)
		f.Add(mutated, false)
	}
	// Truncations: mid-header and mid-payload.
	f.Add(valid[:3], true)
	f.Add(valid[:len(valid)-5], true)
	f.Add(valid[:len(valid)-5], false)
	f.Add([]byte{}, true)
	f.Add([]byte("not a wal at all"), false)

	f.Fuzz(func(t *testing.T, data []byte, final bool) {
		dir := t.TempDir()
		if err := writeManifest(dir, fuzzShards); err != nil {
			t.Fatal(err)
		}
		fuzzed := filepath.Join(dir, shardDirName(shardIndex(fuzzRunA, fuzzShards)))
		other := filepath.Join(dir, shardDirName(shardIndex(fuzzRunOther, fuzzShards)))
		for _, d := range []string{fuzzed, other} {
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(fuzzed, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if !final {
			// A later, valid segment makes the fuzzed file a sealed one.
			if err := os.WriteFile(filepath.Join(fuzzed, segmentName(2)), fuzzSegment(t), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(other, segmentName(1)), fuzzBystander(t), 0o644); err != nil {
			t.Fatal(err)
		}

		s, recovered, err := Open(dir, Options{})
		if err != nil {
			if final {
				// The final segment's damage must always be absorbed by
				// truncation, never refused.
				t.Fatalf("Open rejected a final-segment log instead of truncating: %v", err)
			}
			return // sealed-segment corruption: refusal is the contract
		}
		defer s.Close()

		// Damage in one shard never leaks into another: the bystander run
		// replays intact no matter what the fuzzed shard held.
		if got, err := s.Get(fuzzRunOther); err != nil || got.State != run.StateSucceeded {
			t.Fatalf("bystander run in the undamaged shard = %+v, %v; want succeeded", got, err)
		}

		// Whatever survived must be structurally sound.
		for _, r := range s.List() {
			if r.ID == "" {
				t.Fatal("replay resurrected a run with an empty ID")
			}
			if r.State.String() == "" || r.CreatedAt.IsZero() && r.State.Terminal() && r.FinishedAt == nil {
				t.Fatalf("replay resurrected malformed run %+v", r)
			}
			// After recovery no run may still claim to be running: it
			// either replayed terminal or was re-admitted as queued.
			if r.State == run.StateRunning {
				t.Fatalf("run %s still running after recovery", r.ID)
			}
		}
		for _, r := range recovered {
			if r.State != run.StateQueued || r.Restarts < 1 {
				t.Fatalf("recovered run %+v not re-admitted as queued", r)
			}
			// Re-admitted specs must pass the same admission check the API
			// enforces — recovery must not smuggle invalid work to a
			// dispatcher.
			if err := r.Spec.Validate(); err != nil {
				t.Fatalf("recovered run %s has unvalidatable spec: %v", r.ID, err)
			}
		}
	})
}
