package wal_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/store/wal"
)

// TestShardLayout pins the on-disk contract of a sharded data dir: a
// MANIFEST at the root, shard-NN directories holding every log file, and a
// restart that adopts the pinned count when asked for none.
func TestShardLayout(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{Shards: 4})
	if got := s.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	for i := 0; i < 32; i++ {
		r := mustCreate(t, s, pipelineSpec())
		drive(t, s, r.ID, nil)
	}
	s.Close()

	if _, err := os.Stat(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatalf("no MANIFEST at the data dir root: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%02d", i))); err != nil {
			t.Errorf("shard dir %02d missing: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() && e.Name() != "MANIFEST" {
			t.Errorf("unexpected root-level file %s (log files belong inside shard dirs)", e.Name())
		}
	}

	s2, recovered := mustOpen(t, dir, wal.Options{}) // 0 = adopt the manifest
	defer s2.Close()
	if got := s2.Shards(); got != 4 {
		t.Errorf("Shards() after adopting manifest = %d, want 4", got)
	}
	if len(recovered) != 0 {
		t.Errorf("recovered %d runs, want 0 (all terminal)", len(recovered))
	}
	if got := s2.CountByState()[run.StateSucceeded]; got != 32 {
		t.Errorf("succeeded after sharded replay = %d, want 32", got)
	}
}

// TestShardCountMismatchFailsClosed pins that reopening a data dir with a
// different -wal-shards refuses to load: run IDs are routed by hash mod the
// shard count, so a silent re-open would split each run's history.
func TestShardCountMismatchFailsClosed(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{Shards: 2})
	r := mustCreate(t, s, pipelineSpec())
	drive(t, s, r.ID, nil)
	s.Close()

	_, _, err := wal.Open(dir, wal.Options{Shards: 3})
	if !errors.Is(err, wal.ErrShardCountMismatch) {
		t.Fatalf("Open with mismatched count = %v, want ErrShardCountMismatch", err)
	}

	// Same count, or none at all, still loads — and the data is intact.
	for _, shards := range []int{0, 2} {
		s2, _ := mustOpen(t, dir, wal.Options{Shards: shards})
		if got := s2.Shards(); got != 2 {
			t.Errorf("Shards()=%d with Shards:%d requested, want 2", got, shards)
		}
		if got, err := s2.Get(r.ID); err != nil || got.State != run.StateSucceeded {
			t.Errorf("run lost under Shards:%d: %+v, %v", shards, got, err)
		}
		s2.Close()
	}
}

// TestTornTailIsolatedToShard damages the active-at-crash tail of every
// shard and checks the blast radius: each shard truncates its own garbage
// and every complete record — in every shard — survives.
func TestTornTailIsolatedToShard(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{Shards: 4})
	var ids []string
	for i := 0; i < 24; i++ {
		r := mustCreate(t, s, pipelineSpec())
		drive(t, s, r.ID, nil)
		ids = append(ids, r.ID)
	}
	s.Close()

	torn := 0
	for i := 0; i < 4; i++ {
		sdir := filepath.Join(dir, fmt.Sprintf("shard-%02d", i))
		segs, _ := listWALFiles(t, sdir)
		if len(segs) == 0 {
			continue
		}
		active := filepath.Join(sdir, segs[len(segs)-1])
		f, err := os.OpenFile(active, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		// A torn frame: a header claiming 1000 payload bytes, then only 5.
		if _, err := f.Write([]byte{0x00, 0x00, 0x03, 0xe8, 0xde, 0xad, 0xbe, 0xef, 'x', 'y', 'z', '!', '?'}); err != nil {
			t.Fatal(err)
		}
		f.Close()
		torn++
	}
	if torn < 2 {
		t.Fatalf("only %d shards held records; need at least 2 to prove isolation", torn)
	}

	s2, recovered := mustOpen(t, dir, wal.Options{})
	defer s2.Close()
	if len(recovered) != 0 {
		t.Errorf("recovered %d runs, want 0", len(recovered))
	}
	for _, id := range ids {
		if got, err := s2.Get(id); err != nil || got.State != run.StateSucceeded {
			t.Errorf("run %s lost to a torn tail in another shard: %+v, %v", id, got, err)
		}
	}
}

// TestGroupCommitConcurrentDurability hammers an fsync-on store from many
// goroutines and then replays it: every acknowledged transition must be on
// disk. This is the durability half of the group-commit contract (the
// batching half is the BenchmarkWALAppend numbers).
func TestGroupCommitConcurrentDurability(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{Fsync: true, Shards: 4})
	const workers, each = 16, 4
	idCh := make(chan string, workers*each)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r, err := s.Create(pipelineSpec())
				if err != nil {
					t.Errorf("Create: %v", err)
					return
				}
				if _, err := s.Begin(r.ID, time.Now(), "", func() {}); err != nil {
					t.Errorf("Begin(%s): %v", r.ID, err)
					return
				}
				if _, err := s.Finish(r.ID, &run.Result{Nodes: 12, Match: true}, nil); err != nil {
					t.Errorf("Finish(%s): %v", r.ID, err)
					return
				}
				idCh <- r.ID
			}
		}()
	}
	wg.Wait()
	close(idCh)
	s.Close()

	s2, _ := mustOpen(t, dir, wal.Options{Fsync: true})
	defer s2.Close()
	n := 0
	for id := range idCh {
		n++
		if got, err := s2.Get(id); err != nil || got.State != run.StateSucceeded {
			t.Errorf("acknowledged run %s not durable: %+v, %v", id, got, err)
		}
	}
	if n != workers*each {
		t.Errorf("drove %d runs, want %d", n, workers*each)
	}
}
