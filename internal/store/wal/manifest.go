package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// DefaultShards is the shard count for a freshly initialized data dir when
// Options.Shards is 0. Beyond the core count extra shards only add file
// handles; 8 keeps per-shard contention negligible on typical hosts while
// the manifest lets bigger deployments pin more.
const DefaultShards = 8

// MaxShards bounds the shard count: past this, per-shard batching degrades
// (each shard sees too few appends to group) and open-file pressure grows.
const MaxShards = 64

// ErrShardCountMismatch is returned by Open when the requested shard count
// disagrees with the one pinned in the data dir's manifest. Records are
// routed to shards by run-ID hash mod the shard count, so opening an
// existing layout with a different count would split each run's history
// across shards; the store fails closed instead.
var ErrShardCountMismatch = errors.New("wal: shard count mismatch")

// manifestName is the layout-pinning file at the data dir root.
const manifestName = "MANIFEST"

// manifest pins the facts replay cannot re-derive: the layout version and
// the shard count every run ID was hashed with.
type manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// readManifest returns the data dir's manifest, or nil if none exists yet.
// An unreadable or implausible manifest is corruption: the shard count is
// the one fact replay cannot reconstruct, so the store refuses to guess.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("wal: manifest is corrupt: %v (refusing to guess the shard layout)", err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("wal: manifest version %d not supported", m.Version)
	}
	if m.Shards < 1 || m.Shards > MaxShards {
		return nil, fmt.Errorf("wal: manifest pins implausible shard count %d", m.Shards)
	}
	return &m, nil
}

func writeManifest(dir string, shards int) error {
	data, err := json.Marshal(manifest{Version: 1, Shards: shards})
	if err != nil {
		return fmt.Errorf("wal: encoding manifest: %w", err)
	}
	return writeFileAtomic(dir, manifestName, append(data, '\n'))
}

// resolveShards decides the shard count for dir and brings the directory to
// the sharded layout:
//
//   - A manifest pins the count. A non-zero request that disagrees is
//     refused with ErrShardCountMismatch — re-hashing run IDs with a new
//     modulus would scatter each run's records across shards and break the
//     per-shard replay-order guarantee.
//   - No manifest but root-level log files: a legacy (pre-shard,
//     single-stream) layout. It is migrated in place: the root chain is
//     replayed and re-written as one snapshot per shard, the manifest is
//     installed, and only then are the root files removed — a crash at any
//     point leaves either the untouched legacy layout or a complete
//     sharded one.
//   - Neither: a fresh dir; the manifest is written with the requested (or
//     default) count. Stray shard dirs without a manifest are debris from
//     an interrupted migration and are wiped.
func resolveShards(dir string, requested int) (int, error) {
	if requested < 0 || requested > MaxShards {
		return 0, fmt.Errorf("wal: shard count %d out of range [1,%d] (0 = adopt existing layout or default %d)",
			requested, MaxShards, DefaultShards)
	}
	m, err := readManifest(dir)
	if err != nil {
		return 0, err
	}
	if m != nil {
		if requested != 0 && requested != m.Shards {
			return 0, fmt.Errorf("%w: data dir %s was created with %d shards, asked to open with %d (a run's records live in exactly one shard; a different count would split its history)",
				ErrShardCountMismatch, dir, m.Shards, requested)
		}
		// Root-level log files under a manifest are pre-migration leftovers
		// (migration removes them only after the manifest is durable); their
		// content already lives in the shard snapshots.
		removeRootLogs(dir)
		return m.Shards, nil
	}

	n := requested
	if n == 0 {
		n = DefaultShards
	}
	snaps, segs, err := scanDir(dir)
	if err != nil {
		return 0, err
	}
	if len(snaps)+len(segs) > 0 {
		if err := migrateLegacy(dir, n); err != nil {
			return 0, err
		}
		return n, nil
	}
	// Fresh dir. Shard dirs are only meaningful under a manifest; any that
	// exist are debris from a migration that died before pinning one.
	if err := removeShardDirs(dir); err != nil {
		return 0, err
	}
	if err := writeManifest(dir, n); err != nil {
		return 0, err
	}
	return n, nil
}

// migrateLegacy rewrites a pre-shard single-stream layout into n shards:
// replay the root chain (same corruption policy as any open: torn tail of
// the final segment tolerated, damage in sealed files refused), write each
// surviving run into its hash shard's baseline snapshot, install the
// manifest, then drop the root files. Runs with a pending cancellation
// acknowledgement are carried as cancel-request records so recovery still
// finishes the cancellation instead of re-admitting them.
func migrateLegacy(dir string, n int) error {
	if err := removeShardDirs(dir); err != nil {
		return err
	}
	state, _, err := loadChain(dir)
	if err != nil {
		return fmt.Errorf("wal: migrating legacy single-stream layout: %w", err)
	}
	bufs := make([][]byte, n)
	for id, r := range state.runs {
		r := r
		rec := record{Op: opPut, Run: &r}
		if state.cancelRequested[id] && !r.State.Terminal() {
			rec.Op = opCancelReq
		}
		i := shardIndex(id, n)
		if bufs[i], err = encodeFrame(bufs[i], rec); err != nil {
			return err
		}
	}
	for i := range bufs {
		sdir := filepath.Join(dir, shardDirName(i))
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			return fmt.Errorf("wal: creating shard dir: %w", err)
		}
		if len(bufs[i]) == 0 {
			continue
		}
		if err := writeFileAtomic(sdir, snapshotName(1), bufs[i]); err != nil {
			return err
		}
	}
	if err := writeManifest(dir, n); err != nil {
		return err
	}
	removeRootLogs(dir)
	log.Printf("wal: migrated legacy single-stream layout at %s into %d shards (%d runs)", dir, n, len(state.runs))
	return nil
}

// removeRootLogs drops root-level segment/snapshot files (and staging
// temps). Only called once their content is durable elsewhere.
func removeRootLogs(dir string) {
	snaps, segs, err := scanDir(dir)
	if err != nil {
		return
	}
	for _, seq := range snaps {
		os.Remove(filepath.Join(dir, snapshotName(seq)))
	}
	for _, seq := range segs {
		os.Remove(filepath.Join(dir, segmentName(seq)))
	}
	removeStaleTemps(dir)
}

// removeShardDirs wipes shard-NN directories. Callers only do this when no
// manifest exists, i.e. the dirs can only be interrupted-migration debris.
func removeShardDirs(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: scanning data dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("wal: removing stale %s: %w", e.Name(), err)
			}
		}
	}
	return nil
}
