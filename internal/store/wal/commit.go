package wal

import (
	"errors"
	"os"
	"runtime"
	"sync"
	"time"
)

// DefaultFsyncMaxDelay is how long a group-commit batch may keep
// accumulating before its fsync is issued when Options.FsyncMaxDelay is 0.
const DefaultFsyncMaxDelay = 2 * time.Millisecond

// groupCommit is one shard's fsync batcher. Appends write their record to
// the active segment under the shard lock, take a ticket (written), release
// the lock, and park in await until the committer goroutine has fsynced
// past their ticket. One fsync therefore covers every record written since
// the previous one — under concurrent load, K per-record fsyncs collapse
// into ~1 — without weakening the durability contract: an append does not
// return until its record is on disk.
//
// Durability can also be advanced without a committer fsync: sealing a
// segment (rotation, compaction's swap, Close) syncs the file first and
// then calls advance for everything written so far.
type groupCommit struct {
	maxDelay time.Duration

	mu       sync.Mutex
	cond     *sync.Cond
	written  uint64 // tickets issued: records written to the shard's segment chain
	synced   uint64 // tickets durable: records covered by a completed fsync
	failedAt uint64 // high-water ticket of the last failed batch
	err      error  // last batch error; cleared by the next successful batch

	kick chan struct{}
	quit chan struct{}
	done chan struct{}
}

func newGroupCommit(maxDelay time.Duration) *groupCommit {
	gc := &groupCommit{
		maxDelay: maxDelay,
		kick:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	gc.cond = sync.NewCond(&gc.mu)
	return gc
}

// ticket issues the commit ticket for a record just written to the segment
// chain. Called with the shard lock held, so ticket order matches file
// order.
func (gc *groupCommit) ticket() uint64 {
	gc.mu.Lock()
	gc.written++
	t := gc.written
	gc.mu.Unlock()
	return t
}

// await blocks until ticket seq is durable (covered by an fsync or a
// segment seal) or its batch's fsync failed.
func (gc *groupCommit) await(seq uint64) error {
	select {
	case gc.kick <- struct{}{}:
	default:
	}
	gc.mu.Lock()
	defer gc.mu.Unlock()
	for gc.synced < seq {
		if gc.err != nil && gc.failedAt >= seq {
			return gc.err
		}
		gc.cond.Wait()
	}
	return nil
}

// advance marks every ticket up to upto durable without an fsync of its
// own — the caller just synced the file(s) holding them (segment seal,
// snapshot install, final sync on Close). Safe to call with the shard lock
// held; the lock order is always shard.mu → gc.mu.
func (gc *groupCommit) advance(upto uint64) {
	gc.mu.Lock()
	if upto > gc.synced {
		gc.synced = upto
		gc.cond.Broadcast()
	}
	gc.mu.Unlock()
}

// markAllDurable is advance for "everything written so far": called under
// the shard lock right after a seal's sync, when no new ticket can be
// issued concurrently.
func (gc *groupCommit) markAllDurable() {
	gc.mu.Lock()
	if gc.written > gc.synced {
		gc.synced = gc.written
		gc.cond.Broadcast()
	}
	gc.mu.Unlock()
}

// pending returns how many written records are not yet durable.
func (gc *groupCommit) pending() uint64 {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.written - gc.synced
}

// stop drains one final batch and terminates the committer.
func (gc *groupCommit) stop() {
	close(gc.quit)
	<-gc.done
}

// run is the per-shard committer goroutine: woken by the first waiter of a
// batch, it fsyncs the active segment once for everything pending and wakes
// every waiter. Records that arrive while an fsync is in flight simply form
// the next batch, so the fsync rate is bounded by the disk, not the append
// rate.
func (gc *groupCommit) run(sh *walShard) {
	defer close(gc.done)
	for {
		select {
		case <-gc.kick:
		case <-gc.quit:
			gc.commit(sh) // final drain for any parked waiters
			return
		}
		for gc.pending() > 0 {
			gc.coalesce()
			if !gc.commit(sh) {
				// Sync failure: the waiters of this batch were failed; retry
				// only when a new append kicks, rather than hammering a sick
				// disk in a tight loop.
				break
			}
		}
	}
}

// coalesce gives appenders that are already runnable — typically workers
// woken by the previous batch's broadcast — a chance to land their records
// in this batch before the fsync is issued, by yielding the scheduler while
// the batch keeps growing. Yielding costs ~ns when nothing is runnable, so
// a lone append is effectively never delayed; sleeping here instead would
// serialize the whole shard behind the timer granularity. maxDelay bounds
// the loop as a safety valve against pathological scheduling.
func (gc *groupCommit) coalesce() {
	if gc.maxDelay <= 0 {
		return
	}
	deadline := time.Now().Add(gc.maxDelay)
	last := gc.pending()
	for {
		runtime.Gosched()
		cur := gc.pending()
		if cur == last {
			return // arrivals stopped; the batch is as big as it will get
		}
		last = cur
		if !time.Now().Before(deadline) {
			return
		}
	}
}

// commit fsyncs the shard's active segment and advances durability to the
// tickets issued before the sync began. Returns false if the sync failed
// (after failing that batch's waiters).
func (gc *groupCommit) commit(sh *walShard) bool {
	// Capture a consistent (segment, ticket) pair: every ticket ≤ upto was
	// written to the chain ending in seg. Records in earlier, sealed
	// segments are already durable (sealing syncs first).
	sh.mu.Lock()
	seg := sh.seg
	gc.mu.Lock()
	upto := gc.written
	already := gc.synced
	gc.mu.Unlock()
	sh.mu.Unlock()
	if upto <= already {
		return true
	}

	var err error
	if seg == nil {
		err = errors.New("wal: shard has no active segment")
	} else {
		t0 := time.Now()
		err = seg.Sync()
		if err == nil {
			sh.met.fsyncs.Inc()
			sh.met.fsyncSeconds.Observe(time.Since(t0).Seconds())
		}
	}
	if err != nil && errors.Is(err, os.ErrClosed) {
		// The captured segment was sealed (sync + close under the shard
		// lock) between capture and Sync; the seal's sync already made every
		// captured ticket durable.
		err = nil
	}

	gc.mu.Lock()
	defer gc.mu.Unlock()
	if err != nil {
		gc.err = err
		gc.failedAt = upto
		gc.cond.Broadcast()
		return false
	}
	gc.err = nil
	if upto > gc.synced {
		sh.met.batchSize.Observe(float64(upto - gc.synced))
		gc.synced = upto
	}
	gc.cond.Broadcast()
	return true
}
