package wal

import "github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/metrics"

// batchBuckets sizes the commit-batch-size histogram: 1 means group commit
// degenerated to per-record fsync (serial load); the high buckets show how
// many appends each fsync absorbed under concurrency.
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// walInstruments is the store's metric families, all split by shard so
// per-shard load skew and batching are observable; nil-safe throughout.
type walInstruments struct {
	appends       *metrics.CounterVec   // dagd_wal_appends_total{shard}
	appendedBytes *metrics.CounterVec   // dagd_wal_appended_bytes_total{shard}
	fsyncs        *metrics.CounterVec   // dagd_wal_fsyncs_total{shard}
	fsyncSeconds  *metrics.HistogramVec // dagd_wal_fsync_seconds{shard}
	batchSize     *metrics.HistogramVec // dagd_wal_commit_batch_size{shard}
	rotations     *metrics.CounterVec   // dagd_wal_segment_rotations_total{shard}
	compactions   *metrics.CounterVec   // dagd_wal_compactions_total{shard}
	compactSecs   *metrics.HistogramVec // dagd_wal_compaction_seconds{shard}
	reclaimed     *metrics.CounterVec   // dagd_wal_compaction_reclaimed_records_total{shard}
}

func newWALInstruments(reg *metrics.Registry) walInstruments {
	return walInstruments{
		appends: reg.CounterVec("dagd_wal_appends_total",
			"Records appended to a shard's active WAL segment.", "shard"),
		appendedBytes: reg.CounterVec("dagd_wal_appended_bytes_total",
			"Bytes appended to a shard's WAL segments (framed record size).", "shard"),
		fsyncs: reg.CounterVec("dagd_wal_fsyncs_total",
			"Group-commit fsyncs: each one makes every record appended to the shard since the previous fsync durable.", "shard"),
		fsyncSeconds: reg.HistogramVec("dagd_wal_fsync_seconds",
			"Latency of group-commit fsyncs.", metrics.IOBuckets, "shard"),
		batchSize: reg.HistogramVec("dagd_wal_commit_batch_size",
			"Records made durable per group-commit fsync (1 = no batching; higher = concurrent appends sharing one fsync).", batchBuckets, "shard"),
		rotations: reg.CounterVec("dagd_wal_segment_rotations_total",
			"Active-segment rotations (seal + open a fresh segment) per shard.", "shard"),
		compactions: reg.CounterVec("dagd_wal_compactions_total",
			"Completed compactions (snapshot written, older files removed) per shard.", "shard"),
		compactSecs: reg.HistogramVec("dagd_wal_compaction_seconds",
			"Wall time of a completed shard compaction.", metrics.DefBuckets, "shard"),
		reclaimed: reg.CounterVec("dagd_wal_compaction_reclaimed_records_total",
			"Log records dropped by compaction: records accumulated in the shard since its prior compaction minus the snapshot records that replaced them.", "shard"),
	}
}

// shardInstruments is one shard's bound metric handles.
type shardInstruments struct {
	appends       *metrics.Counter
	appendedBytes *metrics.Counter
	fsyncs        *metrics.Counter
	fsyncSeconds  *metrics.Histogram
	batchSize     *metrics.Histogram
	rotations     *metrics.Counter
	compactions   *metrics.Counter
	compactSecs   *metrics.Histogram
	reclaimed     *metrics.Counter
}

func (w walInstruments) forShard(label string) shardInstruments {
	return shardInstruments{
		appends:       w.appends.With(label),
		appendedBytes: w.appendedBytes.With(label),
		fsyncs:        w.fsyncs.With(label),
		fsyncSeconds:  w.fsyncSeconds.With(label),
		batchSize:     w.batchSize.With(label),
		rotations:     w.rotations.With(label),
		compactions:   w.compactions.With(label),
		compactSecs:   w.compactSecs.With(label),
		reclaimed:     w.reclaimed.With(label),
	}
}
