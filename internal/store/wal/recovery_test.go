package wal_test

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/store/wal"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/tenant"
)

func pipelineSpec() run.Spec {
	return run.Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: 5, Width: 2}}
}

func mustOpen(t *testing.T, dir string, opts wal.Options) (*wal.Store, []run.Run) {
	t.Helper()
	s, recovered, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", dir, err)
	}
	return s, recovered
}

func mustCreate(t *testing.T, s *wal.Store, spec run.Spec) run.Run {
	t.Helper()
	r, err := s.Create(spec)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return r
}

func drive(t *testing.T, s *wal.Store, id string, runErr error) run.Run {
	t.Helper()
	if _, err := s.Begin(id, time.Now(), "", func() {}); err != nil {
		t.Fatalf("Begin(%s): %v", id, err)
	}
	var res *run.Result
	if runErr == nil {
		res = &run.Result{Nodes: 12, SinkPaths: 3, Match: true}
	}
	r, err := s.Finish(id, res, runErr)
	if err != nil {
		t.Fatalf("Finish(%s): %v", id, err)
	}
	return r
}

// listWALFiles returns the data dir's segment and snapshot files as paths
// relative to dir (walking the shard directories), sorted.
func listWALFiles(t *testing.T, dir string) (segs, snaps []string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			return rerr
		}
		switch {
		case strings.HasPrefix(d.Name(), "wal-"):
			segs = append(segs, rel)
		case strings.HasPrefix(d.Name(), "snapshot-"):
			snaps = append(snaps, rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	sort.Strings(snaps)
	return segs, snaps
}

// TestRecovery is the core durability contract: terminal runs survive a
// restart byte-for-byte, and queued/running runs are re-admitted as queued
// with the interrupted → queued transition recorded in Restarts.
func TestRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{})

	succeeded := mustCreate(t, s, pipelineSpec())
	drive(t, s, succeeded.ID, nil)
	failed := mustCreate(t, s, pipelineSpec())
	drive(t, s, failed.ID, errors.New("boom"))
	cancelled := mustCreate(t, s, pipelineSpec())
	if _, err := s.Cancel(cancelled.ID); err != nil {
		t.Fatal(err)
	}
	queued := mustCreate(t, s, pipelineSpec())
	running := mustCreate(t, s, pipelineSpec())
	if _, err := s.Begin(running.ID, time.Now(), "", func() {}); err != nil {
		t.Fatal(err)
	}
	before := s.List()
	// No graceful close: simulate a crash by abandoning the handle. (The
	// OS page cache holds the appended records; SIGKILL-level durability is
	// exactly what the e2e test exercises against a real process.)
	s.Close()

	s2, recovered := mustOpen(t, dir, wal.Options{})
	defer s2.Close()

	// Terminal runs are history: state, result, error, and timestamps all
	// survive, and List order (CreatedAt, ID) is unchanged.
	for _, want := range []struct {
		id    string
		state run.State
	}{
		{succeeded.ID, run.StateSucceeded},
		{failed.ID, run.StateFailed},
		{cancelled.ID, run.StateCancelled},
	} {
		got, err := s2.Get(want.id)
		if err != nil {
			t.Fatalf("Get(%s) after restart: %v", want.id, err)
		}
		if got.State != want.state {
			t.Errorf("run %s state = %s after restart, want %s", want.id, got.State, want.state)
		}
		if got.Restarts != 0 {
			t.Errorf("terminal run %s has Restarts = %d, want 0", want.id, got.Restarts)
		}
		if got.FinishedAt == nil {
			t.Errorf("terminal run %s lost FinishedAt", want.id)
		}
	}
	if got, _ := s2.Get(succeeded.ID); got.Result == nil || got.Result.SinkPaths != 3 || !got.Result.Match {
		t.Errorf("succeeded run lost its Result: %+v", got.Result)
	}
	if got, _ := s2.Get(failed.ID); got.Error != "boom" {
		t.Errorf("failed run error = %q, want boom", got.Error)
	}

	// Interrupted runs (queued or running at crash) come back queued.
	if len(recovered) != 2 {
		t.Fatalf("recovered %d runs, want 2 (queued + running)", len(recovered))
	}
	wantInterrupted := map[string]bool{queued.ID: true, running.ID: true}
	for _, r := range recovered {
		if !wantInterrupted[r.ID] {
			t.Errorf("unexpected recovered run %s", r.ID)
		}
		if r.State != run.StateQueued {
			t.Errorf("recovered run %s state = %s, want queued", r.ID, r.State)
		}
		if r.StartedAt != nil {
			t.Errorf("recovered run %s still has StartedAt", r.ID)
		}
		if r.Restarts != 1 {
			t.Errorf("recovered run %s Restarts = %d, want 1", r.ID, r.Restarts)
		}
	}

	after := s2.List()
	if len(after) != len(before) {
		t.Fatalf("List has %d runs after restart, want %d", len(after), len(before))
	}
	for i := range after {
		if after[i].ID != before[i].ID {
			t.Fatalf("List order changed at %d: %s != %s", i, after[i].ID, before[i].ID)
		}
		if !after[i].CreatedAt.Equal(before[i].CreatedAt) {
			t.Errorf("run %s CreatedAt drifted across restart", after[i].ID)
		}
	}
}

// TestRecoveryTwice pins that a second crash before the interrupted run
// executes bumps Restarts again — the requeue records themselves are
// replayed.
func TestRecoveryTwice(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{})
	r := mustCreate(t, s, pipelineSpec())
	if _, err := s.Begin(r.ID, time.Now(), "", func() {}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec2 := mustOpen(t, dir, wal.Options{})
	if len(rec2) != 1 || rec2[0].Restarts != 1 {
		t.Fatalf("first recovery = %+v, want one run with Restarts 1", rec2)
	}
	s2.Close()

	s3, rec3 := mustOpen(t, dir, wal.Options{})
	defer s3.Close()
	if len(rec3) != 1 || rec3[0].Restarts != 2 {
		t.Fatalf("second recovery = %+v, want one run with Restarts 2", rec3)
	}
	// And it is still executable: drive it to terminal.
	got := drive(t, s3, rec3[0].ID, nil)
	if got.State != run.StateSucceeded || got.Restarts != 2 {
		t.Errorf("recovered run finished as %+v, want succeeded with Restarts 2", got)
	}
}

// TestEvictionAndDeletePersist pins that del records replay: evicted and
// deleted runs stay gone after a restart.
func TestEvictionAndDeletePersist(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{})
	var ids []string
	for i := 0; i < 6; i++ {
		r := mustCreate(t, s, pipelineSpec())
		drive(t, s, r.ID, nil)
		ids = append(ids, r.ID)
	}
	if n := s.EvictTerminal(2); n != 4 {
		t.Fatalf("EvictTerminal(2) = %d, want 4", n)
	}
	dropped := mustCreate(t, s, pipelineSpec())
	if err := s.Delete(dropped.ID); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, recovered := mustOpen(t, dir, wal.Options{})
	defer s2.Close()
	if len(recovered) != 0 {
		t.Fatalf("recovered %d runs, want 0", len(recovered))
	}
	if got := s2.Len(); got != 2 {
		t.Fatalf("Len after restart = %d, want 2 retained runs", got)
	}
	for _, id := range ids[:4] {
		if _, err := s2.Get(id); !errors.Is(err, run.ErrNotFound) {
			t.Errorf("evicted run %s resurrected by replay", id)
		}
	}
	if _, err := s2.Get(dropped.ID); !errors.Is(err, run.ErrNotFound) {
		t.Errorf("deleted run %s resurrected by replay", dropped.ID)
	}
}

// TestSegmentRotation forces tiny segments and checks the log splits while
// replay still sees one coherent history. Shards: 1 so every record hits
// the same segment chain and the rotation count is deterministic.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{SegmentMaxBytes: 512, CompactThreshold: -1, Shards: 1})
	for i := 0; i < 20; i++ {
		r := mustCreate(t, s, pipelineSpec())
		drive(t, s, r.ID, nil)
	}
	segs, _ := listWALFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", segs)
	}
	s.Close()

	s2, _ := mustOpen(t, dir, wal.Options{SegmentMaxBytes: 512, CompactThreshold: -1})
	defer s2.Close()
	if got := s2.Len(); got != 20 {
		t.Errorf("replay across %d segments found %d runs, want 20", len(segs), got)
	}
	if got := s2.CountByState()[run.StateSucceeded]; got != 20 {
		t.Errorf("succeeded after replay = %d, want 20", got)
	}
}

// TestCompaction pins that crossing the threshold collapses the log into a
// snapshot file, removes older segments, and that the compacted state
// replays identically.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{CompactThreshold: 10, SegmentMaxBytes: 256, Shards: 1})
	var last run.Run
	for i := 0; i < 15; i++ {
		r := mustCreate(t, s, pipelineSpec())
		last = drive(t, s, r.ID, nil)
	}
	// Compaction runs in the background; Close waits for any in flight, so
	// the on-disk layout is only inspected after it.
	s.Close()
	segs, snaps := listWALFiles(t, dir)
	if len(snaps) == 0 {
		t.Fatalf("no snapshot written after %d records (files: %v)", 45, segs)
	}
	if len(snaps) != 1 {
		t.Errorf("old snapshots not cleaned up: %v", snaps)
	}
	// Only the post-compaction segments should remain.
	for _, seg := range segs {
		if seg < strings.Replace(snaps[len(snaps)-1], "snapshot-", "wal-", 1) {
			t.Errorf("segment %s predates snapshot %s but was not removed", seg, snaps[len(snaps)-1])
		}
	}

	s2, recovered := mustOpen(t, dir, wal.Options{CompactThreshold: 10})
	defer s2.Close()
	if len(recovered) != 0 {
		t.Fatalf("recovered %d runs from compacted log, want 0", len(recovered))
	}
	if got := s2.Len(); got != 15 {
		t.Errorf("Len after compacted replay = %d, want 15", got)
	}
	got, err := s2.Get(last.ID)
	if err != nil || got.State != run.StateSucceeded {
		t.Errorf("Get(%s) after compacted replay = %+v, %v", last.ID, got, err)
	}
}

// TestTornTail simulates a crash mid-append: trailing garbage on the
// active segment is truncated away and every complete record survives.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{Shards: 1})
	a := mustCreate(t, s, pipelineSpec())
	drive(t, s, a.ID, nil)
	b := mustCreate(t, s, pipelineSpec())
	s.Close()

	segs, _ := listWALFiles(t, dir)
	active := filepath.Join(dir, segs[len(segs)-1])
	// A torn frame: a header claiming 1000 payload bytes, then only 5.
	f, err := os.OpenFile(active, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x03, 0xe8, 0xde, 0xad, 0xbe, 0xef, 'x', 'y', 'z', '!', '?'}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore, _ := os.Stat(active)

	s2, recovered := mustOpen(t, dir, wal.Options{})
	defer s2.Close()
	if got, err := s2.Get(a.ID); err != nil || got.State != run.StateSucceeded {
		t.Errorf("run before torn tail lost: %+v, %v", got, err)
	}
	if len(recovered) != 1 || recovered[0].ID != b.ID {
		t.Errorf("recovered = %+v, want just %s", recovered, b.ID)
	}
	sizeAfter, _ := os.Stat(active)
	if sizeAfter.Size() >= sizeBefore.Size() {
		t.Errorf("torn tail not truncated: %d >= %d bytes", sizeAfter.Size(), sizeBefore.Size())
	}
}

// TestCorruptSealedSegmentRejected pins the other half of the policy: a
// bit flip in a sealed (non-final) file is real corruption and Open must
// refuse rather than load a partial history.
func TestCorruptSealedSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{Shards: 1})
	r := mustCreate(t, s, pipelineSpec())
	drive(t, s, r.ID, nil)
	s.Close()
	// A second open seals the first segment behind a new active one.
	s2, _ := mustOpen(t, dir, wal.Options{})
	mustCreate(t, s2, pipelineSpec())
	s2.Close()

	segs, _ := listWALFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("need a sealed segment, have %v", segs)
	}
	sealed := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 20 {
		t.Fatalf("sealed segment implausibly small: %d bytes", len(data))
	}
	data[len(data)/2] ^= 0xff // flip bits mid-payload; CRC must catch it
	if err := os.WriteFile(sealed, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := wal.Open(dir, wal.Options{}); err == nil {
		t.Fatal("Open loaded a corrupt sealed segment")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corruption error %q does not say corrupt", err)
	}
}

// TestCancelRequestedSurvivesCrash pins that a cancel acknowledged on a
// running run is durable: if the process dies before the dispatcher
// records the terminal outcome, recovery finishes the cancellation rather
// than re-admitting (and silently re-executing) the run.
func TestCancelRequestedSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{})
	r := mustCreate(t, s, pipelineSpec())
	if _, err := s.Begin(r.ID, time.Now(), "", func() {}); err != nil {
		t.Fatal(err)
	}
	if c, err := s.Cancel(r.ID); err != nil || c.State != run.StateRunning {
		t.Fatalf("Cancel(running) = %+v, %v", c, err)
	}
	s.Close() // crash before the dispatcher's Finish

	s2, recovered := mustOpen(t, dir, wal.Options{})
	if len(recovered) != 0 {
		t.Fatalf("acknowledged-cancelled run was re-admitted: %+v", recovered)
	}
	got, err := s2.Get(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != run.StateCancelled {
		t.Fatalf("state after crash = %s, want cancelled", got.State)
	}
	if got.FinishedAt == nil {
		t.Error("crash-cancelled run has no FinishedAt (would never evict)")
	}
	if got.Error == "" {
		t.Error("crash-cancelled run carries no explanation")
	}
	s2.Close()

	// The repair itself was logged: a third boot replays to the same state.
	s3, recovered3 := mustOpen(t, dir, wal.Options{})
	defer s3.Close()
	if len(recovered3) != 0 {
		t.Fatalf("repaired run re-admitted on second restart: %+v", recovered3)
	}
	if got, _ := s3.Get(r.ID); got.State != run.StateCancelled {
		t.Errorf("repair not durable: state = %s on second restart", got.State)
	}
	// And it evicts like any terminal run.
	if n := s3.EvictTerminal(0); n != 0 {
		t.Errorf("EvictTerminal(0) = %d, want 0", n)
	}
	filler := mustCreate(t, s3, pipelineSpec())
	drive(t, s3, filler.ID, nil)
	if n := s3.EvictTerminal(1); n != 1 {
		t.Errorf("EvictTerminal(1) = %d, want 1 (the crash-cancelled run)", n)
	}
}

// TestFsyncRoundTrip smoke-checks the fsync path end to end (correctness
// is identical; only the durability window differs).
func TestFsyncRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{Fsync: true})
	r := mustCreate(t, s, pipelineSpec())
	drive(t, s, r.ID, nil)
	s.Close()
	s2, _ := mustOpen(t, dir, wal.Options{Fsync: true})
	defer s2.Close()
	if got, err := s2.Get(r.ID); err != nil || got.State != run.StateSucceeded {
		t.Errorf("fsync'd run lost: %+v, %v", got, err)
	}
}

// TestRecoveryPreservesTenant: tenant attribution rides the WAL record
// through a crash — re-admitted runs come back carrying the same tenant
// (the dispatcher then routes each into its owning tenant's queue).
func TestRecoveryPreservesTenant(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{})

	specFor := func(name string) run.Spec {
		sp := pipelineSpec()
		sp.Tenant = name
		sp.Priority = 1
		return sp
	}
	queued := mustCreate(t, s, specFor("alpha"))
	running := mustCreate(t, s, specFor("beta"))
	if _, err := s.Begin(running.ID, time.Now(), "", func() {}); err != nil {
		t.Fatal(err)
	}
	terminal := mustCreate(t, s, specFor("alpha"))
	drive(t, s, terminal.ID, nil)
	s.Close()

	s2, recovered := mustOpen(t, dir, wal.Options{})
	defer s2.Close()
	if len(recovered) != 2 {
		t.Fatalf("recovered %d runs, want 2", len(recovered))
	}
	want := map[string]string{queued.ID: "alpha", running.ID: "beta"}
	for _, r := range recovered {
		if r.Spec.Tenant != want[r.ID] {
			t.Errorf("recovered run %s tenant = %q, want %q", r.ID, r.Spec.Tenant, want[r.ID])
		}
		if r.Spec.Priority != 1 {
			t.Errorf("recovered run %s priority = %d, want 1", r.ID, r.Spec.Priority)
		}
	}
	got, err := s2.Get(terminal.ID)
	if err != nil || got.Spec.Tenant != "alpha" {
		t.Errorf("terminal run tenant after replay = %q, %v; want alpha", got.Spec.Tenant, err)
	}
}

// TestRecoveryStampsLegacyTenant: records written before tenancy existed
// (no tenant field) replay as the catch-all default tenant — terminal
// history and re-admitted runs alike — so ?tenant= filters and queue
// routing always have a real attribution.
func TestRecoveryStampsLegacyTenant(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, wal.Options{})

	// pipelineSpec carries no tenant: byte-for-byte what a pre-tenancy
	// dagd logged.
	terminal := mustCreate(t, s, pipelineSpec())
	drive(t, s, terminal.ID, nil)
	interrupted := mustCreate(t, s, pipelineSpec())
	s.Close()

	s2, recovered := mustOpen(t, dir, wal.Options{})
	defer s2.Close()
	if len(recovered) != 1 || recovered[0].ID != interrupted.ID {
		t.Fatalf("recovered = %+v, want just the interrupted run", recovered)
	}
	if got := recovered[0].Spec.Tenant; got != tenant.Default {
		t.Errorf("legacy interrupted run replayed with tenant %q, want %q", got, tenant.Default)
	}
	got, err := s2.Get(terminal.ID)
	if err != nil || got.Spec.Tenant != tenant.Default {
		t.Errorf("legacy terminal run replayed with tenant %q, %v; want %q", got.Spec.Tenant, err, tenant.Default)
	}
}
