package wal_test

import (
	"testing"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/store/wal"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/storetest"
)

// TestStoreConformance runs the shared store conformance suite against the
// WAL backend — default config, group-commit fsync, aggressive compaction,
// and explicit shard counts at 1 and 4 (each with and without fsync) — so
// list order, eviction, Await, and cursor semantics are bit-identical to
// the in-memory store's no matter how the log is laid out.
func TestStoreConformance(t *testing.T) {
	open := func(opts wal.Options) storetest.Factory {
		return func(t *testing.T) run.Store {
			s, recovered, err := wal.Open(t.TempDir(), opts)
			if err != nil {
				t.Fatalf("wal.Open: %v", err)
			}
			if len(recovered) != 0 {
				t.Fatalf("fresh dir recovered %d runs", len(recovered))
			}
			t.Cleanup(func() { s.Close() })
			return s
		}
	}
	t.Run("Default", func(t *testing.T) { storetest.Run(t, open(wal.Options{})) })
	t.Run("Fsync", func(t *testing.T) { storetest.Run(t, open(wal.Options{Fsync: true})) })
	// A tiny compaction threshold forces snapshot+truncate churn under
	// every conformance scenario.
	t.Run("AggressiveCompaction", func(t *testing.T) {
		storetest.Run(t, open(wal.Options{CompactThreshold: 4}))
	})
	t.Run("Shards1", func(t *testing.T) { storetest.Run(t, open(wal.Options{Shards: 1})) })
	t.Run("Shards1Fsync", func(t *testing.T) {
		storetest.Run(t, open(wal.Options{Shards: 1, Fsync: true}))
	})
	t.Run("Shards4", func(t *testing.T) { storetest.Run(t, open(wal.Options{Shards: 4})) })
	t.Run("Shards4Fsync", func(t *testing.T) {
		storetest.Run(t, open(wal.Options{Shards: 4, Fsync: true}))
	})
}
