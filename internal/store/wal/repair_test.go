package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

// TestRecoveryFailsRevalidationTerminally crafts a log whose queued run no
// longer passes Spec.Validate (as happens when a newer dagd tightens
// admission bounds over specs an older one logged) and pins the repair: the
// run comes back failed — a complete terminal snapshot with FinishedAt set
// so retention can evict it — rather than re-executing or lingering
// half-terminal forever.
func TestRecoveryFailsRevalidationTerminally(t *testing.T) {
	dir := t.TempDir()
	invalid := run.Run{
		ID: "r000001-deadbeef",
		// A random-shape spec with nodes below the admission minimum:
		// impossible to submit through Validate, so it models a record
		// from a binary with laxer bounds.
		Spec:      run.Spec{Config: gen.Config{Shape: gen.Random, Nodes: 1}},
		State:     run.StateQueued,
		CreatedAt: time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC),
	}
	buf, err := encodeFrame(nil, record{Op: opCreate, Run: &invalid})
	if err != nil {
		t.Fatal(err)
	}
	// Plant the record in the sharded layout: the manifest pins the count
	// and the segment goes into the shard that owns the run's ID.
	const shards = 4
	if err := writeManifest(dir, shards); err != nil {
		t.Fatal(err)
	}
	sdir := filepath.Join(dir, shardDirName(shardIndex(invalid.ID, shards)))
	if err := os.MkdirAll(sdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sdir, segmentName(1)), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s, recovered, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if len(recovered) != 0 {
		t.Fatalf("unvalidatable run was re-admitted: %+v", recovered)
	}
	got, err := s.Get(invalid.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != run.StateFailed {
		t.Fatalf("state = %s, want failed", got.State)
	}
	if got.FinishedAt == nil {
		t.Error("repaired run has no FinishedAt — it could never be evicted")
	}
	if got.Error == "" {
		t.Error("repaired run carries no explanation")
	}
	// Being a complete terminal snapshot, it must be evictable.
	if n := s.EvictTerminal(0); n != 0 {
		t.Errorf("EvictTerminal(0) = %d, want 0 (unlimited)", n)
	}
	r2, err := s.Create(run.Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: 3, Width: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Begin(r2.ID, time.Now(), "", func() {}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(r2.ID, &run.Result{Match: true}, nil); err != nil {
		t.Fatal(err)
	}
	if n := s.EvictTerminal(1); n != 1 {
		t.Errorf("EvictTerminal(1) = %d, want 1 (the repaired run evicts first)", n)
	}
}
