// Package metrics is a dependency-free, concurrency-safe metrics registry
// for the dagd service: counters, gauges, and fixed-bucket histograms,
// optionally split by a static label set, rendered in the Prometheus text
// exposition format v0.0.4 (the format every Prometheus-compatible scraper
// speaks). A strict parser for the same format lives in promtext.go, so the
// exposition surface is round-trip tested and CI can verify a live /metrics
// page line by line.
//
// Design points:
//
//   - Hot-path operations (Inc/Add/Observe/Set) are lock-free atomics; the
//     only mutex work is the series lookup in a Vec's With, and callers on
//     genuinely hot paths can resolve their series once and hold the handle.
//   - Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
//     *Histogram, or nil Vec are no-ops, so instrumented packages accept an
//     optional registry without sprinkling nil checks at every call site.
//   - Gauges whose value is derived state (queue depths, in-flight counts)
//     are refreshed by OnCollect hooks that run at scrape time, so the
//     instrumented code never has to keep a parallel gauge in sync.
//   - CounterFunc/GaugeFunc read their value from a closure at scrape time,
//     for monotonic process-lifetime totals kept as plain atomics elsewhere
//     (e.g. the scheduler's steal counter).
package metrics

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Instrument kinds, as rendered in # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// DefBuckets are the default histogram buckets, in seconds — the standard
// Prometheus spread covering sub-millisecond to 10s latencies.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// IOBuckets suit disk-latency histograms (fsync, compaction): tens of
// microseconds up to one second.
var IOBuckets = []float64{.00005, .0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1}

// value is a float64 updated atomically (bit-cast through uint64).
type value struct{ bits atomic.Uint64 }

func (v *value) add(f float64) {
	for {
		old := v.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + f)
		if v.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (v *value) set(f float64) { v.bits.Store(math.Float64bits(f)) }
func (v *value) load() float64 { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing value. All methods are safe on nil.
type Counter struct{ v value }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by f; negative deltas are ignored (counters
// never go down).
func (c *Counter) Add(f float64) {
	if c == nil || f < 0 {
		return
	}
	c.v.add(f)
}

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.load()
}

// Gauge is a value that can go up and down. All methods are safe on nil.
type Gauge struct{ v value }

// Set replaces the gauge's value.
func (g *Gauge) Set(f float64) {
	if g == nil {
		return
	}
	g.v.set(f)
}

// Add shifts the gauge by f (negative to decrease).
func (g *Gauge) Add(f float64) {
	if g == nil {
		return
	}
	g.v.add(f)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// Histogram counts observations into fixed buckets. Buckets are stored
// non-cumulatively and accumulated at render time, so Observe touches
// exactly one bucket counter plus the sum and count. All methods are safe
// on nil.
type Histogram struct {
	upper  []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	sum    value
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(f float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (≤ ~15) and the scan is
	// branch-predictable; a binary search wins nothing here.
	i := 0
	for i < len(h.upper) && f > h.upper[i] {
		i++
	}
	h.counts[i].Add(1) // index len(upper) is the +Inf bucket
	h.sum.add(f)
	h.count.Add(1)
}

// Count returns how many samples were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// series is one (label values → instrument) entry of a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histograms only

	fn func() float64 // CounterFunc/GaugeFunc families; nil otherwise

	mu     sync.Mutex
	series map[string]*series
}

// seriesKey joins label values with a byte that cannot appear in them
// unescaped ambiguity-free (0xff is invalid UTF-8, and even if present in
// two values the full tuple comparison below disambiguates at collision).
func seriesKey(labelValues []string) string {
	return strings.Join(labelValues, "\xff")
}

func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := seriesKey(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		switch f.typ {
		case typeCounter:
			s.counter = &Counter{}
		case typeGauge:
			s.gauge = &Gauge{}
		case typeHistogram:
			s.hist = &Histogram{
				upper:  f.buckets,
				counts: make([]atomic.Uint64, len(f.buckets)+1),
			}
		}
		f.series[key] = s
	}
	return s
}

// CounterVec is a counter family split by labels.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (created on first
// use). Safe on a nil receiver, returning a nil (no-op) Counter.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.get(labelValues).counter
}

// GaugeVec is a gauge family split by labels.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values. Safe on nil.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.get(labelValues).gauge
}

// HistogramVec is a histogram family split by labels.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values. Safe on nil.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.get(labelValues).hist
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use, and
// every registration/collection method is safe on a nil *Registry (returning
// nil instruments), so a package can accept an optional registry and
// instrument unconditionally.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register creates or fetches a family, panicking on an invalid name or a
// redefinition with a different shape — both programmer errors that should
// fail at startup, not silently split a metric.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64, fn func() float64) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	if typ == typeHistogram {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("metrics: histogram %s needs at least one bucket", name))
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("metrics: histogram %s buckets must be sorted ascending", name))
		}
		// A trailing +Inf is implicit; reject an explicit one so the bucket
		// list length always equals the finite bound count.
		if math.IsInf(buckets[len(buckets)-1], +1) {
			buckets = buckets[:len(buckets)-1]
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %s re-registered as %s%v (was %s%v)", name, typ, labels, f.typ, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: %s re-registered with labels %v (was %v)", name, labels, f.labels))
			}
		}
		if fn != nil {
			panic(fmt.Sprintf("metrics: func metric %s registered twice", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		fn:      fn,
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, typeCounter, nil, nil, nil).get(nil).counter
}

// CounterVec registers (or fetches) a counter family split by labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, typeCounter, labels, nil, nil)}
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, typeGauge, nil, nil, nil).get(nil).gauge
}

// GaugeVec registers (or fetches) a gauge family split by labels.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, typeGauge, labels, nil, nil)}
}

// Histogram registers (or fetches) an unlabelled fixed-bucket histogram.
// buckets are ascending upper bounds; a +Inf bucket is always appended.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, typeHistogram, nil, buckets, nil).get(nil).hist
}

// HistogramVec registers (or fetches) a histogram family split by labels.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{fam: r.register(name, help, typeHistogram, labels, buckets, nil)}
}

// CounterFunc registers a counter whose value is read from fn at every
// collection — for monotonic totals kept as plain atomics elsewhere. fn
// must be safe for concurrent use and must never decrease.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, typeCounter, nil, nil, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at collection.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, typeGauge, nil, nil, fn)
}

// OnCollect registers a hook that runs at the start of every WritePrometheus
// call, before any family is rendered — the place to refresh derived gauges
// (queue depths, in-flight counts) from their source of truth. Hooks must
// not call WritePrometheus.
func (r *Registry) OnCollect(hook func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, hook)
	r.mu.Unlock()
}

// WritePrometheus renders every family in text exposition format v0.0.4:
// families sorted by name, series within a family sorted by label values,
// histograms as cumulative _bucket series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()

	for _, hook := range hooks {
		hook()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)

	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.fn()))
		return
	}

	f.mu.Lock()
	all := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		all = append(all, s)
	}
	f.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		return seriesKey(all[i].labelValues) < seriesKey(all[j].labelValues)
	})

	for _, s := range all {
		switch f.typ {
		case typeCounter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), formatFloat(s.counter.Value()))
		case typeGauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), formatFloat(s.gauge.Value()))
		case typeHistogram:
			h := s.hist
			var cum uint64
			for i, upper := range h.upper {
				cum += h.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labelValues, "le", formatFloat(upper)), cum)
			}
			// The +Inf bucket must equal _count by definition; render both
			// from the same snapshot of the total so a concurrent Observe
			// cannot make them disagree on one scrape. (cum can lag count if
			// an Observe lands between the loads above and here; clamping to
			// count keeps the cumulative invariant monotone.)
			count := h.count.Load()
			if cum > count {
				count = cum
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, s.labelValues, "le", "+Inf"), count)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name,
				labelString(f.labels, s.labelValues, "", ""), formatFloat(h.sum.load()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name,
				labelString(f.labels, s.labelValues, "", ""), count)
		}
	}
}

// labelString renders a {k="v",...} block from the family labels plus an
// optional extra pair (the histogram le label); empty when there are no
// labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(f float64) string {
	switch {
	case math.IsInf(f, +1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	case math.IsNaN(f):
		return "NaN"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
