package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// TestGoldenExposition pins the exact text format: HELP/TYPE lines, label
// ordering as registered, escaping of backslashes/quotes/newlines, and
// sorted family order.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "sorted last despite registration order").Add(3)
	c := r.CounterVec("aa_requests_total", `counts "requests" with a \ and
newline`, "route", "method")
	c.With(`/v1/runs`, "GET").Add(2)
	c.With("esc\"aped\\v\nal", "POST").Inc()
	r.Gauge("mm_depth", "queue depth").Set(7.5)

	want := `# HELP aa_requests_total counts "requests" with a \\ and\nnewline
# TYPE aa_requests_total counter
aa_requests_total{route="/v1/runs",method="GET"} 2
aa_requests_total{route="esc\"aped\\v\nal",method="POST"} 1
# HELP mm_depth queue depth
# TYPE mm_depth gauge
mm_depth 7.5
# HELP zz_last_total sorted last despite registration order
# TYPE zz_last_total counter
zz_last_total 3
`
	if got := render(t, r); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHistogramExposition pins cumulative buckets, the implicit +Inf
// bucket, and the _sum/_count invariants.
func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.06, 0.3, 0.9, 42} {
		h.Observe(v)
	}
	want := `# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 2
lat_seconds_bucket{le="0.5"} 3
lat_seconds_bucket{le="1"} 4
lat_seconds_bucket{le="+Inf"} 5
lat_seconds_sum 43.31
lat_seconds_count 5
`
	if got := render(t, r); got != want {
		t.Errorf("histogram exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHistogramVecLabelsAndInf: the le label composes after the family
// labels, and an explicit +Inf bound collapses into the implicit one.
func TestHistogramVecLabelsAndInf(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("dur_seconds", "", []float64{1, math.Inf(+1)}, "wl")
	h.With("pathcount").Observe(2)
	got := render(t, r)
	for _, want := range []string{
		`dur_seconds_bucket{wl="pathcount",le="1"} 0`,
		`dur_seconds_bucket{wl="pathcount",le="+Inf"} 1`,
		`dur_seconds_sum{wl="pathcount"} 2`,
		`dur_seconds_count{wl="pathcount"} 1`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("exposition lacks %q:\n%s", want, got)
		}
	}
	if strings.Count(got, `le="+Inf"`) != 1 {
		t.Errorf("want exactly one +Inf bucket:\n%s", got)
	}
}

// TestConcurrentUpdates hammers every instrument kind from many goroutines
// (run with -race in CI) and checks the totals are exact — no lost updates.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	cv := r.CounterVec("cv_total", "", "who")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{0.5})
	hv := r.HistogramVec("hv_seconds", "", []float64{0.5}, "who")

	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			who := []string{"a", "b", "c"}[n%3]
			for j := 0; j < perG; j++ {
				c.Inc()
				cv.With(who).Add(2)
				g.Add(1)
				h.Observe(float64(j%2) * 0.9) // half land in le=0.5, half in +Inf
				hv.With(who).Observe(0.1)
				if j%16 == 0 {
					// Interleave scrapes with updates: rendering must never
					// race with Observe/Add (the -race run proves it).
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}(i)
	}
	wg.Wait()

	total := float64(goroutines * perG)
	if got := c.Value(); got != total {
		t.Errorf("counter = %v, want %v", got, total)
	}
	var cvSum float64
	for _, who := range []string{"a", "b", "c"} {
		cvSum += cv.With(who).Value()
	}
	if want := 2 * total; cvSum != want {
		t.Errorf("counter vec sum = %v, want %v", cvSum, want)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %v, want %v", got, total)
	}
	if got := h.Count(); got != uint64(total) {
		t.Errorf("histogram count = %d, want %v", got, total)
	}

	// The final exposition must parse strictly and uphold the histogram
	// invariants under the parser's own checks.
	fams, err := ParsePrometheus(strings.NewReader(render(t, r)))
	if err != nil {
		t.Fatalf("strict parse of concurrent exposition: %v", err)
	}
	if got := fams["h_seconds"].Sum(); got != total {
		t.Errorf("parsed h_seconds count = %v, want %v", got, total)
	}
}

// TestRoundTrip renders a mixed registry and re-parses it: every value must
// survive exactly.
func TestRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("rt_total", "round trip", "tenant", "reason").With("a\\b", "rate \"limited\"").Add(12)
	r.Gauge("rt_gauge", "g").Set(-3.25)
	h := r.Histogram("rt_seconds", "h", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(5)
	r.CounterFunc("rt_func_total", "from closure", func() float64 { return 99 })

	fams, err := ParsePrometheus(strings.NewReader(render(t, r)))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, ok := fams["rt_total"].Value(map[string]string{"tenant": `a\b`, "reason": `rate "limited"`}); !ok || v != 12 {
		t.Errorf("rt_total = %v (found %v), want 12", v, ok)
	}
	if v, ok := fams["rt_gauge"].Value(nil); !ok || v != -3.25 {
		t.Errorf("rt_gauge = %v (found %v), want -3.25", v, ok)
	}
	if v, ok := fams["rt_func_total"].Value(nil); !ok || v != 99 {
		t.Errorf("rt_func_total = %v (found %v), want 99", v, ok)
	}
	if fams["rt_seconds"].Type != "histogram" {
		t.Errorf("rt_seconds type = %s, want histogram", fams["rt_seconds"].Type)
	}
	if got := fams["rt_seconds"].Sum(); got != 2 {
		t.Errorf("rt_seconds observation count = %v, want 2", got)
	}
}

// TestCollectHooksAndFuncs: OnCollect hooks refresh derived gauges at
// scrape time, and func metrics re-read their closure every render.
func TestCollectHooksAndFuncs(t *testing.T) {
	r := NewRegistry()
	depth := 3
	gv := r.GaugeVec("queue_depth", "", "tenant")
	r.OnCollect(func() { gv.With("default").Set(float64(depth)) })
	r.GaugeFunc("live_value", "", func() float64 { return float64(depth * 10) })

	if got := render(t, r); !strings.Contains(got, `queue_depth{tenant="default"} 3`) ||
		!strings.Contains(got, "live_value 30") {
		t.Errorf("first render missed hook/func values:\n%s", got)
	}
	depth = 9
	if got := render(t, r); !strings.Contains(got, `queue_depth{tenant="default"} 9`) ||
		!strings.Contains(got, "live_value 90") {
		t.Errorf("second render did not refresh:\n%s", got)
	}
}

// TestNilSafety: a nil registry and nil instruments are inert, so optional
// instrumentation needs no call-site guards.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "").Inc()
	r.CounterVec("xv_total", "", "l").With("v").Add(2)
	r.Gauge("g", "").Set(1)
	r.GaugeVec("gv", "", "l").With("v").Dec()
	r.Histogram("h", "", DefBuckets).Observe(1)
	r.HistogramVec("hv", "", DefBuckets, "l").With("v").Observe(1)
	r.CounterFunc("cf", "", func() float64 { return 1 })
	r.GaugeFunc("gf", "", func() float64 { return 1 })
	r.OnCollect(func() {})
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

// TestReregistration: identical re-registration returns the same series;
// conflicting shape panics.
func TestReregistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help")
	b := r.Counter("dup_total", "help")
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("re-registered counter is a different series")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("dup_total", "now a gauge")
}

// TestStrictParserRejections: the parser is actually strict.
func TestStrictParserRejections(t *testing.T) {
	bad := []string{
		"no_value_here\n",
		"1leading_digit 3\n",
		`bad_label{9x="v"} 1` + "\n",
		`unquoted{l=v} 1` + "\n",
		`unterminated{l="v} 1` + "\n",
		`bad_escape{l="\q"} 1` + "\n",
		`dup{l="a",l="b"} 1` + "\n",
		"not_a_number NaNopes\n",
		"# TYPE late counter\nlate 1\n# TYPE late counter\n# HELP x\n" +
			"late 2\n# TYPE late gauge\n", // TYPE after samples
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n", // decreasing buckets
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",                       // +Inf != count
		"# TYPE h histogram\nh_sum 1\nh_count 1\n",                                                // no buckets
	}
	for _, page := range bad {
		if _, err := ParsePrometheus(strings.NewReader(page)); err == nil {
			t.Errorf("parser accepted malformed page:\n%s", page)
		}
	}
}
