package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a strict parser for the Prometheus text exposition format
// v0.0.4 — the format WritePrometheus renders. It exists for two callers:
// the registry's own round-trip tests, and the CI smoke (cmd/dagsmoke
// -metrics), which scrapes a live dagd and refuses malformed lines instead
// of grepping blindly. "Strict" means every non-comment line must parse
// fully: valid metric and label names, correctly quoted and escaped label
// values, a parseable float value, and histogram series attached to a
// # TYPE histogram family with intact +Inf/_sum/_count invariants.

// Sample is one parsed series sample.
type Sample struct {
	// Name is the sample's literal metric name — for histogram series this
	// includes the _bucket/_sum/_count suffix.
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is every sample sharing one base metric name, plus its metadata.
type Family struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary, untyped
	Samples []Sample
}

// Value returns the value of the single sample matching the given labels
// exactly (nil matches the empty label set), or false when absent.
func (f *Family) Value(labels map[string]string) (float64, bool) {
	for _, s := range f.Samples {
		if len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Sum adds up every sample of the family (histogram families sum only their
// _count series — "how many observations" — rather than double-counting
// buckets).
func (f *Family) Sum() float64 {
	var total float64
	for _, s := range f.Samples {
		if f.Type == typeHistogram && !strings.HasSuffix(s.Name, "_count") {
			continue
		}
		total += s.Value
	}
	return total
}

// ParsePrometheus strictly parses a text exposition page into families
// keyed by base metric name. Any malformed line fails the whole parse with
// its line number.
func ParsePrometheus(r io.Reader) (map[string]*Family, error) {
	families := make(map[string]*Family)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyFor(families, sample.Name)
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range families {
		if f.Type == typeHistogram {
			if err := checkHistogram(f); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", f.Name, err)
			}
		}
	}
	return families, nil
}

// familyFor resolves which family a sample belongs to: its own name unless
// that is a histogram-suffixed series of a declared histogram family.
func familyFor(families map[string]*Family, name string) *Family {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := families[base]; ok && f.Type == typeHistogram {
			return f
		}
	}
	f, ok := families[name]
	if !ok {
		f = &Family{Name: name, Type: "untyped"}
		families[name] = f
	}
	return f
}

func parseComment(line string, families map[string]*Family) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !nameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
		f := familyFor(families, fields[2])
		if len(fields) == 4 {
			f.Help = fields[3]
		}
	case "TYPE":
		if len(fields) != 4 || !nameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		name := fields[2]
		if f, ok := families[name]; ok && len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		familyFor(families, name).Type = fields[3]
	}
	return nil
}

// parseSample parses one `name{labels} value [timestamp]` line.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !nameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	// An optional trailing timestamp (int64 milliseconds) is permitted by
	// the format; dagd never emits one but a strict parser must not choke.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected a value (and optional timestamp) after %q, got %q", s.Name, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels parses a `{k="v",...}` block starting at in[0] == '{' and
// returns how many bytes it consumed.
func parseLabels(in string, out map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ' ' || in[i] == ',') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(in) && in[i] != '=' {
			i++
		}
		if i == len(in) {
			return 0, fmt.Errorf("unterminated label block %q", in)
		}
		name := in[start:i]
		if !labelRe.MatchString(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i++ // past '='
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("label %s value is not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return 0, fmt.Errorf("unterminated label value for %s", name)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return 0, fmt.Errorf("dangling escape in label %s", name)
				}
				switch in[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("unknown escape \\%c in label %s", in[i+1], name)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %s", name)
		}
		out[name] = val.String()
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistogram verifies the exposition invariants of one histogram
// family, per distinct label set: cumulative non-decreasing buckets, a +Inf
// bucket present and equal to _count, and a _sum sample present.
func checkHistogram(f *Family) error {
	type group struct {
		buckets []Sample
		sum     *Sample
		count   *Sample
	}
	groups := make(map[string]*group)
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%q,", k, labels[k])
		}
		return b.String()
	}
	for i := range f.Samples {
		s := f.Samples[i]
		g, ok := groups[keyOf(s.Labels)]
		if !ok {
			g = &group{}
			groups[keyOf(s.Labels)] = g
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			g.buckets = append(g.buckets, s)
		case strings.HasSuffix(s.Name, "_sum"):
			g.sum = &f.Samples[i]
		case strings.HasSuffix(s.Name, "_count"):
			g.count = &f.Samples[i]
		default:
			return fmt.Errorf("unexpected sample %s in histogram family", s.Name)
		}
	}
	for key, g := range groups {
		if g.sum == nil || g.count == nil {
			return fmt.Errorf("series %q lacks _sum or _count", key)
		}
		if len(g.buckets) == 0 {
			return fmt.Errorf("series %q has no buckets", key)
		}
		sort.Slice(g.buckets, func(i, j int) bool {
			a, _ := parseValue(g.buckets[i].Labels["le"])
			b, _ := parseValue(g.buckets[j].Labels["le"])
			return a < b
		})
		prev := math.Inf(-1)
		prevCount := -1.0
		for _, b := range g.buckets {
			le, err := parseValue(b.Labels["le"])
			if err != nil {
				return fmt.Errorf("series %q has unparseable le %q", key, b.Labels["le"])
			}
			if le <= prev {
				return fmt.Errorf("series %q has duplicate bucket bound %v", key, le)
			}
			if b.Value < prevCount {
				return fmt.Errorf("series %q bucket counts decrease at le=%v", key, le)
			}
			prev, prevCount = le, b.Value
		}
		last := g.buckets[len(g.buckets)-1]
		if !math.IsInf(mustValue(last.Labels["le"]), +1) {
			return fmt.Errorf("series %q lacks a +Inf bucket", key)
		}
		if last.Value != g.count.Value {
			return fmt.Errorf("series %q +Inf bucket %v != _count %v", key, last.Value, g.count.Value)
		}
	}
	return nil
}

func mustValue(s string) float64 {
	v, _ := parseValue(s)
	return v
}
