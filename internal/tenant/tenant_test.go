package tenant

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Name: strings.Repeat("x", MaxNameLen+1)},
		{Name: "has space"},
		{Name: "ctl\x01"},
		{Name: "w", Weight: -1},
		{Name: "w", Weight: MaxWeight + 1},
		{Name: "p", Priority: MaxPriorityMagnitude + 1},
		{Name: "p", Priority: -MaxPriorityMagnitude - 1},
		{Name: "q", MaxInFlight: -1},
		{Name: "q", MaxQueueDepth: -1},
		{Name: "r", SubmitRate: -0.5},
		{Name: "r", SubmitBurst: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("Validate(%+v) = %v, want ErrInvalidConfig", c, err)
		}
	}
	good := []Config{
		{Name: "a"},
		{Name: "a.b-c_d", Weight: 3, Priority: -2, MaxInFlight: 8, MaxQueueDepth: 64, SubmitRate: 0.5, SubmitBurst: 2},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
}

func TestRegistryInjectsDefault(t *testing.T) {
	r, err := NewRegistry(nil)
	if err != nil {
		t.Fatal(err)
	}
	d := r.Resolve("")
	if d.Name != Default || d.Weight != 1 {
		t.Fatalf("Resolve(\"\") = %+v, want catch-all default with weight 1", d)
	}
	if got := r.Resolve("never-configured"); got.Name != Default {
		t.Errorf("unknown tenant resolved to %q, want %q", got.Name, Default)
	}
	if n := len(r.Configs()); n != 1 {
		t.Errorf("empty registry has %d configs, want 1 (default)", n)
	}
}

func TestRegistryResolveAndDefaults(t *testing.T) {
	r, err := NewRegistry([]Config{
		{Name: "batch"},
		{Name: "interactive", Weight: 4, SubmitRate: 2.5}, // burst defaults to ceil(2.5)=3
		{Name: Default, MaxQueueDepth: 7},                 // operator-specified catch-all
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Resolve("interactive"); got.Weight != 4 || got.SubmitBurst != 3 {
		t.Errorf("interactive = %+v, want weight 4, burst 3", got)
	}
	if got := r.Resolve("batch"); got.Weight != 1 {
		t.Errorf("batch weight defaulted to %d, want 1", got.Weight)
	}
	// The configured default wins over the injected catch-all and still
	// catches unknown names.
	if got := r.Resolve("stranger"); got.Name != Default || got.MaxQueueDepth != 7 {
		t.Errorf("unknown tenant resolved to %+v, want configured default", got)
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	_, err := NewRegistry([]Config{{Name: "a"}, {Name: "a", Weight: 2}})
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("duplicate tenant accepted: %v", err)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Wrapper object form.
	p := write("wrapped.json", `{"tenants":[{"name":"a","weight":2},{"name":"b","priority":1}]}`)
	cfgs, err := LoadFile(p)
	if err != nil || len(cfgs) != 2 || cfgs[0].Name != "a" || cfgs[1].Priority != 1 {
		t.Fatalf("LoadFile(wrapped) = %+v, %v", cfgs, err)
	}

	// Bare array form.
	p = write("bare.json", `[{"name":"solo","submit_rate":1}]`)
	if cfgs, err = LoadFile(p); err != nil || len(cfgs) != 1 || cfgs[0].Name != "solo" {
		t.Fatalf("LoadFile(bare) = %+v, %v", cfgs, err)
	}

	for name, body := range map[string]string{
		"garbage.json":   `not json`,
		"badshape.json":  `{"other":true}`,
		"badtenant.json": `[{"name":""}]`,
		"dup.json":       `[{"name":"x"},{"name":"x"}]`,
	} {
		p := write(name, body)
		if _, err := LoadFile(p); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("LoadFile(%s) = %v, want ErrInvalidConfig", name, err)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("LoadFile(missing) = %v, want ErrInvalidConfig", err)
	}
}

func TestBucket(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	b := newBucketAt(2, 2, now) // 2 tokens/s, burst 2

	// Burst drains immediately.
	for i := 0; i < 2; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatalf("take %d refused with a full bucket", i)
		}
	}
	ok, retry := b.Take()
	if ok {
		t.Fatal("take succeeded on an empty bucket")
	}
	// One token accrues in 1/rate = 500ms.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 500ms]", retry)
	}

	// After the advertised wait, a take succeeds again.
	clock = clock.Add(retry)
	if ok, _ := b.Take(); !ok {
		t.Fatal("take refused after waiting the advertised retryAfter")
	}

	// Refill never exceeds burst: a long idle period grants 2, not 2000.
	clock = clock.Add(1000 * time.Second)
	granted := 0
	for {
		ok, _ := b.Take()
		if !ok {
			break
		}
		granted++
		if granted > 10 {
			t.Fatal("bucket granting far past burst")
		}
	}
	if granted != 2 {
		t.Fatalf("idle refill granted %d tokens, want burst=2", granted)
	}
}
