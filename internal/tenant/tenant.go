// Package tenant models the multi-tenant admission policy of the dagd
// service: who a submitter is, how much of the dispatch capacity they are
// entitled to, and how fast they may submit.
//
// A tenant is identified by the X-Tenant request header. Each configured
// tenant carries a weight (its share under the dispatcher's deficit-round-
// robin scheduler), a priority class (higher classes drain strictly first),
// per-tenant in-flight and queue-depth quotas, and a token-bucket submit
// rate limit. A Registry holds the full tenant set and always contains a
// catch-all "default" tenant: requests naming no tenant — or a tenant the
// operator never configured — are attributed to it, so one unknown client
// can never mint itself an unbounded number of queues.
//
// Configs load from a JSON file (dagd -tenants) shaped either as a bare
// array or as {"tenants": [...]}:
//
//	{"tenants": [
//	  {"name": "batch", "weight": 1, "max_queue_depth": 512},
//	  {"name": "interactive", "weight": 4, "priority": 1,
//	   "max_in_flight": 8, "submit_rate": 50, "submit_burst": 100}
//	]}
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Default is the name of the catch-all tenant every Registry contains.
// Submissions with no (or an unconfigured) tenant are attributed to it.
const Default = "default"

// Config bounds for sanity-checking operator input.
const (
	// MaxNameLen bounds a tenant name's length.
	MaxNameLen = 64
	// MaxWeight bounds the DRR weight so one tenant cannot configure an
	// effectively infinite quantum.
	MaxWeight = 1 << 16
	// MaxPriorityMagnitude bounds |priority|.
	MaxPriorityMagnitude = 1000
)

// ErrInvalidConfig marks every tenant-configuration failure (bad names,
// out-of-range weights, duplicate tenants, unreadable files).
var ErrInvalidConfig = errors.New("tenant: invalid config")

// Config is one tenant's admission policy. The zero value of every field
// except Name means "unlimited" or "service default".
type Config struct {
	// Name identifies the tenant; it is matched against the X-Tenant header
	// and recorded on every run the tenant submits.
	Name string `json:"name"`
	// Weight is the tenant's share under deficit round-robin: a weight-3
	// tenant drains three runs for every one a weight-1 tenant drains when
	// both have work queued. Zero means 1.
	Weight int `json:"weight,omitempty"`
	// Priority is the tenant's priority class. Classes are strict: no run
	// from a lower class is dispatched while a higher class has an eligible
	// queued run. Fairness (weights) applies within a class only.
	Priority int `json:"priority,omitempty"`
	// MaxInFlight caps how many of the tenant's runs may execute
	// concurrently. A tenant at its cap is skipped by the scheduler — its
	// queued work waits without blocking other tenants. Zero = unlimited.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// MaxQueueDepth caps the tenant's queued (not yet running) backlog;
	// submissions past it fail with quota_exceeded. Zero = the service-wide
	// default depth (dagd -queue).
	MaxQueueDepth int `json:"max_queue_depth,omitempty"`
	// SubmitRate is the sustained submissions/second the tenant may make,
	// enforced by a token bucket at admission; past it submissions fail
	// with rate_limited and a computed Retry-After. Zero = unlimited.
	SubmitRate float64 `json:"submit_rate,omitempty"`
	// SubmitBurst is the token-bucket capacity — how many submissions may
	// arrive back to back before the rate applies. Zero = max(1, ⌈rate⌉).
	SubmitBurst int `json:"submit_burst,omitempty"`
}

// Validate rejects structurally invalid configs with ErrInvalidConfig.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("%w: tenant with empty name", ErrInvalidConfig)
	}
	if len(c.Name) > MaxNameLen {
		return fmt.Errorf("%w: tenant name %q longer than %d bytes", ErrInvalidConfig, c.Name, MaxNameLen)
	}
	for _, r := range c.Name {
		if r <= ' ' || r == 0x7f {
			return fmt.Errorf("%w: tenant name %q contains whitespace or control characters", ErrInvalidConfig, c.Name)
		}
	}
	if c.Weight < 0 || c.Weight > MaxWeight {
		return fmt.Errorf("%w: tenant %s weight %d outside [0,%d]", ErrInvalidConfig, c.Name, c.Weight, MaxWeight)
	}
	if c.Priority < -MaxPriorityMagnitude || c.Priority > MaxPriorityMagnitude {
		return fmt.Errorf("%w: tenant %s priority %d outside [%d,%d]",
			ErrInvalidConfig, c.Name, c.Priority, -MaxPriorityMagnitude, MaxPriorityMagnitude)
	}
	if c.MaxInFlight < 0 {
		return fmt.Errorf("%w: tenant %s max_in_flight %d is negative", ErrInvalidConfig, c.Name, c.MaxInFlight)
	}
	if c.MaxQueueDepth < 0 {
		return fmt.Errorf("%w: tenant %s max_queue_depth %d is negative", ErrInvalidConfig, c.Name, c.MaxQueueDepth)
	}
	if c.SubmitRate < 0 {
		return fmt.Errorf("%w: tenant %s submit_rate %v is negative", ErrInvalidConfig, c.Name, c.SubmitRate)
	}
	if c.SubmitBurst < 0 {
		return fmt.Errorf("%w: tenant %s submit_burst %d is negative", ErrInvalidConfig, c.Name, c.SubmitBurst)
	}
	return nil
}

// withDefaults normalizes the zero values that mean "use a default".
func (c Config) withDefaults() Config {
	if c.Weight == 0 {
		c.Weight = 1
	}
	if c.SubmitRate > 0 && c.SubmitBurst == 0 {
		c.SubmitBurst = int(c.SubmitRate)
		if float64(c.SubmitBurst) < c.SubmitRate {
			c.SubmitBurst++ // ceil
		}
		if c.SubmitBurst < 1 {
			c.SubmitBurst = 1
		}
	}
	return c
}

// Registry is an immutable, validated tenant set. It always contains the
// catch-all Default tenant; Resolve never fails.
type Registry struct {
	byName map[string]Config
	names  []string // config order, default first if injected
}

// NewRegistry validates and normalizes cfgs into a Registry, injecting an
// unlimited catch-all Default tenant unless the operator configured one
// explicitly. A nil or empty cfgs yields the default-only registry.
func NewRegistry(cfgs []Config) (*Registry, error) {
	r := &Registry{byName: make(map[string]Config, len(cfgs)+1)}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if _, dup := r.byName[c.Name]; dup {
			return nil, fmt.Errorf("%w: tenant %q configured twice", ErrInvalidConfig, c.Name)
		}
		r.byName[c.Name] = c.withDefaults()
		r.names = append(r.names, c.Name)
	}
	if _, ok := r.byName[Default]; !ok {
		r.byName[Default] = Config{Name: Default}.withDefaults()
		r.names = append([]string{Default}, r.names...)
	}
	return r, nil
}

// Resolve maps a requested tenant name to its effective config: the named
// tenant's when configured, the catch-all Default's otherwise (including
// for the empty name). The returned Config's Name is the attribution the
// run should carry.
func (r *Registry) Resolve(name string) Config {
	if c, ok := r.byName[name]; ok {
		return c
	}
	return r.byName[Default]
}

// Configs returns every tenant config in registry order.
func (r *Registry) Configs() []Config {
	out := make([]Config, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, r.byName[n])
	}
	return out
}

// configFile is the on-disk shape of a -tenants file: either this wrapper
// object or a bare array of configs.
type configFile struct {
	Tenants []Config `json:"tenants"`
}

// LoadFile reads tenant configs from a JSON file — {"tenants":[...]} or a
// bare [...] — and validates them by building a throwaway Registry.
func LoadFile(path string) ([]Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: reading %s: %v", ErrInvalidConfig, path, err)
	}
	return parseConfigs(data, path)
}

func parseConfigs(data []byte, origin string) ([]Config, error) {
	var cfgs []Config
	if err := json.Unmarshal(data, &cfgs); err != nil {
		var wrapped configFile
		if err2 := json.Unmarshal(data, &wrapped); err2 != nil || wrapped.Tenants == nil {
			return nil, fmt.Errorf("%w: %s is neither a tenant array nor {\"tenants\":[...]}: %v", ErrInvalidConfig, origin, err)
		}
		cfgs = wrapped.Tenants
	}
	if _, err := NewRegistry(cfgs); err != nil {
		return nil, fmt.Errorf("%s: %w", origin, err)
	}
	return cfgs, nil
}

// Bucket is a token-bucket rate limiter: capacity `burst` tokens refilled
// at `rate` tokens/second. It is safe for concurrent use.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // test hook
}

// NewBucket returns a full bucket. rate and burst must be positive.
func NewBucket(rate float64, burst int) *Bucket {
	return &Bucket{rate: rate, burst: float64(burst), tokens: float64(burst), now: time.Now}
}

// newBucketAt is NewBucket with an injected clock, for tests.
func newBucketAt(rate float64, burst int, now func() time.Time) *Bucket {
	b := NewBucket(rate, burst)
	b.now = now
	return b
}

// Take consumes one token if available. When the bucket is empty it
// reports ok=false and how long until the next token accrues — the
// Retry-After the API surfaces on 429 rate_limited.
func (b *Bucket) Take() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
			b.tokens += elapsed * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	// Seconds until the deficit to one whole token refills.
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}
