package run_test

import (
	"testing"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/storetest"
)

// TestStoreConformance runs the shared store conformance suite against the
// in-memory backend. The WAL backend runs the identical suite from
// internal/store/wal, which is what keeps the two implementations
// observably interchangeable.
func TestStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) run.Store {
		s := run.NewMemStore()
		t.Cleanup(func() { s.Close() })
		return s
	})
}
