package run

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Store is the run-tracking abstraction every service layer wires against:
// the dispatcher records lifecycle transitions through it and the API layer
// reads snapshots from it. Two implementations exist — the in-memory
// MemStore below and the WAL-backed store in internal/store/wal — and both
// must satisfy the shared conformance suite in internal/storetest, so
// list/pagination order, eviction, and Await semantics read identically
// regardless of backend.
//
// Mutating methods return an error when the backend fails to record the
// transition durably; the in-memory implementation never does.
type Store interface {
	// Create registers a new queued run for spec and returns its snapshot.
	Create(spec Spec) (Run, error)
	// Get returns a snapshot of the run with the given ID.
	Get(id string) (Run, error)
	// List returns snapshots of every run in (CreatedAt, ID) order — see
	// CompareRuns, the one comparator pagination and eviction share.
	List() []Run
	// Len returns the total number of tracked runs.
	Len() int
	// CountByState returns how many runs are in each state.
	CountByState() map[State]int
	// Begin transitions a queued run to running and records the
	// dispatcher's cancel hook. dispatchedAt is the moment the dispatcher
	// popped the run off its queue, stamped on the run alongside the
	// Begin-time StartedAt. worker attributes the execution ("" for
	// embedded in-process dispatch, the registered worker name for fleet
	// leases).
	Begin(id string, dispatchedAt time.Time, worker string, cancel context.CancelFunc) (Run, error)
	// Finish transitions a running run to its terminal state.
	Finish(id string, result *Result, err error) (Run, error)
	// Requeue moves a running run back to queued within the same process —
	// the lease-expiry path: a remote worker stopped heartbeating, so the
	// run is re-admitted with Restarts incremented, execution-side fields
	// (DispatchedAt, StartedAt, Worker, Result, Error) cleared, and any
	// Await waiters left blocked until the retry reaches a terminal state.
	// Returns ErrNotRunning when the run is not running.
	Requeue(id string) (Run, error)
	// Cancel requests cancellation (queued → cancelled immediately;
	// running → cancel hook invoked).
	Cancel(id string) (Run, error)
	// Await blocks until the run is terminal or ctx is done, returning the
	// latest snapshot either way.
	Await(ctx context.Context, id string) (Run, error)
	// Delete removes a run entirely (submit-rollback path; see
	// MemStore.Delete for the semantics).
	Delete(id string) error
	// EvictTerminal deletes the oldest-finished terminal runs so at most
	// keep remain, returning how many were evicted.
	EvictTerminal(keep int) int
	// Close releases backend resources (file handles, buffers). The
	// in-memory store's Close is a no-op.
	Close() error
}

// CompareRuns is the single (CreatedAt, ID) comparator behind every place
// runs are ordered: MemStore.List's sort, eviction tie-breaking, and the
// API layer's pagination-cursor filter. It returns -1, 0, or +1. Keeping
// one comparator (rather than hand-rolled comparisons per call site) is
// what guarantees a cursor walk visits exactly the runs List would return —
// the orders cannot drift apart.
//
// CreatedAt is compared as UnixNano because that is what pagination cursors
// encode; Create strips monotonic readings (Round(0)) so the two clocks
// agree.
func CompareRuns(a, b Run) int {
	return comparePosition(a.CreatedAt.UnixNano(), a.ID, b.CreatedAt.UnixNano(), b.ID)
}

// CompareToCursor compares r's pagination position to a decoded
// (UnixNano, ID) cursor using the same order as CompareRuns. A run belongs
// on pages after the cursor iff the result is > 0.
func CompareToCursor(r Run, nanos int64, id string) int {
	return comparePosition(r.CreatedAt.UnixNano(), r.ID, nanos, id)
}

func comparePosition(aNanos int64, aID string, bNanos int64, bID string) int {
	switch {
	case aNanos < bNanos:
		return -1
	case aNanos > bNanos:
		return 1
	}
	return strings.Compare(aID, bID)
}

// numShards is the number of independent mutex-guarded maps the store
// spreads runs across. IDs hash uniformly, so contention on any one shard
// is ~1/numShards of a single-lock design under concurrent API traffic.
const numShards = 16

// MemStore is the in-memory, mutex-sharded Store implementation. All
// methods are safe for concurrent use and return snapshot copies, never
// live internal state. It is both the default backend (dagd without
// -data-dir) and the in-memory half of the WAL-backed store, which replays
// its log into a MemStore on boot via Restore.
type MemStore struct {
	shards [numShards]shard
	seq    atomic.Uint64
}

var _ Store = (*MemStore)(nil)

type shard struct {
	mu   sync.RWMutex
	runs map[string]*tracked
}

// tracked is the store's live record for one run: the run itself, the
// dispatcher's cancel hook while the run is in flight, and a done channel
// closed exactly once when the run enters a terminal state (or is deleted
// before reaching one), which is what Await long-polls block on.
type tracked struct {
	run    Run
	cancel context.CancelFunc
	done   chan struct{}
}

// NewMemStore returns an empty MemStore.
func NewMemStore() *MemStore {
	s := &MemStore{}
	for i := range s.shards {
		s.shards[i].runs = make(map[string]*tracked)
	}
	return s
}

func (s *MemStore) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &s.shards[h.Sum32()%numShards]
}

// newID returns a unique run ID: a monotonic sequence number (uniqueness)
// plus random bytes (avoids accidental collisions with IDs recovered from a
// previous process's WAL, whose sequence numbers restart from zero).
func (s *MemStore) newID() string {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; the sequence
		// number alone still guarantees in-process uniqueness.
		copy(b[:], "0000")
	}
	return fmt.Sprintf("r%06d-%s", s.seq.Add(1), hex.EncodeToString(b[:]))
}

// Create registers a new queued run for spec and returns its snapshot.
// CreatedAt is stripped of its monotonic reading (Round(0)) so that
// List's sort order and the API layer's UnixNano-based pagination cursors
// compare the same clock — otherwise a wall-clock step between creations
// could make paginated walks silently skip runs. The error is always nil;
// it exists for the Store interface, whose durable implementations can
// fail here.
func (s *MemStore) Create(spec Spec) (Run, error) {
	r := Run{
		ID:        s.newID(),
		Spec:      spec,
		State:     StateQueued,
		CreatedAt: time.Now().Round(0),
	}
	sh := s.shardFor(r.ID)
	sh.mu.Lock()
	sh.runs[r.ID] = &tracked{run: r, done: make(chan struct{})}
	sh.mu.Unlock()
	return r, nil
}

// Restore upserts a run snapshot exactly as given — ID, timestamps, state
// and all. It exists for WAL replay: the durable store rebuilds its
// in-memory state by restoring each surviving run on boot. Terminal
// restores arrive with their done channel already closed so Await returns
// immediately; restoring a terminal snapshot over a live entry releases
// its waiters.
func (s *MemStore) Restore(r Run) {
	sh := s.shardFor(r.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.runs[r.ID]
	if !ok {
		t = &tracked{done: make(chan struct{})}
		sh.runs[r.ID] = t
		// Keep the ID sequence moving so fresh Create IDs don't reuse the
		// low sequence numbers restored runs already occupy (the random
		// suffix would disambiguate, but distinct prefixes read better).
		s.seq.Add(1)
	}
	if r.State.Terminal() && !t.run.State.Terminal() {
		close(t.done)
	}
	t.run = r
}

// Delete removes a run entirely. It exists so a submitter can roll back a
// Create whose queue hand-off failed — before the ID has been revealed to
// anyone — and it succeeds regardless of state. Deleting a non-terminal
// run releases any Await waiters with the run's last (still non-terminal)
// snapshot, so Delete must not be used on runs whose IDs callers may
// already be watching.
func (s *MemStore) Delete(id string) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if t, ok := sh.runs[id]; ok {
		if !t.run.State.Terminal() {
			close(t.done) // release any waiter; they'll re-read the last snapshot
		}
		delete(sh.runs, id)
	}
	sh.mu.Unlock()
	return nil
}

// Get returns a snapshot of the run with the given ID.
func (s *MemStore) Get(id string) (Run, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	t, ok := sh.runs[id]
	if !ok {
		return Run{}, ErrNotFound
	}
	return t.run, nil
}

// List returns snapshots of every run in CompareRuns order: oldest first,
// ties broken by ID so the order is stable.
func (s *MemStore) List() []Run {
	var out []Run
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, t := range sh.runs {
			out = append(out, t.run)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return CompareRuns(out[i], out[j]) < 0 })
	return out
}

// Len returns the total number of tracked runs.
func (s *MemStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.runs)
		sh.mu.RUnlock()
	}
	return n
}

// EvictTerminal deletes the oldest-finished terminal runs so that at most
// keep remain, and returns how many were evicted. Queued and running runs
// are never touched. keep <= 0 is a no-op (unlimited retention). The
// dispatcher calls this after each finish so a long-running dagd holds a
// bounded history instead of growing without bound.
func (s *MemStore) EvictTerminal(keep int) int {
	return len(s.EvictTerminalIDs(keep))
}

// EvictTerminalIDs is EvictTerminal returning the evicted IDs instead of a
// count, so a durable wrapper can log a deletion record per evicted run.
// Eviction order is (FinishedAt, CreatedAt, ID): oldest-finished first,
// with ties broken by the same CompareRuns order pagination uses, so the
// victim set is deterministic.
func (s *MemStore) EvictTerminalIDs(keep int) []string {
	if keep <= 0 {
		return nil
	}
	var terminal []Run
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, t := range sh.runs {
			if t.run.State.Terminal() && t.run.FinishedAt != nil {
				terminal = append(terminal, t.run)
			}
		}
		sh.mu.RUnlock()
	}
	excess := len(terminal) - keep
	if excess <= 0 {
		return nil
	}
	sort.Slice(terminal, func(i, j int) bool {
		if !terminal[i].FinishedAt.Equal(*terminal[j].FinishedAt) {
			return terminal[i].FinishedAt.Before(*terminal[j].FinishedAt)
		}
		return CompareRuns(terminal[i], terminal[j]) < 0
	})
	var evicted []string
	for _, f := range terminal[:excess] {
		sh := s.shardFor(f.ID)
		sh.mu.Lock()
		// Re-check under the write lock: a concurrent evictor may have
		// removed it already.
		if t, ok := sh.runs[f.ID]; ok && t.run.State.Terminal() {
			delete(sh.runs, f.ID)
			evicted = append(evicted, f.ID)
		}
		sh.mu.Unlock()
	}
	return evicted
}

// CountByState returns how many runs are in each state.
func (s *MemStore) CountByState() map[State]int {
	counts := make(map[State]int)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, t := range sh.runs {
			counts[t.run.State]++
		}
		sh.mu.RUnlock()
	}
	return counts
}

// Begin transitions a queued run to running, records the dispatcher's
// cancel hook, and stamps DispatchedAt and StartedAt. It returns
// ErrNotQueued (without touching the run) if the run is in any other state
// — in particular if it was cancelled while still in the queue.
func (s *MemStore) Begin(id string, dispatchedAt time.Time, worker string, cancel context.CancelFunc) (Run, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.runs[id]
	if !ok {
		return Run{}, ErrNotFound
	}
	if t.run.State != StateQueued {
		return t.run, fmt.Errorf("%w (state %s)", ErrNotQueued, t.run.State)
	}
	now := time.Now()
	t.run.State = StateRunning
	t.run.DispatchedAt = &dispatchedAt
	t.run.StartedAt = &now
	t.run.Worker = worker
	t.cancel = cancel
	return t.run, nil
}

// Requeue moves a running run back to queued: Restarts is incremented and
// the execution-side fields (DispatchedAt, StartedAt, Worker, Result,
// Error) are cleared so the retry's snapshot reads like a fresh queued run.
// The done channel is left open — Await waiters keep waiting for the retry
// to reach a terminal state, exactly as they would across a crash-recovery
// requeue. Returns ErrNotRunning unless the run is currently running.
func (s *MemStore) Requeue(id string) (Run, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.runs[id]
	if !ok {
		return Run{}, ErrNotFound
	}
	if t.run.State != StateRunning {
		return t.run, fmt.Errorf("%w (state %s)", ErrNotRunning, t.run.State)
	}
	t.run.State = StateQueued
	t.run.Restarts++
	t.run.DispatchedAt = nil
	t.run.StartedAt = nil
	t.run.Worker = ""
	t.run.Result = nil
	t.run.Error = ""
	t.cancel = nil
	return t.run, nil
}

// Finish transitions a running run to its terminal state: cancelled if err
// is a context cancellation, failed for any other error, succeeded
// otherwise. The result (may be nil on error) and FinishedAt are recorded.
func (s *MemStore) Finish(id string, result *Result, err error) (Run, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.runs[id]
	if !ok {
		return Run{}, ErrNotFound
	}
	if t.run.State != StateRunning {
		return t.run, fmt.Errorf("%w (state %s)", ErrNotRunning, t.run.State)
	}
	now := time.Now()
	t.run.FinishedAt = &now
	t.run.Result = result
	t.cancel = nil
	switch {
	case err == nil:
		t.run.State = StateSucceeded
	case errors.Is(err, context.Canceled):
		t.run.State = StateCancelled
		t.run.Error = err.Error()
	default:
		t.run.State = StateFailed
		t.run.Error = err.Error()
	}
	redactEdges(&t.run)
	close(t.done)
	return t.run, nil
}

// RedactTerminalSpec applies the terminal-snapshot edge redaction below to
// a run owned by the caller. It exists for the WAL store's recovery paths,
// which synthesize terminal snapshots (crash-cancelled runs, specs failing
// re-validation) outside Finish/Cancel and must uphold the same
// retained-memory bound.
func RedactTerminalSpec(r *Run) { redactEdges(r) }

// redactEdges drops the explicit edge list from a terminal snapshot: it
// can be ~64MB per run, and retaining it for thousands of finished runs
// (or serializing it into every list response) would let submitters pin
// unbounded memory. Execution is done — only the run's outcome needs to
// survive. SpecRedacted marks the snapshot so callers can tell the spec
// no longer describes the executed graph (resubmitting it as-is would
// run an edgeless graph).
func redactEdges(r *Run) {
	if len(r.Spec.Edges) == 0 {
		return
	}
	r.Spec.Edges = nil
	r.SpecRedacted = true
}

// Await blocks until the run reaches a terminal state or ctx is done and
// returns the latest snapshot in either case (so a timed-out wait still
// reports current progress). It fails only when id is unknown at call
// time. This is what backs the HTTP API's ?wait= long-poll: callers park
// on the run's done channel instead of busy-polling Get.
func (s *MemStore) Await(ctx context.Context, id string) (Run, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	t, ok := sh.runs[id]
	var r Run
	if ok {
		r = t.run
	}
	sh.mu.RUnlock()
	if !ok {
		return Run{}, ErrNotFound
	}
	// t stays valid even if the run leaves the map while we wait: eviction
	// only removes terminal (never-again-mutated) entries, and Delete (the
	// submit-rollback path) closes done so waiters wake rather than hang —
	// they return the last snapshot taken below under the shard lock.
	if r.State.Terminal() {
		return r, nil
	}
	select {
	case <-ctx.Done():
	case <-t.done:
	}
	sh.mu.RLock()
	r = t.run
	sh.mu.RUnlock()
	return r, nil
}

// Cancel requests cancellation of a run. A queued run moves directly to
// cancelled (a dispatcher that later pops it will find Begin refusing). A
// running run has its cancel hook invoked; it stays running until the
// dispatcher observes the cancellation and calls Finish, at which point it
// lands in cancelled. Cancelling a terminal run returns ErrTerminal.
func (s *MemStore) Cancel(id string) (Run, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.runs[id]
	if !ok {
		return Run{}, ErrNotFound
	}
	switch t.run.State {
	case StateQueued:
		now := time.Now()
		t.run.State = StateCancelled
		t.run.Error = "cancelled while queued"
		t.run.FinishedAt = &now
		redactEdges(&t.run)
		close(t.done)
		return t.run, nil
	case StateRunning:
		if t.cancel != nil {
			t.cancel()
		}
		return t.run, nil
	default:
		return t.run, fmt.Errorf("%w (state %s)", ErrTerminal, t.run.State)
	}
}

// Close implements Store; the in-memory store holds no external resources.
func (s *MemStore) Close() error { return nil }
