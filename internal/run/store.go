package run

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// numShards is the number of independent mutex-guarded maps the store
// spreads runs across. IDs hash uniformly, so contention on any one shard
// is ~1/numShards of a single-lock design under concurrent API traffic.
const numShards = 16

// Store is an in-memory, mutex-sharded run store. All methods are safe for
// concurrent use and return snapshot copies, never live internal state.
type Store struct {
	shards [numShards]shard
	seq    atomic.Uint64
}

type shard struct {
	mu   sync.RWMutex
	runs map[string]*tracked
}

// tracked is the store's live record for one run: the run itself, the
// dispatcher's cancel hook while the run is in flight, and a done channel
// closed exactly once when the run enters a terminal state (or is deleted
// before reaching one), which is what Await long-polls block on.
type tracked struct {
	run    Run
	cancel context.CancelFunc
	done   chan struct{}
}

// NewStore returns an empty Store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].runs = make(map[string]*tracked)
	}
	return s
}

func (s *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &s.shards[h.Sum32()%numShards]
}

// newID returns a unique run ID: a monotonic sequence number (uniqueness)
// plus random bytes (avoids accidental collisions across restarts of a
// future persistent store).
func (s *Store) newID() string {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; the sequence
		// number alone still guarantees in-process uniqueness.
		copy(b[:], "0000")
	}
	return fmt.Sprintf("r%06d-%s", s.seq.Add(1), hex.EncodeToString(b[:]))
}

// Create registers a new queued run for spec and returns its snapshot.
// CreatedAt is stripped of its monotonic reading (Round(0)) so that
// List's sort order and the API layer's UnixNano-based pagination cursors
// compare the same clock — otherwise a wall-clock step between creations
// could make paginated walks silently skip runs.
func (s *Store) Create(spec Spec) Run {
	r := Run{
		ID:        s.newID(),
		Spec:      spec,
		State:     StateQueued,
		CreatedAt: time.Now().Round(0),
	}
	sh := s.shardFor(r.ID)
	sh.mu.Lock()
	sh.runs[r.ID] = &tracked{run: r, done: make(chan struct{})}
	sh.mu.Unlock()
	return r
}

// Delete removes a run entirely. It exists so a submitter can roll back a
// Create whose queue hand-off failed — before the ID has been revealed to
// anyone — and it succeeds regardless of state. Deleting a non-terminal
// run releases any Await waiters with the run's last (still non-terminal)
// snapshot, so Delete must not be used on runs whose IDs callers may
// already be watching.
func (s *Store) Delete(id string) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if t, ok := sh.runs[id]; ok {
		if !t.run.State.Terminal() {
			close(t.done) // release any waiter; they'll re-read the last snapshot
		}
		delete(sh.runs, id)
	}
	sh.mu.Unlock()
}

// Get returns a snapshot of the run with the given ID.
func (s *Store) Get(id string) (Run, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	t, ok := sh.runs[id]
	if !ok {
		return Run{}, ErrNotFound
	}
	return t.run, nil
}

// List returns snapshots of every run, oldest first (ties broken by ID so
// the order is stable).
func (s *Store) List() []Run {
	var out []Run
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, t := range sh.runs {
			out = append(out, t.run)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the total number of tracked runs.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.runs)
		sh.mu.RUnlock()
	}
	return n
}

// EvictTerminal deletes the oldest-finished terminal runs so that at most
// keep remain, and returns how many were evicted. Queued and running runs
// are never touched. keep <= 0 is a no-op (unlimited retention). The
// dispatcher calls this after each finish so a long-running dagd holds a
// bounded history instead of growing without bound.
func (s *Store) EvictTerminal(keep int) int {
	if keep <= 0 {
		return 0
	}
	type finished struct {
		id string
		at time.Time
	}
	var terminal []finished
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, t := range sh.runs {
			if t.run.State.Terminal() && t.run.FinishedAt != nil {
				terminal = append(terminal, finished{id, *t.run.FinishedAt})
			}
		}
		sh.mu.RUnlock()
	}
	excess := len(terminal) - keep
	if excess <= 0 {
		return 0
	}
	sort.Slice(terminal, func(i, j int) bool { return terminal[i].at.Before(terminal[j].at) })
	evicted := 0
	for _, f := range terminal[:excess] {
		sh := s.shardFor(f.id)
		sh.mu.Lock()
		// Re-check under the write lock: a concurrent evictor may have
		// removed it already.
		if t, ok := sh.runs[f.id]; ok && t.run.State.Terminal() {
			delete(sh.runs, f.id)
			evicted++
		}
		sh.mu.Unlock()
	}
	return evicted
}

// CountByState returns how many runs are in each state.
func (s *Store) CountByState() map[State]int {
	counts := make(map[State]int)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, t := range sh.runs {
			counts[t.run.State]++
		}
		sh.mu.RUnlock()
	}
	return counts
}

// Begin transitions a queued run to running, records the dispatcher's
// cancel hook, and stamps StartedAt. It returns ErrNotQueued (without
// touching the run) if the run is in any other state — in particular if it
// was cancelled while still in the queue.
func (s *Store) Begin(id string, cancel context.CancelFunc) (Run, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.runs[id]
	if !ok {
		return Run{}, ErrNotFound
	}
	if t.run.State != StateQueued {
		return t.run, fmt.Errorf("%w (state %s)", ErrNotQueued, t.run.State)
	}
	now := time.Now()
	t.run.State = StateRunning
	t.run.StartedAt = &now
	t.cancel = cancel
	return t.run, nil
}

// Finish transitions a running run to its terminal state: cancelled if err
// is a context cancellation, failed for any other error, succeeded
// otherwise. The result (may be nil on error) and FinishedAt are recorded.
func (s *Store) Finish(id string, result *Result, err error) (Run, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.runs[id]
	if !ok {
		return Run{}, ErrNotFound
	}
	if t.run.State != StateRunning {
		return t.run, fmt.Errorf("%w (state %s)", ErrNotRunning, t.run.State)
	}
	now := time.Now()
	t.run.FinishedAt = &now
	t.run.Result = result
	t.cancel = nil
	switch {
	case err == nil:
		t.run.State = StateSucceeded
	case errors.Is(err, context.Canceled):
		t.run.State = StateCancelled
		t.run.Error = err.Error()
	default:
		t.run.State = StateFailed
		t.run.Error = err.Error()
	}
	redactEdges(&t.run)
	close(t.done)
	return t.run, nil
}

// redactEdges drops the explicit edge list from a terminal snapshot: it
// can be ~64MB per run, and retaining it for thousands of finished runs
// (or serializing it into every list response) would let submitters pin
// unbounded memory. Execution is done — only the run's outcome needs to
// survive. SpecRedacted marks the snapshot so callers can tell the spec
// no longer describes the executed graph (resubmitting it as-is would
// run an edgeless graph).
func redactEdges(r *Run) {
	if len(r.Spec.Edges) == 0 {
		return
	}
	r.Spec.Edges = nil
	r.SpecRedacted = true
}

// Await blocks until the run reaches a terminal state or ctx is done and
// returns the latest snapshot in either case (so a timed-out wait still
// reports current progress). It fails only when id is unknown at call
// time. This is what backs the HTTP API's ?wait= long-poll: callers park
// on the run's done channel instead of busy-polling Get.
func (s *Store) Await(ctx context.Context, id string) (Run, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	t, ok := sh.runs[id]
	var r Run
	if ok {
		r = t.run
	}
	sh.mu.RUnlock()
	if !ok {
		return Run{}, ErrNotFound
	}
	// t stays valid even if the run leaves the map while we wait: eviction
	// only removes terminal (never-again-mutated) entries, and Delete (the
	// submit-rollback path) closes done so waiters wake rather than hang —
	// they return the last snapshot taken below under the shard lock.
	if r.State.Terminal() {
		return r, nil
	}
	select {
	case <-ctx.Done():
	case <-t.done:
	}
	sh.mu.RLock()
	r = t.run
	sh.mu.RUnlock()
	return r, nil
}

// Cancel requests cancellation of a run. A queued run moves directly to
// cancelled (a dispatcher that later pops it will find Begin refusing). A
// running run has its cancel hook invoked; it stays running until the
// dispatcher observes the cancellation and calls Finish, at which point it
// lands in cancelled. Cancelling a terminal run returns ErrTerminal.
func (s *Store) Cancel(id string) (Run, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.runs[id]
	if !ok {
		return Run{}, ErrNotFound
	}
	switch t.run.State {
	case StateQueued:
		now := time.Now()
		t.run.State = StateCancelled
		t.run.Error = "cancelled while queued"
		t.run.FinishedAt = &now
		redactEdges(&t.run)
		close(t.done)
		return t.run, nil
	case StateRunning:
		if t.cancel != nil {
			t.cancel()
		}
		return t.run, nil
	default:
		return t.run, fmt.Errorf("%w (state %s)", ErrTerminal, t.run.State)
	}
}
