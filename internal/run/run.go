// Package run models the lifecycle of one DAG execution request inside the
// dagd service and defines the Store abstraction for tracking many of them
// concurrently, with an in-memory, mutex-sharded implementation (MemStore).
// A durable, WAL-backed implementation lives in internal/store/wal.
//
// A run moves through the states
//
//	queued → running → succeeded | failed | cancelled
//
// where the three right-hand states are terminal. A queued run can also jump
// straight to cancelled if the caller cancels it before a dispatcher picks
// it up. All transitions are serialized per run by the store, so callers
// never observe a half-applied transition.
//
// One additional transition exists only across process restarts: a run that
// was queued or running when a WAL-backed dagd crashed is re-admitted as
// queued on the next boot (interrupted → queued), with Run.Restarts counting
// how many times that happened.
package run

import (
	"errors"
	"fmt"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/sched"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/tenant"
)

// State is a run's lifecycle state.
type State int32

const (
	// StateQueued means the run is waiting in the dispatch queue.
	StateQueued State = iota
	// StateRunning means a dispatcher is executing the run.
	StateRunning
	// StateSucceeded means the run finished and its self-check matched.
	StateSucceeded
	// StateFailed means generation or execution returned an error.
	StateFailed
	// StateCancelled means the run was cancelled before or during execution.
	StateCancelled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateSucceeded:
		return "succeeded"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// MarshalText implements encoding.TextMarshaler so states serialize as
// their lowercase names in JSON.
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *State) UnmarshalText(text []byte) error {
	parsed, err := ParseState(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// ParseState converts a state name back to a State.
func ParseState(name string) (State, error) {
	for _, s := range []State{StateQueued, StateRunning, StateSucceeded, StateFailed, StateCancelled} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("run: unknown state %q", name)
}

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// Spec is the serializable description of one run request: the generator
// config plus the execution knobs. Its JSON form is the POST /v1/runs body.
type Spec struct {
	gen.Config
	Workload string `json:"workload,omitempty"` // registered workload name; "" = the default (pathcount)
	Work     int    `json:"work,omitempty"`     // busy-work iterations per node (Nabbit W)
	Workers  int    `json:"workers,omitempty"`  // per-run worker pool size; 0 = service default
	// ParallelWork enables intra-node parallelism (Nabbit UseParallelNodes):
	// each node's Work iterations are split into sub-tasks that idle workers
	// steal, instead of burning on one worker. Requires a workload that
	// separates its busy-work from its value recurrence
	// (sched.SplitComputable — all built-ins qualify); not valid for the
	// dynamic shape.
	ParallelWork bool `json:"parallel_work,omitempty"`
	// Tenant is the owning tenant's name. The dispatcher stamps it at
	// admission from the resolved X-Tenant identity (never trusted from the
	// request body), it rides every WAL record, and crash recovery requeues
	// the run into this tenant's queue. Empty on legacy records; replay
	// treats those as the catch-all "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the tenant's priority class at admission time, stamped by
	// the dispatcher alongside Tenant. Recorded for attribution; scheduling
	// always uses the tenant's current configured class.
	Priority int `json:"priority,omitempty"`
}

// Spec validation bounds. The service executes untrusted specs, so sizes
// are capped to keep a single request from exhausting memory.
const (
	MaxNodes    = 1 << 20 // total node cap for any shape (a growth bound for dynamic)
	MaxEdges    = 1 << 22 // edge cap (expected for random, literal for explicit, growth bound for dynamic)
	MaxWork     = 1 << 26 // per-node busy-work cap
	MaxWorkers  = 1024
	MaxDynWidth = 64 // max per-node branching factor for the dynamic shape
)

// Admission sentinels. Every Validate failure wraps exactly one of these,
// so the API layer can map errors to machine-readable codes in one place
// instead of pattern-matching messages.
var (
	// ErrInvalidSpec marks structurally invalid specs: bad shapes, bounds
	// violations, and malformed explicit graphs (self-loops, duplicate or
	// out-of-range edges, cycles).
	ErrInvalidSpec = errors.New("run: invalid spec")
	// ErrUnknownWorkload marks specs naming a workload absent from the
	// registry.
	ErrUnknownWorkload = errors.New("run: unknown workload")
)

// Validate checks spec against shape-specific and service-wide bounds.
// Failures wrap ErrInvalidSpec or ErrUnknownWorkload. Unknown workload
// names fail admission here (HTTP 400), never inside a dispatcher; the
// empty workload means the registry default.
func (s Spec) Validate() error {
	if err := s.validateShape(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	if s.Work < 0 || s.Work > MaxWork {
		return fmt.Errorf("%w: work %d outside [0,%d]", ErrInvalidSpec, s.Work, MaxWork)
	}
	if s.Workers < 0 || s.Workers > MaxWorkers {
		return fmt.Errorf("%w: workers %d outside [0,%d]", ErrInvalidSpec, s.Workers, MaxWorkers)
	}
	// The dispatcher stamps Tenant with a registry-resolved name before
	// validation; this bound only guards direct store users (and replayed
	// logs) against junk attribution strings growing every WAL record.
	if len(s.Tenant) > tenant.MaxNameLen {
		return fmt.Errorf("%w: tenant name longer than %d bytes", ErrInvalidSpec, tenant.MaxNameLen)
	}
	w, err := sched.LookupWorkload(s.Workload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnknownWorkload, err)
	}
	if s.ParallelWork {
		if s.Shape == gen.Dynamic {
			return fmt.Errorf("%w: parallel_work is not supported for the dynamic shape", ErrInvalidSpec)
		}
		if _, ok := w.(sched.SplitComputable); !ok {
			return fmt.Errorf("%w: workload %s cannot split per-node work (no pure compute hook)", ErrInvalidSpec, w.Name())
		}
	}
	return nil
}

func (s Spec) validateShape() error {
	if s.Shape != gen.Explicit && len(s.Edges) > 0 {
		return fmt.Errorf("edges list is only valid for the explicit shape, not %v", s.Shape)
	}
	switch s.Shape {
	case gen.Random:
		if s.Nodes < 2 || s.Nodes > MaxNodes {
			return fmt.Errorf("random spec needs 2 <= nodes <= %d, got %d", MaxNodes, s.Nodes)
		}
		if s.EdgeProb < 0 || s.EdgeProb > 1 {
			return fmt.Errorf("edge probability %v outside [0,1]", s.EdgeProb)
		}
		// The node cap alone doesn't bound memory: a dense random graph
		// has ~p·n(n-1)/2 edges, quadratic in n.
		if expected := s.EdgeProb * float64(s.Nodes) * float64(s.Nodes-1) / 2; expected > MaxEdges {
			return fmt.Errorf("random spec expects ~%.0f edges (p·n(n-1)/2), cap is %d — lower nodes or p", expected, MaxEdges)
		}
	case gen.Pipeline:
		if s.Stages < 1 || s.Width < 1 {
			return fmt.Errorf("pipeline spec needs stages >= 1 and width >= 1, got %dx%d", s.Stages, s.Width)
		}
		// Overflow-safe form of stages*width+2 > MaxNodes: the naive product
		// wraps negative for huge JSON values (stages=width≈2^31.5) and
		// would bypass the cap entirely.
		if s.Stages > (MaxNodes-2)/s.Width {
			return fmt.Errorf("pipeline %dx%d exceeds the %d-node cap", s.Stages, s.Width, MaxNodes)
		}
	case gen.Chain:
		if s.Nodes < 1 || s.Nodes > MaxNodes {
			return fmt.Errorf("chain spec needs 1 <= nodes <= %d, got %d", MaxNodes, s.Nodes)
		}
	case gen.Dynamic:
		// The final size of a dynamic graph is unknowable at admission — the
		// graph is discovered at runtime — so MaxNodes/MaxEdges are enforced
		// as growth bounds during execution (gen.ErrGrowthBound) rather than
		// here. Only parameters that guarantee failure are rejected up front.
		if s.Stages < 1 || s.Stages > MaxNodes-1 {
			return fmt.Errorf("dynamic spec needs 1 <= stages <= %d, got %d", MaxNodes-1, s.Stages)
		}
		if s.Width < 1 || s.Width > MaxDynWidth {
			return fmt.Errorf("dynamic spec needs 1 <= width <= %d, got %d", MaxDynWidth, s.Width)
		}
		if s.EdgeProb < 0 || s.EdgeProb > 1 {
			return fmt.Errorf("edge probability %v outside [0,1]", s.EdgeProb)
		}
		if s.Nodes != 0 {
			return fmt.Errorf("dynamic spec must not set nodes (the graph is discovered at runtime), got %d", s.Nodes)
		}
	case gen.Explicit:
		if s.Nodes < 1 || s.Nodes > MaxNodes {
			return fmt.Errorf("explicit spec needs 1 <= nodes <= %d, got %d", MaxNodes, s.Nodes)
		}
		if len(s.Edges) > MaxEdges {
			return fmt.Errorf("explicit spec has %d edges, cap is %d", len(s.Edges), MaxEdges)
		}
		// Build the graph once at admission so self-loops, duplicate and
		// out-of-range edges, and cycles (the Builder's Kahn pass) are all
		// rejected before the spec can ever reach a dispatcher. The build
		// is O(nodes+edges), the same cost the dispatcher pays again at
		// execution — acceptable for the hard bounds above.
		if _, err := gen.ExplicitDAG(s.Nodes, s.Edges); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown dag shape %v", s.Shape)
	}
	return nil
}

// Result holds the measured outcome of a finished run. It is written once
// by the dispatcher and never mutated afterwards, so snapshots may share it.
type Result struct {
	Workload       string  `json:"workload"`
	Nodes          int     `json:"nodes"`
	Edges          int     `json:"edges"`
	Depth          int     `json:"depth"`
	Workers        int     `json:"workers"`
	SinkPaths      uint64  `json:"sink_paths_mod64"` // sum of sink values (path count for pathcount)
	Match          bool    `json:"match"`
	SerialMillis   float64 `json:"serial_ms"`
	ParallelMillis float64 `json:"parallel_ms"`
	Speedup        float64 `json:"speedup"`
}

// Run is a snapshot of one run's state. Store methods return copies, so a
// Run a caller holds never changes underneath it.
type Run struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	State State  `json:"state"`
	// SpecRedacted is set when the terminal snapshot dropped the spec's
	// explicit edge list to bound retained memory; the spec no longer
	// describes the executed graph and must not be resubmitted as-is.
	SpecRedacted bool `json:"spec_redacted,omitempty"`
	// Restarts counts how many times this run was re-admitted to the queue
	// after a service restart interrupted it (the interrupted → queued
	// recovery transition of the WAL-backed store). It is 0 for runs that
	// executed within a single process lifetime.
	Restarts int     `json:"restarts,omitempty"`
	Error    string  `json:"error,omitempty"`
	Result   *Result `json:"result,omitempty"`
	// Worker identifies which executor ran (or is running) this run: the
	// remote worker's registered name when the run was leased to the fleet,
	// or "" for embedded in-process execution. Stamped by Begin, cleared
	// when a lease expiry requeues the run, and retained on terminal
	// snapshots for attribution.
	Worker string `json:"worker,omitempty"`
	// Lifecycle timestamps. DispatchedAt is when a dispatcher popped the run
	// off its queue; StartedAt is when the store durably recorded the
	// queued→running transition. The CreatedAt→DispatchedAt gap is queue
	// wait, DispatchedAt→StartedAt is Begin overhead (WAL append + fsync),
	// StartedAt→FinishedAt is execution.
	CreatedAt    time.Time  `json:"created_at"`
	DispatchedAt *time.Time `json:"dispatched_at,omitempty"`
	StartedAt    *time.Time `json:"started_at,omitempty"`
	FinishedAt   *time.Time `json:"finished_at,omitempty"`
}

// Store errors.
var (
	// ErrNotFound is returned when no run has the requested ID.
	ErrNotFound = errors.New("run: not found")
	// ErrNotQueued is returned by Begin when the run left the queued state
	// (e.g. it was cancelled while waiting).
	ErrNotQueued = errors.New("run: not queued")
	// ErrNotRunning is returned by Finish when the run is not running.
	ErrNotRunning = errors.New("run: not running")
	// ErrTerminal is returned by Cancel when the run already finished.
	ErrTerminal = errors.New("run: already in a terminal state")
)
