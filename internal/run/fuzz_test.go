package run_test

import (
	"encoding/json"
	"testing"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

// FuzzSpecValidate feeds raw JSON documents through the exact decode path
// the POST /v1/runs handler uses and pins two invariants:
//
//  1. Validate never panics, whatever the decoded spec looks like.
//  2. Any spec Validate accepts can actually be built into a DAG — the
//     admission contract the dispatcher relies on to never see an
//     ungeneratable spec.
//
// Generation is skipped (not failed) for accepted specs above a size
// ceiling: building million-node graphs per fuzz iteration would turn the
// fuzzer into a memory benchmark without sharpening either invariant.
func FuzzSpecValidate(f *testing.F) {
	seeds := []string{
		`{"shape":"random","nodes":100,"p":0.1,"seed":7}`,
		`{"shape":"pipeline","stages":10,"width":3,"work":5}`,
		`{"shape":"explicit","nodes":4,"edges":[[0,1],[0,2],[1,3],[2,3]]}`,
		`{"shape":"explicit","nodes":3,"edges":[[0,1],[1,2],[2,0]]}`, // cycle
		`{"shape":"explicit","nodes":2,"edges":[[0,1],[0,1]]}`,       // duplicate
		`{"shape":"explicit","nodes":2,"edges":[[1,1]]}`,             // self-loop
		`{"shape":"explicit","nodes":2,"edges":[[0,9]]}`,             // out of range
		`{"shape":"explicit","nodes":1,"edges":[]}`,
		`{"shape":"random","nodes":-1}`,
		`{"shape":"random","nodes":1048577}`,
		`{"shape":"random","nodes":1000000,"p":1}`,
		`{"shape":"pipeline","stages":0,"width":0}`,
		`{"shape":"bogus"}`,
		`{"shape":"pipeline","stages":2,"width":2,"workload":"hashchain"}`,
		`{"shape":"pipeline","stages":2,"width":2,"workload":"nope"}`,
		`{"shape":"pipeline","stages":2,"width":2,"work":-5,"workers":99999}`,
		`{"shape":"pipeline","stages":3037000500,"width":3037000500}`, // int-overflow cap bypass
		`{"shape":"chain","nodes":1000}`,
		`{"shape":"chain","nodes":0}`,
		`{"shape":"dynamic","stages":4,"width":2,"p":0.3,"seed":1}`,
		`{"shape":"dynamic","stages":0,"width":2}`,
		`{"shape":"dynamic","stages":4,"width":65}`,
		`{"shape":"dynamic","stages":4,"width":2,"nodes":10}`,
		`{"shape":"dynamic","stages":4,"width":2,"parallel_work":true}`,
		`{"shape":"pipeline","stages":4,"width":2,"work":20000,"parallel_work":true}`,
		`{"shape":"random","nodes":10,"p":0.5,"edges":[[0,1]]}`, // edges on generated shape
		`{}`,
		`null`,
		`[1,2,3]`,
		`{"shape":"explicit","nodes":2,"edges":[[0]]}`,     // 1-element edge
		`{"shape":"explicit","nodes":2,"edges":[[0,1,2]]}`, // 3-element edge
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec run.Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return // not a spec; decoding rejected it before Validate would run
		}
		if err := spec.Validate(); err != nil {
			return // rejection is always a legal outcome
		}
		// Accepted: the spec must build, unless it is too large to build
		// cheaply inside a fuzz iteration. The dynamic shape has no up-front
		// graph by design — its admission contract is instead that NewDynamic
		// accepts whatever Validate accepted.
		const buildCeiling = 1 << 14
		switch spec.Shape {
		case gen.Random:
			if spec.Nodes > buildCeiling ||
				spec.EdgeProb*float64(spec.Nodes)*float64(spec.Nodes-1)/2 > buildCeiling {
				t.Skip("accepted but too large to build per-iteration")
			}
		case gen.Pipeline:
			if spec.Stages*spec.Width > buildCeiling {
				t.Skip("accepted but too large to build per-iteration")
			}
		case gen.Chain:
			if spec.Nodes > buildCeiling {
				t.Skip("accepted but too large to build per-iteration")
			}
		case gen.Explicit:
			if spec.Nodes > buildCeiling || len(spec.Edges) > buildCeiling {
				t.Skip("accepted but too large to build per-iteration")
			}
		case gen.Dynamic:
			if _, err := gen.NewDynamic(spec.Config, gen.DynLimits{MaxNodes: run.MaxNodes, MaxEdges: run.MaxEdges}); err != nil {
				t.Fatalf("Validate accepted a dynamic spec NewDynamic rejects: %v\nspec: %s", err, data)
			}
			return
		}
		d, err := gen.Generate(spec.Config)
		if err != nil {
			t.Fatalf("Validate accepted a spec Generate rejects: %v\nspec: %s", err, data)
		}
		if d.NumNodes() == 0 {
			t.Fatalf("accepted spec built an empty DAG\nspec: %s", data)
		}
	})
}
