package run

import (
	"context"
	"errors"
	"testing"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/sched"
)

// TestValidateOverflowRegression is the admission-bypass regression test:
// stages and width chosen so stages*width+2 wraps negative in int64
// (3037000500² ≈ 2^63.0006), which the old `stages*width+2 > MaxNodes`
// check accepted — letting a spec through whose generator would then try to
// allocate ~9e18 nodes. The overflow-safe division form must reject it at
// admission with ErrInvalidSpec.
func TestValidateOverflowRegression(t *testing.T) {
	overflowing := []Spec{
		{Config: gen.Config{Shape: gen.Pipeline, Stages: 3037000500, Width: 3037000500}},
		{Config: gen.Config{Shape: gen.Pipeline, Stages: 1 << 62, Width: 1 << 1}},
		{Config: gen.Config{Shape: gen.Pipeline, Stages: MaxNodes, Width: MaxNodes}},
	}
	for _, spec := range overflowing {
		err := spec.Validate()
		if !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("Validate(stages=%d width=%d) = %v, want ErrInvalidSpec",
				spec.Stages, spec.Width, err)
		}
	}
	// The boundary itself still admits: stages*width+2 == MaxNodes exactly.
	edge := Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: (MaxNodes - 2) / 2, Width: 2}}
	if err := edge.Validate(); err != nil {
		t.Errorf("Validate at the node-cap boundary = %v, want nil", err)
	}
}

func TestValidateChain(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"chain ok", Spec{Config: gen.Config{Shape: gen.Chain, Nodes: 1000}}, true},
		{"chain single node", Spec{Config: gen.Config{Shape: gen.Chain, Nodes: 1}}, true},
		{"chain at cap", Spec{Config: gen.Config{Shape: gen.Chain, Nodes: MaxNodes}}, true},
		{"chain zero nodes", Spec{Config: gen.Config{Shape: gen.Chain}}, false},
		{"chain over cap", Spec{Config: gen.Config{Shape: gen.Chain, Nodes: MaxNodes + 1}}, false},
		{"deep width-1 pipeline", Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: MaxNodes - 2, Width: 1}}, true},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
		if err != nil && !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: Validate() = %v, want ErrInvalidSpec", tc.name, err)
		}
	}
}

func TestValidateDynamic(t *testing.T) {
	dyn := func(stages, width int, p float64) Spec {
		return Spec{Config: gen.Config{Shape: gen.Dynamic, Stages: stages, Width: width, EdgeProb: p}}
	}
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"dynamic ok", dyn(8, 2, 0.2), true},
		{"dynamic max width", dyn(8, MaxDynWidth, 0.5), true},
		{"dynamic zero stages", dyn(0, 2, 0.2), false},
		{"dynamic stages over cap", dyn(MaxNodes, 2, 0.2), false},
		{"dynamic zero width", dyn(8, 0, 0.2), false},
		{"dynamic width over cap", dyn(8, MaxDynWidth+1, 0.2), false},
		{"dynamic bad prob", dyn(8, 2, 1.5), false},
		{"dynamic nodes set", func() Spec { s := dyn(8, 2, 0.2); s.Nodes = 100; return s }(), false},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
		if err != nil && !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: Validate() = %v, want ErrInvalidSpec", tc.name, err)
		}
	}
}

// unsplittableWorkload is a Workload whose per-node work is inherent to the
// value computation — it deliberately does NOT implement SplitComputable,
// so admission must refuse parallel_work for it.
type unsplittableWorkload struct{}

func (unsplittableWorkload) Name() string { return "unsplittable-test" }
func (unsplittableWorkload) Compute(work int) sched.Compute {
	return func(id dag.NodeID, parents []uint64) uint64 { return uint64(id) }
}
func (unsplittableWorkload) Serial(ctx context.Context, d *dag.DAG, work int) ([]uint64, error) {
	vals := make([]uint64, d.NumNodes())
	for i := range vals {
		vals[i] = uint64(i)
	}
	return vals, nil
}
func (unsplittableWorkload) Verify(d *dag.DAG, serial, parallel []uint64) error { return nil }

func TestValidateParallelWork(t *testing.T) {
	if err := sched.RegisterWorkload(unsplittableWorkload{}); err != nil {
		t.Fatal(err)
	}
	ok := pipelineSpec()
	ok.ParallelWork = true
	ok.Work = 10000
	if err := ok.Validate(); err != nil {
		t.Errorf("parallel_work on pipeline/pathcount rejected: %v", err)
	}
	dynSpec := Spec{Config: gen.Config{Shape: gen.Dynamic, Stages: 4, Width: 2}}
	dynSpec.ParallelWork = true
	if err := dynSpec.Validate(); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("parallel_work on dynamic shape Validate() = %v, want ErrInvalidSpec", err)
	}
	unsplit := pipelineSpec()
	unsplit.ParallelWork = true
	unsplit.Workload = "unsplittable-test"
	if err := unsplit.Validate(); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("parallel_work on unsplittable workload Validate() = %v, want ErrInvalidSpec", err)
	}
}

// TestExecuteChainDeep runs a deep chain end to end through Execute — the
// depth class (≥500k) the service must sustain for the deep-span scenario.
func TestExecuteChainDeep(t *testing.T) {
	spec := Spec{Config: gen.Config{Shape: gen.Chain, Nodes: 600_000}}
	res, err := Execute(context.Background(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Error("deep chain Match = false")
	}
	if res.Nodes != 600_000 || res.Depth != 599_999 {
		t.Errorf("Nodes/Depth = %d/%d, want 600000/599999", res.Nodes, res.Depth)
	}
	if res.SinkPaths != 1 {
		t.Errorf("chain SinkPaths = %d, want 1", res.SinkPaths)
	}
}

func TestExecuteDynamic(t *testing.T) {
	spec := Spec{Config: gen.Config{Shape: gen.Dynamic, Stages: 8, Width: 3, EdgeProb: 0.3, Seed: 21}}
	res, err := Execute(context.Background(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Error("dynamic Match = false")
	}
	if res.Nodes < 9 { // at least root + one child per stage
		t.Errorf("dynamic Nodes = %d, want >= 9", res.Nodes)
	}
	if res.Depth != 8 {
		t.Errorf("dynamic Depth = %d, want 8 (one level per stage)", res.Depth)
	}
	// Determinism: the same spec executes to the same graph.
	res2, err := Execute(context.Background(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Nodes != res.Nodes || res2.Edges != res.Edges || res2.SinkPaths != res.SinkPaths {
		t.Errorf("dynamic re-execution diverged: %+v vs %+v", res2, res)
	}
}

// TestExecuteDynamicGrowthBound pins the fail-closed acceptance criterion:
// a dynamic spec whose final graph would exceed MaxNodes fails at the
// growth bound instead of running away.
func TestExecuteDynamicGrowthBound(t *testing.T) {
	spec := Spec{Config: gen.Config{Shape: gen.Dynamic, Stages: 20, Width: 4, EdgeProb: 0, Seed: 7}}
	if err := spec.Validate(); err != nil {
		t.Fatalf("growth-bound spec must pass admission (size unknowable there): %v", err)
	}
	res, err := Execute(context.Background(), spec, 4)
	if !errors.Is(err, gen.ErrGrowthBound) {
		t.Fatalf("Execute = (%+v, %v), want gen.ErrGrowthBound", res, err)
	}
}

// TestExecuteParallelWork pins the parallel_work knob through Execute: the
// run completes with Match=true, proving pure-hook finalization plus
// scheduler-side sliced work equals the inline-spin serial reference.
func TestExecuteParallelWork(t *testing.T) {
	spec := Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: 20, Width: 2}}
	spec.Work = 1 << 16
	spec.ParallelWork = true
	spec.Workload = "hashchain"
	res, err := Execute(context.Background(), spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Error("parallel_work Match = false")
	}
}
