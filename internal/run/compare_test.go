package run

import (
	"sort"
	"testing"
	"time"
)

func runAt(id string, at time.Time) Run {
	return Run{ID: id, CreatedAt: at}
}

// TestCompareRunsOrder pins the shared comparator's contract directly:
// creation time first, ID as the tie-break, antisymmetric, and equal only
// on identical positions.
func TestCompareRunsOrder(t *testing.T) {
	t0 := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	t1 := t0.Add(time.Nanosecond)
	cases := []struct {
		name string
		a, b Run
		want int
	}{
		{"earlier time wins", runAt("z", t0), runAt("a", t1), -1},
		{"later time loses", runAt("a", t1), runAt("z", t0), 1},
		{"tie broken by id", runAt("a", t0), runAt("b", t0), -1},
		{"tie broken by id reversed", runAt("b", t0), runAt("a", t0), 1},
		{"identical position", runAt("a", t0), runAt("a", t0), 0},
	}
	for _, tc := range cases {
		if got := CompareRuns(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: CompareRuns = %d, want %d", tc.name, got, tc.want)
		}
		// CompareToCursor must agree with CompareRuns when fed b's
		// position — it is the same order, just phrased against a cursor.
		if got := CompareToCursor(tc.a, tc.b.CreatedAt.UnixNano(), tc.b.ID); got != tc.want {
			t.Errorf("%s: CompareToCursor = %d, want %d (drifted from CompareRuns)", tc.name, got, tc.want)
		}
	}
}

// TestListCursorAndEvictionShareOrder is the anti-drift regression test:
// the List sort, a cursor walk, and eviction tie-breaking must all follow
// the one shared comparator. Before the comparator existed these were
// hand-rolled in three places; this test fails if any of them grows its
// own idea of order again.
func TestListCursorAndEvictionShareOrder(t *testing.T) {
	s := NewMemStore()
	for i := 0; i < 30; i++ {
		mustCreate(t, s, pipelineSpec())
	}
	list := s.List()

	// List order is exactly a CompareRuns sort.
	sorted := append([]Run(nil), list...)
	sort.Slice(sorted, func(i, j int) bool { return CompareRuns(sorted[i], sorted[j]) < 0 })
	for i := range list {
		if list[i].ID != sorted[i].ID {
			t.Fatalf("List order diverges from CompareRuns at %d", i)
		}
	}

	// A strictly-after cursor walk over List (the API's pagination filter)
	// visits every run exactly once, in the same order.
	var walked []Run
	nanos, id := int64(-1<<62), ""
	for {
		var p []Run
		for _, r := range s.List() {
			if CompareToCursor(r, nanos, id) > 0 {
				p = append(p, r)
				if len(p) == 7 {
					break
				}
			}
		}
		if len(p) == 0 {
			break
		}
		walked = append(walked, p...)
		nanos, id = p[len(p)-1].CreatedAt.UnixNano(), p[len(p)-1].ID
	}
	if len(walked) != len(list) {
		t.Fatalf("cursor walk visited %d runs, List has %d", len(walked), len(list))
	}
	for i := range walked {
		if walked[i].ID != list[i].ID {
			t.Fatalf("cursor walk order diverges from List at %d: %s != %s", i, walked[i].ID, list[i].ID)
		}
	}
}

// TestEvictionTieBreakDeterministic pins that terminal runs finishing at
// the same instant are evicted in CompareRuns order, not map order: with
// identical FinishedAt stamps, eviction keeps the runs that sort last.
func TestEvictionTieBreakDeterministic(t *testing.T) {
	s := NewMemStore()
	var ids []string
	for i := 0; i < 8; i++ {
		r := mustCreate(t, s, pipelineSpec())
		ids = append(ids, r.ID)
		if _, err := s.Begin(r.ID, time.Now(), "", func() {}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Finish(r.ID, &Result{Match: true}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Force a full FinishedAt tie so only the comparator decides.
	now := time.Now().Round(0)
	for _, id := range ids {
		sh := s.shardFor(id)
		sh.mu.Lock()
		sh.runs[id].run.FinishedAt = &now
		sh.mu.Unlock()
	}
	survivorsWant := make(map[string]bool)
	all := s.List() // CompareRuns order; the last 3 must survive EvictTerminal(3)
	for _, r := range all[len(all)-3:] {
		survivorsWant[r.ID] = true
	}
	if n := s.EvictTerminal(3); n != 5 {
		t.Fatalf("EvictTerminal(3) = %d, want 5", n)
	}
	for _, r := range s.List() {
		if !survivorsWant[r.ID] {
			t.Errorf("tie-break evicted the wrong run: %s survived, want %v", r.ID, survivorsWant)
		}
	}
}
