package run

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/sched"
)

func pipelineSpec() Spec {
	return Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: 10, Width: 2}}
}

func mustCreate(t *testing.T, s Store, spec Spec) Run {
	t.Helper()
	r, err := s.Create(spec)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return r
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"random ok", Spec{Config: gen.Config{Shape: gen.Random, Nodes: 100, EdgeProb: 0.1}}, true},
		{"pipeline ok", pipelineSpec(), true},
		{"random too small", Spec{Config: gen.Config{Shape: gen.Random, Nodes: 1}}, false},
		{"random too big", Spec{Config: gen.Config{Shape: gen.Random, Nodes: MaxNodes + 1}}, false},
		{"random too dense", Spec{Config: gen.Config{Shape: gen.Random, Nodes: MaxNodes, EdgeProb: 1}}, false},
		{"random big but sparse", Spec{Config: gen.Config{Shape: gen.Random, Nodes: 100000, EdgeProb: 0.0001}}, true},
		{"bad prob", Spec{Config: gen.Config{Shape: gen.Random, Nodes: 10, EdgeProb: 1.5}}, false},
		{"pipeline zero width", Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: 5, Width: 0}}, false},
		{"pipeline node cap", Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: MaxNodes, Width: 2}}, false},
		{"bad shape", Spec{Config: gen.Config{Shape: gen.Shape(42), Nodes: 10}}, false},
		{"negative work", func() Spec { s := pipelineSpec(); s.Work = -1; return s }(), false},
		{"too many workers", func() Spec { s := pipelineSpec(); s.Workers = MaxWorkers + 1; return s }(), false},
		{"default workload", func() Spec { s := pipelineSpec(); s.Workload = ""; return s }(), true},
		{"named workload", func() Spec { s := pipelineSpec(); s.Workload = "hashchain"; return s }(), true},
		{"unknown workload", func() Spec { s := pipelineSpec(); s.Workload = "bogus"; return s }(), false},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestValidateSentinels pins that every admission failure wraps exactly
// one of the two sentinels the API layer maps to error codes.
func TestValidateSentinels(t *testing.T) {
	explicit := func(nodes int, edges []gen.Edge) Spec {
		return Spec{Config: gen.Config{Shape: gen.Explicit, Nodes: nodes, Edges: edges}}
	}
	invalid := []struct {
		name string
		spec Spec
	}{
		{"random too small", Spec{Config: gen.Config{Shape: gen.Random, Nodes: 1}}},
		{"bad shape", Spec{Config: gen.Config{Shape: gen.Shape(42)}}},
		{"negative work", func() Spec { s := pipelineSpec(); s.Work = -1; return s }()},
		{"explicit ok graph on random shape", Spec{Config: gen.Config{Shape: gen.Random, Nodes: 10, EdgeProb: 0.1, Edges: []gen.Edge{{0, 1}}}}},
		{"explicit zero nodes", explicit(0, nil)},
		{"explicit cycle", explicit(3, []gen.Edge{{0, 1}, {1, 2}, {2, 0}})},
		{"explicit self edge", explicit(3, []gen.Edge{{1, 1}})},
		{"explicit duplicate edge", explicit(3, []gen.Edge{{0, 1}, {0, 1}})},
		{"explicit out of range", explicit(3, []gen.Edge{{0, 7}})},
	}
	for _, tc := range invalid {
		err := tc.spec.Validate()
		if !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: Validate() = %v, want ErrInvalidSpec", tc.name, err)
		}
		if errors.Is(err, ErrUnknownWorkload) {
			t.Errorf("%s: Validate() also wraps ErrUnknownWorkload", tc.name)
		}
	}

	bad := pipelineSpec()
	bad.Workload = "no-such-workload"
	if err := bad.Validate(); !errors.Is(err, ErrUnknownWorkload) || errors.Is(err, ErrInvalidSpec) {
		t.Errorf("unknown workload Validate() = %v, want ErrUnknownWorkload only", err)
	}

	// A valid explicit spec admits and executes end to end.
	ok := explicit(4, []gen.Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid explicit spec rejected: %v", err)
	}
	res, err := Execute(context.Background(), ok, 2)
	if err != nil {
		t.Fatalf("Execute(explicit): %v", err)
	}
	if !res.Match || res.Nodes != 4 || res.Edges != 4 {
		t.Errorf("explicit Execute result = %+v, want match with 4 nodes / 4 edges", res)
	}
	// Diamond source→sink path count is 2 under the default pathcount.
	if res.SinkPaths != 2 {
		t.Errorf("diamond sink paths = %d, want 2", res.SinkPaths)
	}
}

// TestValidateExplicitEdgeCap pins the MaxEdges bound without building a
// MaxEdges-sized graph: the length check must fire before edge content is
// examined.
func TestValidateExplicitEdgeCap(t *testing.T) {
	edges := make([]gen.Edge, MaxEdges+1) // all zero-valued, i.e. junk self-loops
	spec := Spec{Config: gen.Config{Shape: gen.Explicit, Nodes: 2, Edges: edges}}
	err := spec.Validate()
	if !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("Validate(%d edges) = %v, want ErrInvalidSpec", len(edges), err)
	}
	if want := fmt.Sprintf("cap is %d", MaxEdges); !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := Spec{
		Config:   gen.Config{Shape: gen.Random, Nodes: 500, EdgeProb: 0.02, Seed: 7},
		Workload: "hashchain",
		Work:     100,
	}
	// The wire format flattens generator and execution knobs into one object
	// with the shape serialized by name.
	blob := `{"shape":"random","nodes":500,"p":0.02,"seed":7,"workload":"hashchain","work":100}`
	var decoded Spec
	if err := json.Unmarshal([]byte(blob), &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, spec) {
		t.Errorf("decoded %+v, want %+v", decoded, spec)
	}
	out, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var roundTripped Spec
	if err := json.Unmarshal(out, &roundTripped); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(roundTripped, spec) {
		t.Errorf("round trip %+v, want %+v", roundTripped, spec)
	}
}

func TestLifecycleHappyPath(t *testing.T) {
	s := NewMemStore()
	r := mustCreate(t, s, pipelineSpec())
	if r.State != StateQueued || r.ID == "" || r.CreatedAt.IsZero() {
		t.Fatalf("Create = %+v, want queued with ID and CreatedAt", r)
	}

	began, err := s.Begin(r.ID, time.Now(), "", func() {})
	if err != nil {
		t.Fatal(err)
	}
	if began.State != StateRunning || began.StartedAt == nil {
		t.Fatalf("Begin = %+v, want running with StartedAt", began)
	}

	res := &Result{Nodes: 22, Match: true}
	fin, err := s.Finish(r.ID, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateSucceeded || fin.FinishedAt == nil || fin.Result != res {
		t.Fatalf("Finish = %+v, want succeeded with result", fin)
	}
	if !fin.State.Terminal() {
		t.Error("succeeded not terminal")
	}
}

func TestFinishError(t *testing.T) {
	s := NewMemStore()
	r := mustCreate(t, s, pipelineSpec())
	if _, err := s.Begin(r.ID, time.Now(), "", func() {}); err != nil {
		t.Fatal(err)
	}
	fin, err := s.Finish(r.ID, nil, errors.New("boom"))
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed || fin.Error != "boom" {
		t.Fatalf("Finish(err) = %+v, want failed/boom", fin)
	}
}

func TestFinishCancelled(t *testing.T) {
	s := NewMemStore()
	r := mustCreate(t, s, pipelineSpec())
	if _, err := s.Begin(r.ID, time.Now(), "", func() {}); err != nil {
		t.Fatal(err)
	}
	fin, err := s.Finish(r.ID, nil, fmt.Errorf("run aborted: %w", context.Canceled))
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCancelled {
		t.Fatalf("Finish(ctx cancelled) state = %s, want cancelled", fin.State)
	}
}

func TestCancelQueued(t *testing.T) {
	s := NewMemStore()
	r := mustCreate(t, s, pipelineSpec())
	c, err := s.Cancel(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if c.State != StateCancelled || c.FinishedAt == nil {
		t.Fatalf("Cancel(queued) = %+v, want cancelled", c)
	}
	// A dispatcher popping this ID later must be refused.
	if _, err := s.Begin(r.ID, time.Now(), "", func() {}); !errors.Is(err, ErrNotQueued) {
		t.Errorf("Begin after cancel = %v, want ErrNotQueued", err)
	}
	// Cancelling again is a terminal-state error.
	if _, err := s.Cancel(r.ID); !errors.Is(err, ErrTerminal) {
		t.Errorf("second Cancel = %v, want ErrTerminal", err)
	}
}

func TestCancelRunningInvokesHook(t *testing.T) {
	s := NewMemStore()
	r := mustCreate(t, s, pipelineSpec())
	fired := false
	if _, err := s.Begin(r.ID, time.Now(), "", func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	c, err := s.Cancel(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("cancel hook not invoked")
	}
	// State stays running until the dispatcher observes the cancellation.
	if c.State != StateRunning {
		t.Errorf("Cancel(running) state = %s, want running", c.State)
	}
	fin, err := s.Finish(r.ID, nil, context.Canceled)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCancelled {
		t.Errorf("state after Finish = %s, want cancelled", fin.State)
	}
}

func TestGetAndListAndDelete(t *testing.T) {
	s := NewMemStore()
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
	var ids []string
	for i := 0; i < 10; i++ {
		ids = append(ids, mustCreate(t, s, pipelineSpec()).ID)
	}
	if got := s.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10", got)
	}
	list := s.List()
	if len(list) != 10 {
		t.Fatalf("List len = %d, want 10", len(list))
	}
	for i := 1; i < len(list); i++ {
		prev, cur := list[i-1], list[i]
		if cur.CreatedAt.Before(prev.CreatedAt) {
			t.Fatal("List not ordered oldest-first")
		}
	}
	seen := make(map[string]bool)
	for _, r := range list {
		seen[r.ID] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("List missing run %s", id)
		}
	}
	s.Delete(ids[0])
	if _, err := s.Get(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after Delete = %v, want ErrNotFound", err)
	}
	counts := s.CountByState()
	if counts[StateQueued] != 9 {
		t.Errorf("CountByState[queued] = %d, want 9", counts[StateQueued])
	}
}

// TestTerminalSnapshotDropsEdges pins the retained-memory bound: an
// explicit run's edge list (up to ~64MB) is dropped from its snapshot
// once the run is terminal, for both the finish and cancelled-while-
// queued paths. Non-terminal snapshots keep it (the dispatcher executes
// from the Begin snapshot).
func TestTerminalSnapshotDropsEdges(t *testing.T) {
	explicit := Spec{Config: gen.Config{Shape: gen.Explicit, Nodes: 3, Edges: []gen.Edge{{0, 1}, {1, 2}}}}
	s := NewMemStore()

	r := mustCreate(t, s, explicit)
	began, err := s.Begin(r.ID, time.Now(), "", func() {})
	if err != nil {
		t.Fatal(err)
	}
	if len(began.Spec.Edges) != 2 {
		t.Fatalf("Begin snapshot lost the edges the dispatcher executes from: %+v", began.Spec)
	}
	if _, err := s.Finish(r.ID, &Result{Match: true}, nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Edges != nil {
		t.Errorf("finished run still retains %d edges", len(got.Spec.Edges))
	}
	if !got.SpecRedacted {
		t.Error("finished run with dropped edges not marked SpecRedacted")
	}

	q := mustCreate(t, s, explicit)
	if _, err := s.Cancel(q.ID); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get(q.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Edges != nil {
		t.Errorf("cancelled-queued run still retains %d edges", len(got.Spec.Edges))
	}
	if !got.SpecRedacted {
		t.Error("cancelled-queued run with dropped edges not marked SpecRedacted")
	}

	// Runs that never carried an edge list are not marked redacted.
	p := mustCreate(t, s, pipelineSpec())
	if _, err := s.Cancel(p.ID); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.SpecRedacted {
		t.Error("edgeless run marked SpecRedacted")
	}
}

// TestCreatedAtHasNoMonotonicClock pins that snapshots carry wall-clock
// times only, so the API layer's UnixNano pagination cursors order runs
// exactly as List does.
func TestCreatedAtHasNoMonotonicClock(t *testing.T) {
	r, err := NewMemStore().Create(pipelineSpec())
	if err != nil {
		t.Fatal(err)
	}
	// A time with a monotonic reading prints it as "m=+...": Round(0)
	// must have stripped it.
	if s := r.CreatedAt.String(); strings.Contains(s, " m=") {
		t.Errorf("CreatedAt %q still carries a monotonic reading", s)
	}
}

func TestAwait(t *testing.T) {
	s := NewMemStore()
	if _, err := s.Await(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Await(missing) = %v, want ErrNotFound", err)
	}

	// Terminal runs return immediately, no blocking.
	done := mustCreate(t, s, pipelineSpec())
	if _, err := s.Begin(done.ID, time.Now(), "", func() {}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(done.ID, &Result{Match: true}, nil); err != nil {
		t.Fatal(err)
	}
	r, err := s.Await(context.Background(), done.ID)
	if err != nil || r.State != StateSucceeded {
		t.Fatalf("Await(terminal) = %v, %v; want succeeded", r, err)
	}

	// A waiter parked on a running run is released by Finish.
	live := mustCreate(t, s, pipelineSpec())
	if _, err := s.Begin(live.ID, time.Now(), "", func() {}); err != nil {
		t.Fatal(err)
	}
	got := make(chan Run, 1)
	go func() {
		r, err := s.Await(context.Background(), live.ID)
		if err != nil {
			t.Error(err)
		}
		got <- r
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	if _, err := s.Finish(live.ID, nil, errors.New("boom")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.State != StateFailed || r.Error != "boom" {
			t.Errorf("released Await = %+v, want failed/boom", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Await never released after Finish")
	}

	// A ctx timeout returns the current (non-terminal) snapshot.
	waiting := mustCreate(t, s, pipelineSpec())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	r, err = s.Await(ctx, waiting.ID)
	if err != nil || r.State != StateQueued {
		t.Errorf("Await(timeout) = %+v, %v; want queued snapshot", r, err)
	}

	// Cancelling a queued run releases waiters too.
	q := mustCreate(t, s, pipelineSpec())
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.Cancel(q.ID)
	}()
	r, err = s.Await(context.Background(), q.ID)
	if err != nil || r.State != StateCancelled {
		t.Errorf("Await(cancelled-queued) = %+v, %v; want cancelled", r, err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewMemStore()
	r := mustCreate(t, s, pipelineSpec())
	before, _ := s.Get(r.ID)
	if _, err := s.Begin(r.ID, time.Now(), "", func() {}); err != nil {
		t.Fatal(err)
	}
	if before.State != StateQueued {
		t.Error("earlier snapshot mutated by later transition")
	}
}

// TestConcurrentLifecycles hammers the store from many goroutines; run
// with -race this validates the sharded locking.
func TestConcurrentLifecycles(t *testing.T) {
	s := NewMemStore()
	const n = 200
	var wg sync.WaitGroup
	ids := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// t.Fatal (via mustCreate) is not legal off the test goroutine.
			r, err := s.Create(pipelineSpec())
			if err != nil {
				t.Error(err)
				return
			}
			ids <- r.ID
			if _, err := s.Begin(r.ID, time.Now(), "", func() {}); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Finish(r.ID, &Result{Match: true}, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	// Concurrent readers.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.List()
				s.CountByState()
			}
		}()
	}
	wg.Wait()
	close(ids)
	unique := make(map[string]bool)
	for id := range ids {
		if unique[id] {
			t.Fatalf("duplicate run ID %s", id)
		}
		unique[id] = true
	}
	if got := s.CountByState()[StateSucceeded]; got != n {
		t.Errorf("succeeded = %d, want %d", got, n)
	}
}

func TestEvictTerminal(t *testing.T) {
	s := NewMemStore()
	finish := func(id string) {
		if _, err := s.Begin(id, time.Now(), "", func() {}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Finish(id, &Result{Match: true}, nil); err != nil {
			t.Fatal(err)
		}
	}
	var ids []string
	for i := 0; i < 10; i++ {
		id := mustCreate(t, s, pipelineSpec()).ID
		ids = append(ids, id)
		finish(id)
	}
	queued := mustCreate(t, s, pipelineSpec()).ID
	running := mustCreate(t, s, pipelineSpec()).ID
	if _, err := s.Begin(running, time.Now(), "", func() {}); err != nil {
		t.Fatal(err)
	}

	if got := s.EvictTerminal(0); got != 0 {
		t.Errorf("EvictTerminal(0) = %d, want 0 (unlimited)", got)
	}
	if got := s.EvictTerminal(3); got != 7 {
		t.Fatalf("EvictTerminal(3) = %d, want 7", got)
	}
	// The oldest-finished terminal runs are gone, newest three remain.
	for _, id := range ids[:7] {
		if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("evicted run %s still present", id)
		}
	}
	for _, id := range ids[7:] {
		if _, err := s.Get(id); err != nil {
			t.Errorf("retained run %s: %v", id, err)
		}
	}
	// Non-terminal runs are never touched.
	for _, id := range []string{queued, running} {
		if _, err := s.Get(id); err != nil {
			t.Errorf("non-terminal run %s evicted: %v", id, err)
		}
	}
	if got := s.EvictTerminal(3); got != 0 {
		t.Errorf("second EvictTerminal(3) = %d, want 0", got)
	}
}

func TestExecuteBothShapes(t *testing.T) {
	specs := []Spec{
		{Config: gen.Config{Shape: gen.Pipeline, Stages: 40, Width: 3}, Work: 5},
		{Config: gen.Config{Shape: gen.Random, Nodes: 300, EdgeProb: 0.02, Seed: 4}, Workers: 4},
	}
	for _, spec := range specs {
		res, err := Execute(context.Background(), spec, 2)
		if err != nil {
			t.Fatalf("Execute(%+v): %v", spec, err)
		}
		if !res.Match || res.SinkPaths == 0 || res.Nodes == 0 {
			t.Errorf("Execute(%+v) = %+v, want matching nonzero result", spec, res)
		}
	}
}

func TestExecuteDeterministicAcrossCalls(t *testing.T) {
	spec := Spec{Config: gen.Config{Shape: gen.Random, Nodes: 200, EdgeProb: 0.05, Seed: 9}}
	a, err := Execute(context.Background(), spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(context.Background(), spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.SinkPaths != b.SinkPaths {
		t.Errorf("same spec, different sink paths: %d vs %d", a.SinkPaths, b.SinkPaths)
	}
}

// TestExecuteAllWorkloads drives every registered workload through the
// shared execution path: each must generate, verify serial-vs-parallel, and
// stamp its name into the result.
func TestExecuteAllWorkloads(t *testing.T) {
	for _, name := range sched.Workloads() {
		if name == brokenWorkloadName {
			continue
		}
		spec := Spec{
			Config:   gen.Config{Shape: gen.Random, Nodes: 200, EdgeProb: 0.03, Seed: 8},
			Workload: name,
			Workers:  4,
		}
		res, err := Execute(context.Background(), spec, 2)
		if err != nil {
			t.Fatalf("Execute(workload=%s): %v", name, err)
		}
		if !res.Match {
			t.Errorf("workload %s: match = false", name)
		}
		if res.Workload != name {
			t.Errorf("result workload = %q, want %q", res.Workload, name)
		}
	}
}

// brokenWorkload is a deliberately inconsistent workload: its parallel hook
// and serial reference disagree on every non-source node, so Execute must
// take the mismatch path.
const brokenWorkloadName = "broken-for-test"

type brokenWorkload struct{}

func (brokenWorkload) Name() string { return brokenWorkloadName }

func (brokenWorkload) Compute(work int) sched.Compute {
	return func(id dag.NodeID, parentValues []uint64) uint64 { return uint64(len(parentValues)) }
}

func (brokenWorkload) Serial(ctx context.Context, d *dag.DAG, work int) ([]uint64, error) {
	values := make([]uint64, d.NumNodes())
	for i := range values {
		values[i] = 1 << 40 // never what Compute returns for a non-source
	}
	return values, nil
}

func (brokenWorkload) Verify(d *dag.DAG, serial, parallel []uint64) error {
	for i := range serial {
		if serial[i] != parallel[i] {
			return fmt.Errorf("node %d: %d != %d", i, parallel[i], serial[i])
		}
	}
	return nil
}

func init() {
	if err := sched.RegisterWorkload(brokenWorkload{}); err != nil {
		panic(err)
	}
}

// TestExecuteMismatch covers the self-check failure path: a broken workload
// must yield Match=false and an error wrapping ErrMismatch, with the
// measured Result still returned so callers can report timings alongside
// the failure.
func TestExecuteMismatch(t *testing.T) {
	spec := pipelineSpec()
	spec.Workload = brokenWorkloadName
	if err := spec.Validate(); err != nil {
		t.Fatalf("registered broken workload failed validation: %v", err)
	}
	res, err := Execute(context.Background(), spec, 2)
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("Execute(broken) error = %v, want ErrMismatch", err)
	}
	if res == nil {
		t.Fatal("mismatch path returned nil Result; measured timings must survive the failure")
	}
	if res.Match {
		t.Error("mismatch result has Match=true")
	}
	if res.Workload != brokenWorkloadName {
		t.Errorf("result workload = %q, want %q", res.Workload, brokenWorkloadName)
	}
	if res.Nodes == 0 {
		t.Error("mismatch result lost its measurements")
	}
}

func TestExecuteUnknownWorkload(t *testing.T) {
	spec := pipelineSpec()
	spec.Workload = "no-such-workload"
	res, err := Execute(context.Background(), spec, 2)
	if err == nil {
		t.Fatal("Execute with unknown workload succeeded")
	}
	if res != nil {
		t.Errorf("unknown workload returned a Result: %+v", res)
	}
}

func TestExecuteErrors(t *testing.T) {
	if _, err := Execute(context.Background(), Spec{Config: gen.Config{Shape: gen.Random, Nodes: 1}}, 2); err == nil {
		t.Error("Execute with ungeneratable spec succeeded")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Execute(ctx, pipelineSpec(), 2); !errors.Is(err, context.Canceled) {
		t.Errorf("Execute(cancelled ctx) = %v, want context.Canceled", err)
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{StateQueued, StateRunning, StateSucceeded, StateFailed, StateCancelled} {
		parsed, err := ParseState(s.String())
		if err != nil || parsed != s {
			t.Errorf("ParseState(%q) = %v, %v", s.String(), parsed, err)
		}
	}
	if _, err := ParseState("bogus"); err == nil {
		t.Error("ParseState(bogus) succeeded")
	}
}
