package run

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/sched"
)

// ErrMismatch is returned (wrapped) by Execute when the parallel results
// diverge from the workload's serial reference.
var ErrMismatch = errors.New("run: parallel results diverge from serial reference")

// Execute performs one run end to end: resolve the workload from the
// registry, generate the DAG from spec, sweep the workload's serial
// reference, run the concurrent scheduler with the workload's Compute hook,
// and verify the two against each other. It is the single execution path
// shared by the dagbench CLI and the dagd dispatcher, so the two surfaces
// can never drift.
//
// defaultWorkers is used when spec.Workers is 0 (<= 0 falls back to
// NumCPU). On a verification mismatch the measured Result (with Match
// false) is returned alongside an error wrapping ErrMismatch; on unknown
// workloads, generation, or cancellation errors the Result is nil. Execute
// does not call spec.Validate — admission policy belongs to the caller.
func Execute(ctx context.Context, spec Spec, defaultWorkers int) (*Result, error) {
	workload, err := sched.LookupWorkload(spec.Workload)
	if err != nil {
		return nil, err
	}
	d, err := gen.Generate(spec.Config)
	if err != nil {
		return nil, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = defaultWorkers
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	t0 := time.Now()
	serial, err := workload.Serial(ctx, d, spec.Work)
	if err != nil {
		return nil, err
	}
	serialDur := time.Since(t0)

	t1 := time.Now()
	parallel, err := sched.New(d, sched.Options{Workers: workers}).Run(ctx, workload.Compute(spec.Work))
	if err != nil {
		return nil, err
	}
	parallelDur := time.Since(t1)

	verifyErr := workload.Verify(d, serial, parallel)
	res := &Result{
		Workload:       workload.Name(),
		Nodes:          d.NumNodes(),
		Edges:          d.NumEdges(),
		Depth:          d.Depth(),
		Workers:        workers,
		SinkPaths:      sched.TotalSinkPaths(d, serial),
		Match:          verifyErr == nil,
		SerialMillis:   float64(serialDur.Microseconds()) / 1000,
		ParallelMillis: float64(parallelDur.Microseconds()) / 1000,
	}
	// A zero/near-zero duration (trivial DAG, coarse clock) would make the
	// ratio 0/0 or +Inf; leave Speedup 0 there — Match is the correctness
	// signal, not Speedup.
	if serialDur > 0 && parallelDur > 0 {
		res.Speedup = float64(serialDur) / float64(parallelDur)
	}
	if verifyErr != nil {
		return res, fmt.Errorf("%w: %v (workload %s on %d-node %s dag, seed %d)",
			ErrMismatch, verifyErr, workload.Name(), d.NumNodes(), spec.Shape, spec.Seed)
	}
	return res, nil
}
