package run

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/sched"
)

// ErrMismatch is returned (wrapped) by Execute when the parallel path
// counts diverge from the serial reference.
var ErrMismatch = errors.New("run: parallel path counts diverge from serial reference")

// Execute performs one run end to end: generate the DAG from spec, sweep
// the serial path-count reference, run the concurrent scheduler, and
// compare the two. It is the single execution path shared by the dagbench
// CLI and the dagd dispatcher, so the two surfaces can never drift.
//
// defaultWorkers is used when spec.Workers is 0 (<= 0 falls back to
// NumCPU). On a mismatch the measured Result (with Match false) is
// returned alongside an error wrapping ErrMismatch; on generation or
// cancellation errors the Result is nil. Execute does not call
// spec.Validate — admission policy belongs to the caller.
func Execute(ctx context.Context, spec Spec, defaultWorkers int) (*Result, error) {
	d, err := gen.Generate(spec.Config)
	if err != nil {
		return nil, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = defaultWorkers
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	t0 := time.Now()
	serial, err := sched.CountPathsSerialCtx(ctx, d, spec.Work)
	if err != nil {
		return nil, err
	}
	serialDur := time.Since(t0)

	t1 := time.Now()
	parallel, err := sched.CountPathsParallel(ctx, d, workers, spec.Work)
	if err != nil {
		return nil, err
	}
	parallelDur := time.Since(t1)

	match := len(serial) == len(parallel)
	if match {
		for i := range serial {
			if serial[i] != parallel[i] {
				match = false
				break
			}
		}
	}
	res := &Result{
		Nodes:          d.NumNodes(),
		Edges:          d.NumEdges(),
		Depth:          d.Depth(),
		Workers:        workers,
		SinkPaths:      sched.TotalSinkPaths(d, serial),
		Match:          match,
		SerialMillis:   float64(serialDur.Microseconds()) / 1000,
		ParallelMillis: float64(parallelDur.Microseconds()) / 1000,
	}
	// A zero/near-zero duration (trivial DAG, coarse clock) would make the
	// ratio 0/0 or +Inf; leave Speedup 0 there — Match is the correctness
	// signal, not Speedup.
	if serialDur > 0 && parallelDur > 0 {
		res.Speedup = float64(serialDur) / float64(parallelDur)
	}
	if !match {
		return res, fmt.Errorf("%w on %d-node %s dag (seed %d)", ErrMismatch, d.NumNodes(), spec.Shape, spec.Seed)
	}
	return res, nil
}
