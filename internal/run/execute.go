package run

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/sched"
)

// ErrMismatch is returned (wrapped) by Execute when the parallel results
// diverge from the workload's serial reference.
var ErrMismatch = errors.New("run: parallel results diverge from serial reference")

// Execute performs one run end to end: resolve the workload from the
// registry, generate the DAG from spec, sweep the workload's serial
// reference, run the concurrent scheduler with the workload's Compute hook,
// and verify the two against each other. It is the single execution path
// shared by the dagbench CLI and the dagd dispatcher, so the two surfaces
// can never drift.
//
// defaultWorkers is used when spec.Workers is 0 (<= 0 falls back to
// NumCPU). On a verification mismatch the measured Result (with Match
// false) is returned alongside an error wrapping ErrMismatch; on unknown
// workloads, generation, or cancellation errors the Result is nil. Execute
// does not call spec.Validate — admission policy belongs to the caller.
func Execute(ctx context.Context, spec Spec, defaultWorkers int) (*Result, error) {
	workload, err := sched.LookupWorkload(spec.Workload)
	if err != nil {
		return nil, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = defaultWorkers
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if spec.Shape == gen.Dynamic {
		return executeDynamic(ctx, spec, workload, workers)
	}
	d, err := gen.Generate(spec.Config)
	if err != nil {
		return nil, err
	}

	t0 := time.Now()
	serial, err := workload.Serial(ctx, d, spec.Work)
	if err != nil {
		return nil, err
	}
	serialDur := time.Since(t0)

	// parallel_work (Nabbit UseParallelNodes): the scheduler burns the
	// per-node work itself, sliced across idle workers, and finalizes each
	// node with the workload's pure hook. The serial reference above is
	// untouched — spin never feeds the recurrence — so Verify still compares
	// like with like.
	opts := sched.Options{Workers: workers}
	hook := workload.Compute(spec.Work)
	if spec.ParallelWork {
		sc, ok := workload.(sched.SplitComputable)
		if !ok {
			return nil, fmt.Errorf("%w: workload %s cannot split per-node work", ErrInvalidSpec, workload.Name())
		}
		opts.SplitWork = spec.Work
		hook = sc.PureCompute()
	}
	t1 := time.Now()
	parallel, err := sched.New(d, opts).Run(ctx, hook)
	if err != nil {
		return nil, err
	}
	parallelDur := time.Since(t1)

	return buildResult(workload, spec, d, workers, serial, parallel, serialDur, parallelDur)
}

// executeDynamic runs a dynamic-shape spec: the graph is discovered while
// the parallel pass executes (bounded by the service growth caps), and the
// serial reference then sweeps the *final* graph — it necessarily runs
// after the parallel pass, the reverse of the static ordering.
func executeDynamic(ctx context.Context, spec Spec, workload sched.Workload, workers int) (*Result, error) {
	dyn, err := gen.NewDynamic(spec.Config, gen.DynLimits{MaxNodes: MaxNodes, MaxEdges: MaxEdges})
	if err != nil {
		return nil, err
	}
	t1 := time.Now()
	parallel, err := sched.RunDynamic(ctx, dyn, workers, workload.Compute(spec.Work))
	if err != nil {
		return nil, err
	}
	parallelDur := time.Since(t1)

	d, err := dyn.FinalDAG()
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	serial, err := workload.Serial(ctx, d, spec.Work)
	if err != nil {
		return nil, err
	}
	serialDur := time.Since(t0)

	return buildResult(workload, spec, d, workers, serial, parallel, serialDur, parallelDur)
}

func buildResult(workload sched.Workload, spec Spec, d *dag.DAG, workers int,
	serial, parallel []uint64, serialDur, parallelDur time.Duration) (*Result, error) {
	verifyErr := workload.Verify(d, serial, parallel)
	res := &Result{
		Workload:       workload.Name(),
		Nodes:          d.NumNodes(),
		Edges:          d.NumEdges(),
		Depth:          d.Depth(),
		Workers:        workers,
		SinkPaths:      sched.TotalSinkPaths(d, serial),
		Match:          verifyErr == nil,
		SerialMillis:   float64(serialDur.Microseconds()) / 1000,
		ParallelMillis: float64(parallelDur.Microseconds()) / 1000,
	}
	// A zero/near-zero duration (trivial DAG, coarse clock) would make the
	// ratio 0/0 or +Inf; leave Speedup 0 there — Match is the correctness
	// signal, not Speedup.
	if serialDur > 0 && parallelDur > 0 {
		res.Speedup = float64(serialDur) / float64(parallelDur)
	}
	if verifyErr != nil {
		return res, fmt.Errorf("%w: %v (workload %s on %d-node %s dag, seed %d)",
			ErrMismatch, verifyErr, workload.Name(), d.NumNodes(), spec.Shape, spec.Seed)
	}
	return res, nil
}
