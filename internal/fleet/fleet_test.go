package fleet

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dispatch"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/metrics"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

// harness is one coordinator-side stack (store → remote dispatcher →
// manager → HTTP server) plus a protocol client pointed at it.
type harness struct {
	store  run.Store
	disp   *dispatch.Dispatcher
	mgr    *Manager
	client *Client
	reg    *metrics.Registry
}

func newHarness(t *testing.T, opts Options) *harness {
	t.Helper()
	reg := metrics.NewRegistry()
	store := run.NewMemStore()
	d := dispatch.New(store, dispatch.Options{QueueDepth: 64, Remote: true, Metrics: reg})
	opts.Metrics = reg
	m := NewManager(d, opts)
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		m.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	return &harness{store: store, disp: d, mgr: m, client: NewClient(srv.URL), reg: reg}
}

func (h *harness) submit(t *testing.T) run.Run {
	t.Helper()
	r, err := h.disp.Submit(run.Spec{Config: gen.Config{Shape: gen.Pipeline, Stages: 5, Width: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (h *harness) register(t *testing.T, name string) RegisterResponse {
	t.Helper()
	resp, err := h.client.Register(context.Background(), RegisterRequest{Name: name, Capacity: 4})
	if err != nil {
		t.Fatalf("Register(%s): %v", name, err)
	}
	return resp
}

// metricValue sums one family's samples from the strict exposition parser.
func (h *harness) metricValue(t *testing.T, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := h.reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("writing metrics: %v", err)
	}
	fams, err := metrics.ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	f, ok := fams[name]
	if !ok {
		return 0
	}
	return f.Sum()
}

func TestRegisterLeaseCompleteOverHTTP(t *testing.T) {
	h := newHarness(t, Options{})
	reg := h.register(t, "alpha")
	if reg.WorkerID == "" || reg.LeaseTTLMillis != DefaultLeaseTTL.Milliseconds() {
		t.Fatalf("RegisterResponse = %+v", reg)
	}

	sub := h.submit(t)
	leased, err := h.client.Lease(context.Background(), reg.WorkerID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if leased.ID != sub.ID || leased.State != run.StateRunning || leased.Worker != reg.WorkerID {
		t.Fatalf("Lease = %+v, want %s running on %s", leased, sub.ID, reg.WorkerID)
	}

	hb, err := h.client.Heartbeat(context.Background(), reg.WorkerID, []string{leased.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Cancel) != 0 || len(hb.Lost) != 0 {
		t.Fatalf("Heartbeat = %+v, want empty", hb)
	}

	fr, err := h.client.Complete(context.Background(), CompleteRequest{
		WorkerID: reg.WorkerID, RunID: leased.ID,
		State: run.StateSucceeded, Result: &run.Result{Match: true, Nodes: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fr.State != run.StateSucceeded || fr.Worker != reg.WorkerID {
		t.Fatalf("Complete = %+v", fr)
	}
	if got, _ := h.store.Get(sub.ID); got.State != run.StateSucceeded {
		t.Fatalf("store state = %s", got.State)
	}
	if n := h.metricValue(t, "dagd_leases_granted_total"); n != 1 {
		t.Errorf("dagd_leases_granted_total = %v, want 1", n)
	}
	if n := h.metricValue(t, "dagd_workers"); n != 1 {
		t.Errorf("dagd_workers = %v, want 1", n)
	}
}

func TestLeaseNoWorkAndUnknownWorker(t *testing.T) {
	h := newHarness(t, Options{})
	reg := h.register(t, "idle")
	if _, err := h.client.Lease(context.Background(), reg.WorkerID, 50*time.Millisecond); !errors.Is(err, ErrNoWork) {
		t.Errorf("Lease(empty queue) = %v, want ErrNoWork", err)
	}
	if _, err := h.client.Lease(context.Background(), "ghost-1", 50*time.Millisecond); !errors.Is(err, ErrUnregistered) {
		t.Errorf("Lease(unknown) = %v, want ErrUnregistered", err)
	}
	if _, err := h.client.Heartbeat(context.Background(), "ghost-1", nil); !errors.Is(err, ErrUnregistered) {
		t.Errorf("Heartbeat(unknown) = %v, want ErrUnregistered", err)
	}
}

func TestRegisterRejectsUnknownWorkload(t *testing.T) {
	h := newHarness(t, Options{})
	_, err := h.client.Register(context.Background(), RegisterRequest{Name: "w", Workloads: []string{"nope"}})
	if err == nil {
		t.Fatal("Register with unknown workload succeeded")
	}
}

// TestExpiryRequeuesAndRedispatches drives the full worker-death path
// without real time: grant a lease, advance the sweeper past the TTL, and
// watch the run requeue and get re-leased to a second worker.
func TestExpiryRequeuesAndRedispatches(t *testing.T) {
	h := newHarness(t, Options{})
	w1 := h.register(t, "doomed")
	sub := h.submit(t)

	leased, err := h.client.Lease(context.Background(), w1.WorkerID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// w1 never heartbeats; a sweep past the TTL expires the lease. (The
	// same sweep also lapses idle registrations, so the survivor registers
	// afterwards — exactly what a real worker's 404→re-register loop does.)
	h.mgr.sweepOnce(time.Now().Add(DefaultLeaseTTL + time.Second))
	w2 := h.register(t, "survivor")
	if got, _ := h.store.Get(sub.ID); got.State != run.StateQueued || got.Restarts != 1 {
		t.Fatalf("after expiry: %+v, want queued/restarts=1", got)
	}
	if n := h.metricValue(t, "dagd_lease_expiries_total"); n != 1 {
		t.Errorf("dagd_lease_expiries_total = %v, want 1", n)
	}
	if n := h.metricValue(t, "dagd_runs_redispatched_total"); n != 1 {
		t.Errorf("dagd_runs_redispatched_total = %v, want 1", n)
	}

	// The dead worker's late completion is refused.
	if _, err := h.client.Complete(context.Background(), CompleteRequest{
		WorkerID: w1.WorkerID, RunID: leased.ID, State: run.StateSucceeded,
	}); !errors.Is(err, ErrConflict) {
		t.Errorf("late Complete = %v, want ErrConflict", err)
	}

	// The survivor picks the retry up; attribution moves to it.
	retry, err := h.client.Lease(context.Background(), w2.WorkerID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if retry.ID != sub.ID || retry.Worker != w2.WorkerID || retry.Restarts != 1 {
		t.Fatalf("re-lease = %+v", retry)
	}
	if _, err := h.client.Complete(context.Background(), CompleteRequest{
		WorkerID: w2.WorkerID, RunID: retry.ID, State: run.StateSucceeded, Result: &run.Result{Match: true},
	}); err != nil {
		t.Fatal(err)
	}

	// w1's registration lapsed in the same sweep (same TTL clock), so its
	// next heartbeat is told to re-register.
	if _, err := h.client.Heartbeat(context.Background(), w1.WorkerID, []string{leased.ID}); !errors.Is(err, ErrUnregistered) {
		t.Errorf("Heartbeat after lapse = %v, want ErrUnregistered", err)
	}
}

// TestPartialHeartbeatLosesUnnamedLease pins the lost-lease relay: a
// worker with capacity for two runs that silently stops naming one of
// them (a wedged executor) keeps its registration alive via the other,
// the unnamed lease expires, and the next heartbeat reports it lost.
func TestPartialHeartbeatLosesUnnamedLease(t *testing.T) {
	h := newHarness(t, Options{})
	w := h.register(t, "wedged")
	a := h.submit(t)
	b := h.submit(t)
	ra, err := h.client.Lease(context.Background(), w.WorkerID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := h.client.Lease(context.Background(), w.WorkerID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{ra.ID: true, rb.ID: true}
	if !got[a.ID] || !got[b.ID] {
		t.Fatalf("leased %v, want %s and %s", got, a.ID, b.ID)
	}

	// Only ra is named; rb's lease clock stays at its grant time. The
	// sleep separates the two clocks so a sweep can land between them.
	time.Sleep(100 * time.Millisecond)
	if _, err := h.client.Heartbeat(context.Background(), w.WorkerID, []string{ra.ID}); err != nil {
		t.Fatal(err)
	}
	h.mgr.sweepOnce(time.Now().Add(DefaultLeaseTTL - 50*time.Millisecond))
	hb, err := h.client.Heartbeat(context.Background(), w.WorkerID, []string{ra.ID})
	if err != nil {
		t.Fatalf("worker with a live lease pruned: %v", err)
	}
	if len(hb.Lost) != 1 || hb.Lost[0] != rb.ID {
		t.Fatalf("Heartbeat.Lost = %v, want [%s]", hb.Lost, rb.ID)
	}
	if got, _ := h.store.Get(rb.ID); got.State != run.StateQueued || got.Restarts != 1 {
		t.Fatalf("unnamed lease's run = %+v, want queued/restarts=1", got)
	}
}

// TestCancelRelayedOnHeartbeat verifies a coordinator-side cancel reaches
// the worker through its heartbeat and the cancelled completion lands.
func TestCancelRelayedOnHeartbeat(t *testing.T) {
	h := newHarness(t, Options{})
	w := h.register(t, "w")
	sub := h.submit(t)
	leased, err := h.client.Lease(context.Background(), w.WorkerID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.disp.Cancel(sub.ID); err != nil {
		t.Fatal(err)
	}
	hb, err := h.client.Heartbeat(context.Background(), w.WorkerID, []string{leased.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Cancel) != 1 || hb.Cancel[0] != leased.ID {
		t.Fatalf("Heartbeat.Cancel = %v, want [%s]", hb.Cancel, leased.ID)
	}
	fr, err := h.client.Complete(context.Background(), CompleteRequest{
		WorkerID: w.WorkerID, RunID: leased.ID, State: run.StateCancelled, Error: "cancelled by coordinator",
	})
	if err != nil {
		t.Fatal(err)
	}
	if fr.State != run.StateCancelled {
		t.Fatalf("state = %s, want cancelled", fr.State)
	}
}

// TestExpiryWithPendingCancelFinishesCancelled pins the policy that a
// lease expiring while a cancellation is pending completes the run as
// cancelled instead of restarting work the user asked to stop.
func TestExpiryWithPendingCancelFinishesCancelled(t *testing.T) {
	h := newHarness(t, Options{})
	w := h.register(t, "w")
	sub := h.submit(t)
	if _, err := h.client.Lease(context.Background(), w.WorkerID, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := h.disp.Cancel(sub.ID); err != nil {
		t.Fatal(err)
	}
	h.mgr.sweepOnce(time.Now().Add(DefaultLeaseTTL + time.Second))
	got, _ := h.store.Get(sub.ID)
	if got.State != run.StateCancelled {
		t.Fatalf("state after expiry with pending cancel = %s, want cancelled", got.State)
	}
	if got.Restarts != 0 {
		t.Errorf("Restarts = %d, want 0 (never requeued)", got.Restarts)
	}
}

// TestHeartbeatExtendsLease verifies heartbeats actually move the expiry:
// a sweep inside the extended window must not expire the lease.
func TestHeartbeatExtendsLease(t *testing.T) {
	h := newHarness(t, Options{})
	w := h.register(t, "w")
	sub := h.submit(t)
	leased, err := h.client.Lease(context.Background(), w.WorkerID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Heartbeat now, then sweep at now + 0.9·TTL: without the heartbeat
	// the original grant would still be alive too, so instead sweep past
	// the grant but inside the heartbeat's window after faking the grant
	// time back.
	if _, err := h.client.Heartbeat(context.Background(), w.WorkerID, []string{leased.ID}); err != nil {
		t.Fatal(err)
	}
	h.mgr.sweepOnce(time.Now().Add(DefaultLeaseTTL - time.Second))
	if got, _ := h.store.Get(sub.ID); got.State != run.StateRunning {
		t.Fatalf("state after in-window sweep = %s, want running", got.State)
	}
	// A sweep past the extended window does expire it.
	h.mgr.sweepOnce(time.Now().Add(DefaultLeaseTTL + time.Second))
	if got, _ := h.store.Get(sub.ID); got.State != run.StateQueued {
		t.Fatalf("state after late sweep = %s, want queued", got.State)
	}
}

// TestWorkerRegistrationLapses verifies an idle worker with no leases is
// forgotten once its registration window passes, and dagd_workers tracks
// it.
func TestWorkerRegistrationLapses(t *testing.T) {
	h := newHarness(t, Options{})
	h.register(t, "transient")
	if n := h.metricValue(t, "dagd_workers"); n != 1 {
		t.Fatalf("dagd_workers = %v, want 1", n)
	}
	h.mgr.sweepOnce(time.Now().Add(DefaultLeaseTTL + time.Second))
	if n := h.metricValue(t, "dagd_workers"); n != 0 {
		t.Errorf("dagd_workers after lapse = %v, want 0", n)
	}
}

// TestCapacityRefusal verifies a worker at capacity gets a conflict
// instead of a lease.
func TestCapacityRefusal(t *testing.T) {
	h := newHarness(t, Options{})
	resp, err := h.client.Register(context.Background(), RegisterRequest{Name: "small", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	h.submit(t)
	h.submit(t)
	if _, err := h.client.Lease(context.Background(), resp.WorkerID, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	_, err = h.client.Lease(context.Background(), resp.WorkerID, 100*time.Millisecond)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("Lease at capacity = %v, want ErrConflict", err)
	}
}

// TestWorkloadFilteredLease verifies workload routing end to end over
// HTTP: a hashchain-only worker only ever receives hashchain runs.
func TestWorkloadFilteredLease(t *testing.T) {
	h := newHarness(t, Options{})
	resp, err := h.client.Register(context.Background(), RegisterRequest{Name: "hc", Workloads: []string{"hashchain"}})
	if err != nil {
		t.Fatal(err)
	}
	h.submit(t) // pathcount (default)
	hc, err := h.disp.Submit(run.Spec{
		Config:   gen.Config{Shape: gen.Pipeline, Stages: 5, Width: 2},
		Workload: "hashchain",
	})
	if err != nil {
		t.Fatal(err)
	}
	leased, err := h.client.Lease(context.Background(), resp.WorkerID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if leased.ID != hc.ID {
		t.Fatalf("hashchain worker leased %s, want %s", leased.ID, hc.ID)
	}
}

// TestShapeFilteredLease verifies DAG-shape routing end to end over HTTP: a
// worker advertising only the chain and dynamic shapes never receives a
// pipeline run, and an unrestricted worker picks it up afterwards.
func TestShapeFilteredLease(t *testing.T) {
	h := newHarness(t, Options{})
	resp, err := h.client.Register(context.Background(), RegisterRequest{
		Name: "scenario", Shapes: []string{"chain", "dynamic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.submit(t) // pipeline
	chain, err := h.disp.Submit(run.Spec{Config: gen.Config{Shape: gen.Chain, Nodes: 100}})
	if err != nil {
		t.Fatal(err)
	}
	leased, err := h.client.Lease(context.Background(), resp.WorkerID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if leased.ID != chain.ID {
		t.Fatalf("shape-restricted worker leased %s, want chain run %s", leased.ID, chain.ID)
	}
	// The pipeline run is still there for an unrestricted worker.
	anyResp := h.register(t, "any")
	leased2, err := h.client.Lease(context.Background(), anyResp.WorkerID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if leased2.Spec.Shape != gen.Pipeline {
		t.Fatalf("unrestricted worker leased shape %v, want pipeline", leased2.Spec.Shape)
	}
}

// TestShapeAndWorkloadFiltersCompose pins that both filters must pass: a
// worker restricted to hashchain AND chain takes neither a pathcount chain
// run nor a hashchain pipeline run.
func TestShapeAndWorkloadFiltersCompose(t *testing.T) {
	h := newHarness(t, Options{})
	resp, err := h.client.Register(context.Background(), RegisterRequest{
		Name: "narrow", Workloads: []string{"hashchain"}, Shapes: []string{"chain"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.disp.Submit(run.Spec{Config: gen.Config{Shape: gen.Chain, Nodes: 10}}); err != nil {
		t.Fatal(err) // pathcount chain: wrong workload
	}
	if _, err := h.disp.Submit(run.Spec{
		Config: gen.Config{Shape: gen.Pipeline, Stages: 5, Width: 2}, Workload: "hashchain",
	}); err != nil {
		t.Fatal(err) // hashchain pipeline: wrong shape
	}
	if _, err := h.client.Lease(context.Background(), resp.WorkerID, 100*time.Millisecond); !errors.Is(err, ErrNoWork) {
		t.Fatalf("Lease with no matching run = %v, want ErrNoWork", err)
	}
	match, err := h.disp.Submit(run.Spec{
		Config: gen.Config{Shape: gen.Chain, Nodes: 10}, Workload: "hashchain",
	})
	if err != nil {
		t.Fatal(err)
	}
	leased, err := h.client.Lease(context.Background(), resp.WorkerID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if leased.ID != match.ID {
		t.Fatalf("leased %s, want the hashchain chain run %s", leased.ID, match.ID)
	}
}

func TestRegisterRejectsUnknownShape(t *testing.T) {
	h := newHarness(t, Options{})
	_, err := h.client.Register(context.Background(), RegisterRequest{Name: "w", Shapes: []string{"mobius"}})
	if err == nil {
		t.Fatal("Register with unknown shape succeeded")
	}
}
