package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dispatch"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

// The worker API, all POST + JSON under /fleet/v1/. It is an internal
// coordinator↔worker protocol — separate listener from the public v1 API,
// simpler error shape ({"error": "..."} plus status code semantics):
//
//	register   admit a worker → worker ID + lease clocks
//	lease      long-poll one ready run (204 when the poll drains empty)
//	heartbeat  extend leases → pending cancels + lost leases
//	complete   report a terminal outcome (409 when the lease was lost)

// RegisterRequest admits a worker.
type RegisterRequest struct {
	Name      string   `json:"name,omitempty"`
	Capacity  int      `json:"capacity,omitempty"`
	Workloads []string `json:"workloads,omitempty"` // empty = all registered workloads
	Shapes    []string `json:"shapes,omitempty"`    // empty = all DAG shapes
}

// RegisterResponse carries the worker's identity and the coordinator's
// lease clocks, so clocks are configured in exactly one place.
type RegisterResponse struct {
	WorkerID        string `json:"worker_id"`
	LeaseTTLMillis  int64  `json:"lease_ttl_ms"`
	HeartbeatMillis int64  `json:"heartbeat_ms"`
}

// LeaseRequest long-polls for one run; WaitMillis bounds the poll (the
// server clamps it to [0, maxLeaseWait]).
type LeaseRequest struct {
	WorkerID   string `json:"worker_id"`
	WaitMillis int64  `json:"wait_ms,omitempty"`
}

// LeaseResponse carries the granted run.
type LeaseResponse struct {
	Run run.Run `json:"run"`
}

// HeartbeatRequest extends the leases of every run the worker still holds.
type HeartbeatRequest struct {
	WorkerID string   `json:"worker_id"`
	Running  []string `json:"running,omitempty"`
}

// HeartbeatResponse relays coordinator-side decisions: Cancel lists runs
// the worker must abort and report as cancelled; Lost lists runs whose
// leases expired coordinator-side — the worker aborts them and reports
// nothing (the re-dispatched attempt owns them now).
type HeartbeatResponse struct {
	Cancel []string `json:"cancel,omitempty"`
	Lost   []string `json:"lost,omitempty"`
}

// CompleteRequest reports one run's terminal outcome.
type CompleteRequest struct {
	WorkerID string      `json:"worker_id"`
	RunID    string      `json:"run_id"`
	State    run.State   `json:"state"`
	Error    string      `json:"error,omitempty"`
	Result   *run.Result `json:"result,omitempty"`
}

// CompleteResponse echoes the recorded terminal snapshot.
type CompleteResponse struct {
	Run run.Run `json:"run"`
}

// maxLeaseWait caps a lease long-poll so a dead client cannot pin a
// handler goroutine forever; workers simply poll again.
const maxLeaseWait = 30 * time.Second

// defaultLeaseWait applies when a lease request names no wait.
const defaultLeaseWait = 10 * time.Second

// Handler returns the worker API as an http.Handler rooted at /fleet/v1/.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/v1/register", m.handleRegister)
	mux.HandleFunc("POST /fleet/v1/lease", m.handleLease)
	mux.HandleFunc("POST /fleet/v1/heartbeat", m.handleHeartbeat)
	mux.HandleFunc("POST /fleet/v1/complete", m.handleComplete)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// decodeInto reads a bounded JSON body. Worker requests are tiny; 1MB of
// headroom covers the largest plausible running-ID list.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return false
	}
	return true
}

func (m *Manager) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeInto(w, r, &req) {
		return
	}
	id, err := m.register(req.Name, req.Capacity, req.Workloads, req.Shapes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{
		WorkerID:        id,
		LeaseTTLMillis:  m.opts.LeaseTTL.Milliseconds(),
		HeartbeatMillis: m.opts.HeartbeatInterval.Milliseconds(),
	})
}

func (m *Manager) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeInto(w, r, &req) {
		return
	}
	wait := defaultLeaseWait
	if req.WaitMillis > 0 {
		wait = time.Duration(req.WaitMillis) * time.Millisecond
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()

	granted, err := m.acquire(ctx, req.WorkerID)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, LeaseResponse{Run: granted})
	case errors.Is(err, errUnknownWorker):
		writeError(w, http.StatusNotFound, "unknown worker %q: register first", req.WorkerID)
	case errors.Is(err, errAtCapacity):
		writeError(w, http.StatusConflict, "worker %q is at capacity", req.WorkerID)
	case errors.Is(err, dispatch.ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "coordinator is shutting down")
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// Nothing became ready within the poll window.
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (m *Manager) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeInto(w, r, &req) {
		return
	}
	cancel, lost, ok := m.heartbeat(req.WorkerID, req.Running)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown worker %q: register first", req.WorkerID)
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Cancel: cancel, Lost: lost})
}

func (m *Manager) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeInto(w, r, &req) {
		return
	}
	fr, err := m.complete(req.WorkerID, req.RunID, req.State, req.Error, req.Result)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, CompleteResponse{Run: fr})
	case errors.Is(err, errNotLeased) || errors.Is(err, dispatch.ErrNotLeased):
		writeError(w, http.StatusConflict, "run %q is not leased to worker %q (lease expired?)", req.RunID, req.WorkerID)
	case errors.Is(err, run.ErrNotRunning) || errors.Is(err, run.ErrNotFound):
		writeError(w, http.StatusConflict, "run %q is no longer running: %v", req.RunID, err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// Client is the worker side of the protocol, used by cmd/dagworker (and
// the fleet tests). Zero-value HTTP client semantics with a sane timeout;
// lease polls get their own per-call deadline headroom.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a Client for a coordinator's fleet listener,
// e.g. "http://127.0.0.1:9091".
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{Timeout: maxLeaseWait + 15*time.Second}}
}

// ErrConflict is returned by Complete when the coordinator refused the
// report because the lease is gone (expired and re-dispatched); the worker
// must discard the result.
var ErrConflict = errors.New("fleet: lease conflict")

// ErrUnregistered is returned when the coordinator does not know this
// worker ID — after a coordinator restart — and the worker must
// re-register.
var ErrUnregistered = errors.New("fleet: worker not registered")

// ErrDraining is returned by Lease when the coordinator is shutting down.
var ErrDraining = errors.New("fleet: coordinator draining")

// ErrNoWork is returned by Lease when the long poll elapsed with nothing
// ready.
var ErrNoWork = errors.New("fleet: no work available")

func (c *Client) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("fleet: decoding %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}
	if resp.StatusCode >= 400 {
		var eb errorBody
		json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		return resp.StatusCode, mapStatus(resp.StatusCode, eb.Error)
	}
	return resp.StatusCode, nil
}

func mapStatus(status int, msg string) error {
	base := fmt.Errorf("fleet: http %d: %s", status, msg)
	switch status {
	case http.StatusNotFound:
		return fmt.Errorf("%w (%s)", ErrUnregistered, msg)
	case http.StatusConflict:
		return fmt.Errorf("%w (%s)", ErrConflict, msg)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w (%s)", ErrDraining, msg)
	}
	return base
}

// Register admits the worker and returns its assigned identity and the
// coordinator's lease clocks.
func (c *Client) Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	var out RegisterResponse
	_, err := c.post(ctx, "/fleet/v1/register", req, &out)
	return out, err
}

// Lease long-polls for one run. ErrNoWork means the poll drained empty;
// ErrDraining means stop polling and exit; ErrUnregistered means
// re-register first.
func (c *Client) Lease(ctx context.Context, workerID string, wait time.Duration) (run.Run, error) {
	var out LeaseResponse
	status, err := c.post(ctx, "/fleet/v1/lease",
		LeaseRequest{WorkerID: workerID, WaitMillis: wait.Milliseconds()}, &out)
	if err != nil {
		return run.Run{}, err
	}
	if status == http.StatusNoContent {
		return run.Run{}, ErrNoWork
	}
	return out.Run, nil
}

// Heartbeat extends the leases of the named runs.
func (c *Client) Heartbeat(ctx context.Context, workerID string, running []string) (HeartbeatResponse, error) {
	var out HeartbeatResponse
	_, err := c.post(ctx, "/fleet/v1/heartbeat",
		HeartbeatRequest{WorkerID: workerID, Running: running}, &out)
	return out, err
}

// Complete reports a run's terminal outcome. ErrConflict means the lease
// was lost and the report discarded.
func (c *Client) Complete(ctx context.Context, req CompleteRequest) (run.Run, error) {
	var out CompleteResponse
	_, err := c.post(ctx, "/fleet/v1/complete", req, &out)
	return out.Run, err
}
