// Package fleet is the coordinator side of dagd's distributed execution
// plane: it turns the dispatcher's remote lease mode into an internal
// JSON/HTTP worker API that cmd/dagworker processes consume.
//
// # Protocol
//
// A worker registers once (name, capacity, supported workloads) and
// receives a unique worker ID plus the coordinator's lease TTL and
// heartbeat interval. It then long-polls for leases: each grant
// transitions one run to running through the dispatcher (store.Begin,
// WAL-logged, attributed to the worker ID) and starts a lease clock.
// While executing, the worker heartbeats every interval; a heartbeat
// extends every lease it names and returns two lists — runs the
// coordinator wants cancelled (relayed from POST /v1/runs/{id}/cancel)
// and runs whose leases the coordinator already gave up on (the worker
// must abort those; a re-dispatched attempt owns them now). Results are
// reported through complete, which ends the lease.
//
// # Failure model
//
// A lease not extended within LeaseTTL expires: the sweeper requeues the
// run through the dispatcher (Restarts++, same WAL requeue record crash
// recovery writes) for re-dispatch to a surviving worker — unless a
// cancellation was pending, in which case the run completes as cancelled
// rather than restarting. A worker that stops polling and heartbeating
// entirely is forgotten once its registration lapses; if it comes back
// (e.g. after a coordinator restart wiped the registry) it re-registers
// and resumes. Completion reports and lease expiry race benignly: the
// lease table is the serialization point, and the loser's report is
// refused with a conflict the worker treats as "stop working on this".
package fleet

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dispatch"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/metrics"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/sched"
)

// Defaults for the lease clocks. Heartbeat must stay well under half the
// TTL so one dropped heartbeat never expires a healthy worker's lease.
const (
	DefaultLeaseTTL          = 15 * time.Second
	DefaultHeartbeatInterval = 3 * time.Second
)

// Options configures a Manager.
type Options struct {
	// LeaseTTL is how long a granted lease survives without a heartbeat
	// before the run is requeued. Zero means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// HeartbeatInterval is the cadence workers are told to heartbeat at.
	// Zero means DefaultHeartbeatInterval. Callers must keep it under
	// LeaseTTL/2 (cmd/dagd validates at startup).
	HeartbeatInterval time.Duration
	// Metrics receives the fleet instrumentation (worker count, leases
	// granted/expired, heartbeats). Nil means a private throwaway
	// registry, so the instruments are always live.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = DefaultLeaseTTL
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if o.Metrics == nil {
		o.Metrics = metrics.NewRegistry()
	}
	return o
}

// worker is one registered dagworker process. Guarded by Manager.mu.
type worker struct {
	id        string
	name      string
	capacity  int
	workloads map[string]bool // nil/empty = every workload
	shapes    map[string]bool // nil/empty = every DAG shape
	expiresAt time.Time       // registration lapses without polls/heartbeats
	leases    map[string]bool // run IDs currently leased to this worker
	lost      []string        // expired leases not yet relayed on a heartbeat
}

// lease is one outstanding grant. Guarded by Manager.mu.
type lease struct {
	workerID  string
	expiresAt time.Time
}

// Manager owns the worker registry and lease table over a remote-mode
// dispatcher, and runs the expiry sweeper.
type Manager struct {
	disp *dispatch.Dispatcher
	opts Options

	mu      sync.Mutex
	seq     int
	workers map[string]*worker
	leases  map[string]*lease // by run ID

	// cancels marks runs with a pending cancellation. It is written by
	// the dispatcher's cancel hook, which may fire under a store shard
	// lock — a sync.Map keeps that path lock-free so it can never entangle
	// with mu.
	cancels sync.Map

	stop chan struct{}
	done chan struct{}

	met instruments
}

type instruments struct {
	workers     *metrics.Gauge   // dagd_workers
	activeLease *metrics.Gauge   // dagd_active_leases
	granted     *metrics.Counter // dagd_leases_granted_total
	expiries    *metrics.Counter // dagd_lease_expiries_total
	heartbeats  *metrics.Counter // dagd_lease_heartbeats_total
}

// NewManager starts a Manager (and its expiry sweeper) over a dispatcher
// created with Options.Remote. Callers must eventually call Close.
func NewManager(d *dispatch.Dispatcher, opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{
		disp:    d,
		opts:    opts,
		workers: make(map[string]*worker),
		leases:  make(map[string]*lease),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	reg := opts.Metrics
	m.met = instruments{
		workers:     reg.Gauge("dagd_workers", "Registered workers with a live registration."),
		activeLease: reg.Gauge("dagd_active_leases", "Runs currently leased to workers."),
		granted:     reg.Counter("dagd_leases_granted_total", "Leases granted to workers."),
		expiries:    reg.Counter("dagd_lease_expiries_total", "Leases expired after missed heartbeats."),
		heartbeats:  reg.Counter("dagd_lease_heartbeats_total", "Heartbeats accepted from workers."),
	}
	reg.OnCollect(func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		m.met.workers.Set(float64(len(m.workers)))
		m.met.activeLease.Set(float64(len(m.leases)))
	})
	go m.sweep()
	return m
}

// Close stops the sweeper. Outstanding leases are left to the dispatcher's
// drain (workers complete them) or to the next boot's recovery.
func (m *Manager) Close() {
	close(m.stop)
	<-m.done
}

// LeaseTTL returns the configured lease TTL.
func (m *Manager) LeaseTTL() time.Duration { return m.opts.LeaseTTL }

// HeartbeatInterval returns the interval workers are told to heartbeat at.
func (m *Manager) HeartbeatInterval() time.Duration { return m.opts.HeartbeatInterval }

// Stats is the fleet snapshot surfaced through /healthz.
type Stats struct {
	Workers      int `json:"workers"`
	ActiveLeases int `json:"active_leases"`
}

// Stats snapshots the worker registry and lease table.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Workers: len(m.workers), ActiveLeases: len(m.leases)}
}

// register admits a worker and returns its unique ID. An unknown or empty
// workload or shape name is rejected so misconfigured workers fail loudly
// at boot instead of idling forever with an unmatchable filter.
func (m *Manager) register(name string, capacity int, workloads, shapes []string) (string, error) {
	if name == "" {
		name = "worker"
	}
	if capacity <= 0 {
		capacity = 1
	}
	var set map[string]bool
	if len(workloads) > 0 {
		set = make(map[string]bool, len(workloads))
		for _, w := range workloads {
			if _, err := sched.LookupWorkload(w); err != nil {
				return "", fmt.Errorf("unsupported workload %q", w)
			}
			if w == "" {
				w = sched.DefaultWorkload
			}
			set[w] = true
		}
	}
	var shapeSet map[string]bool
	if len(shapes) > 0 {
		shapeSet = make(map[string]bool, len(shapes))
		for _, s := range shapes {
			sh, err := gen.ParseShape(s)
			if err != nil {
				return "", fmt.Errorf("unsupported shape %q", s)
			}
			shapeSet[sh.String()] = true
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	id := fmt.Sprintf("%s-%04d", sanitizeName(name), m.seq)
	m.workers[id] = &worker{
		id:        id,
		name:      name,
		capacity:  capacity,
		workloads: set,
		shapes:    shapeSet,
		expiresAt: time.Now().Add(m.opts.LeaseTTL),
		leases:    make(map[string]bool),
	}
	return id, nil
}

// sanitizeName keeps worker IDs printable and short: they land in WAL
// records and metrics labels.
func sanitizeName(name string) string {
	name = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			return r
		default:
			return '-'
		}
	}, name)
	if len(name) > 48 {
		name = name[:48]
	}
	return name
}

// touchWorker refreshes a worker's registration clock; reports false when
// the ID is unknown (the worker must re-register).
func (m *Manager) touchWorker(id string) (*worker, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.workers[id]
	if !ok {
		return nil, false
	}
	w.expiresAt = time.Now().Add(m.opts.LeaseTTL)
	return w, true
}

// errAtCapacity is the lease refusal for a worker already holding its
// capacity in leases.
var errAtCapacity = fmt.Errorf("fleet: worker at capacity")

// acquire hands one ready run to the worker, blocking until ctx gives up.
// The grant is recorded in the lease table before the run is revealed, so
// the sweeper can never miss it.
func (m *Manager) acquire(ctx context.Context, workerID string) (run.Run, error) {
	m.mu.Lock()
	w, ok := m.workers[workerID]
	if !ok {
		m.mu.Unlock()
		return run.Run{}, errUnknownWorker
	}
	w.expiresAt = time.Now().Add(m.opts.LeaseTTL)
	if len(w.leases) >= w.capacity {
		m.mu.Unlock()
		return run.Run{}, errAtCapacity
	}
	supports := w.supports()
	m.mu.Unlock()

	r, err := m.disp.Lease(ctx, workerID, supports, func(id string) {
		// Fires from store.Cancel, possibly under a shard lock: record
		// only, the next heartbeat relays it.
		m.cancels.Store(id, true)
	})
	if err != nil {
		return run.Run{}, err
	}

	m.mu.Lock()
	m.leases[r.ID] = &lease{workerID: workerID, expiresAt: time.Now().Add(m.opts.LeaseTTL)}
	// The worker may have been pruned while Lease blocked (registration
	// lapse during a long poll is impossible while polling — acquire
	// touched it above — but a coordinator-side race with sweep is cheap
	// to tolerate): re-insert its registration so the lease has an owner.
	w, ok = m.workers[workerID]
	if !ok {
		w = &worker{id: workerID, capacity: 1, leases: make(map[string]bool)}
		m.workers[workerID] = w
	}
	w.leases[r.ID] = true
	w.expiresAt = time.Now().Add(m.opts.LeaseTTL)
	m.mu.Unlock()
	m.met.granted.Inc()
	return r, nil
}

// supports returns the eligibility filter for the dispatcher's pick. Must
// be called with mu held; the returned closure reads only immutable state.
func (w *worker) supports() func(workload, shape string) bool {
	if len(w.workloads) == 0 && len(w.shapes) == 0 {
		return nil
	}
	workloads, shapes := w.workloads, w.shapes
	return func(workload, shape string) bool {
		if workload == "" {
			// Specs admitted before a default workload was stamped run the
			// registry default.
			workload = sched.DefaultWorkload
		}
		if len(workloads) > 0 && !workloads[workload] {
			return false
		}
		return len(shapes) == 0 || shapes[shape]
	}
}

// heartbeat extends the named leases and returns the runs the worker must
// cancel and the leases it has lost. Unknown worker IDs report false —
// the worker re-registers and its orphaned leases expire on schedule.
func (m *Manager) heartbeat(workerID string, running []string) (cancel, lost []string, ok bool) {
	m.mu.Lock()
	w, found := m.workers[workerID]
	if !found {
		m.mu.Unlock()
		return nil, nil, false
	}
	now := time.Now()
	w.expiresAt = now.Add(m.opts.LeaseTTL)
	for _, id := range running {
		if l, held := m.leases[id]; held && l.workerID == workerID {
			l.expiresAt = now.Add(m.opts.LeaseTTL)
			if _, pending := m.cancels.Load(id); pending {
				cancel = append(cancel, id)
			}
		} else {
			lost = append(lost, id)
		}
	}
	// Relay expiries the worker has not named this round (it may not have
	// noticed the run ended coordinator-side).
	lost = append(lost, w.lost...)
	w.lost = nil
	m.mu.Unlock()
	m.met.heartbeats.Inc()
	sort.Strings(lost)
	return cancel, dedupe(lost), true
}

func dedupe(ids []string) []string {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || ids[i-1] != id {
			out = append(out, id)
		}
	}
	return out
}

// complete records a worker's terminal report. The lease table is checked
// and cleared first: a report racing an expiry loses (errNotLeased) and
// must be discarded by the worker.
func (m *Manager) complete(workerID, runID string, state run.State, errMsg string, result *run.Result) (run.Run, error) {
	if !state.Terminal() {
		return run.Run{}, fmt.Errorf("fleet: non-terminal completion state %s", state)
	}
	m.mu.Lock()
	l, held := m.leases[runID]
	if !held || l.workerID != workerID {
		m.mu.Unlock()
		return run.Run{}, errNotLeased
	}
	delete(m.leases, runID)
	if w, ok := m.workers[workerID]; ok {
		delete(w.leases, runID)
		w.expiresAt = time.Now().Add(m.opts.LeaseTTL)
	}
	m.mu.Unlock()
	m.cancels.Delete(runID)
	return m.disp.CompleteLease(runID, state, errMsg, result)
}

var (
	errUnknownWorker = fmt.Errorf("fleet: unknown worker")
	errNotLeased     = fmt.Errorf("fleet: run not leased to this worker")
)

// sweep is the expiry loop: every quarter TTL it expires overdue leases
// (requeueing their runs, or completing them as cancelled when a cancel
// was already pending — restarting a run the user asked to stop would be
// worse than failing it) and forgets workers whose registrations lapsed.
func (m *Manager) sweep() {
	defer close(m.done)
	t := time.NewTicker(m.opts.LeaseTTL / 4)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
		m.sweepOnce(time.Now())
	}
}

// sweepOnce expires overdue state as of now. Split out for tests.
func (m *Manager) sweepOnce(now time.Time) {
	type victim struct {
		runID     string
		workerID  string
		cancelled bool
	}
	var victims []victim

	m.mu.Lock()
	for id, l := range m.leases {
		if now.After(l.expiresAt) {
			_, pending := m.cancels.Load(id)
			victims = append(victims, victim{runID: id, workerID: l.workerID, cancelled: pending})
			delete(m.leases, id)
			if w, ok := m.workers[l.workerID]; ok {
				delete(w.leases, id)
				w.lost = append(w.lost, id)
			}
		}
	}
	for id, w := range m.workers {
		if len(w.leases) == 0 && now.After(w.expiresAt) {
			delete(m.workers, id)
		}
	}
	m.mu.Unlock()

	// Dispatcher and store calls happen outside mu: they take shard locks
	// and may fsync, and nothing here needs the registry anymore.
	for _, v := range victims {
		m.met.expiries.Inc()
		if v.cancelled {
			m.cancels.Delete(v.runID)
			if _, err := m.disp.CompleteLease(v.runID, run.StateCancelled,
				fmt.Sprintf("worker %s lost its lease with a cancellation pending", v.workerID), nil); err != nil {
				log.Printf("fleet: finishing cancelled run %s after lease expiry: %v", v.runID, err)
			}
			continue
		}
		r, err := m.disp.ExpireLease(v.runID)
		if err != nil {
			log.Printf("fleet: expiring lease of %s (worker %s): %v", v.runID, v.workerID, err)
			continue
		}
		log.Printf("fleet: lease of %s expired (worker %s stopped heartbeating); requeued with restarts=%d",
			v.runID, v.workerID, r.Restarts)
	}
}
