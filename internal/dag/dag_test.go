package dag

import (
	"errors"
	"testing"
)

func mustBuild(t *testing.T, n int, edges [][2]NodeID) *DAG {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", e[0], e[1], err)
		}
	}
	d, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func TestSelfLoopRejected(t *testing.T) {
	b := NewBuilder(3)
	err := b.AddEdge(1, 1)
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("AddEdge(1,1) = %v, want ErrCycle", err)
	}
}

func TestTwoCycleRejected(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Build = %v, want ErrCycle", err)
	}
}

func TestLongerCycleRejected(t *testing.T) {
	b := NewBuilder(5)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 1}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Build(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Build = %v, want ErrCycle", err)
	}
}

func TestDiamondAccepted(t *testing.T) {
	d := mustBuild(t, 4, [][2]NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if got := d.NumEdges(); got != 4 {
		t.Errorf("NumEdges = %d, want 4", got)
	}
	if got := d.InDegree(3); got != 2 {
		t.Errorf("InDegree(3) = %d, want 2", got)
	}
	if got := d.Depth(); got != 2 {
		t.Errorf("Depth = %d, want 2", got)
	}
	assertTopoValid(t, d)
	if srcs := d.Sources(); len(srcs) != 1 || srcs[0] != 0 {
		t.Errorf("Sources = %v, want [0]", srcs)
	}
	if sinks := d.Sinks(); len(sinks) != 1 || sinks[0] != 3 {
		t.Errorf("Sinks = %v, want [3]", sinks)
	}
}

func TestDisconnectedGraphAccepted(t *testing.T) {
	// Two components: 0→1 and 2→3, plus isolated node 4.
	d := mustBuild(t, 5, [][2]NodeID{{0, 1}, {2, 3}})
	assertTopoValid(t, d)
	if got := len(d.Sources()); got != 3 {
		t.Errorf("len(Sources) = %d, want 3 (0, 2, 4)", got)
	}
	if got := len(d.Sinks()); got != 3 {
		t.Errorf("len(Sinks) = %d, want 3 (1, 3, 4)", got)
	}
}

func TestEmptyAndSingleNode(t *testing.T) {
	d0 := mustBuild(t, 0, nil)
	if got := len(d0.TopoOrder()); got != 0 {
		t.Errorf("empty dag topo len = %d, want 0", got)
	}
	d1 := mustBuild(t, 1, nil)
	if got := d1.Depth(); got != 0 {
		t.Errorf("single-node Depth = %d, want 0", got)
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.NumEdges(); got != 1 {
		t.Errorf("NumEdges = %d, want 1", got)
	}
}

func TestEdgeOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 2); err == nil {
		t.Error("AddEdge(0,2) on 2-node graph succeeded, want error")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Error("AddEdge(-1,0) succeeded, want error")
	}
}

// assertTopoValid checks that TopoOrder is a permutation of all nodes in
// which every edge points forward.
func assertTopoValid(t *testing.T, d *DAG) {
	t.Helper()
	order := d.TopoOrder()
	if len(order) != d.NumNodes() {
		t.Fatalf("topo order has %d nodes, want %d", len(order), d.NumNodes())
	}
	pos := make(map[NodeID]int, len(order))
	for i, v := range order {
		if _, dup := pos[v]; dup {
			t.Fatalf("node %d appears twice in topo order", v)
		}
		pos[v] = i
	}
	for u := 0; u < d.NumNodes(); u++ {
		for _, v := range d.Children(NodeID(u)) {
			if pos[NodeID(u)] >= pos[v] {
				t.Errorf("edge (%d,%d) violates topo order", u, v)
			}
		}
	}
}
