// Package dag provides an immutable directed-acyclic-graph model: nodes,
// edges, adjacency in both directions, in-degree tracking, cycle detection
// via Kahn's algorithm, and topological ordering.
//
// Graphs are assembled with a Builder and frozen by Build, which rejects any
// graph containing a cycle. Once built, a DAG is never mutated; all accessor
// methods are safe for concurrent use.
package dag

import (
	"errors"
	"fmt"
)

// NodeID identifies a node in a DAG. Nodes are dense integers in [0, N).
type NodeID int

// ErrCycle is returned (wrapped) by Builder.Build when the graph is cyclic.
var ErrCycle = errors.New("dag: graph contains a cycle")

// Builder accumulates nodes and edges before freezing them into a DAG.
// The zero value is not usable; create one with NewBuilder.
type Builder struct {
	n     int
	edges [][2]NodeID
	seen  map[[2]NodeID]struct{}
}

// NewBuilder returns a Builder for a graph with n nodes, identified 0..n-1.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("dag: negative node count %d", n))
	}
	return &Builder{n: n, seen: make(map[[2]NodeID]struct{})}
}

// AddEdge records a directed edge from u to v. Duplicate edges are ignored.
// It returns an error if either endpoint is out of range or if u == v
// (a self-loop, which is trivially a cycle).
func (b *Builder) AddEdge(u, v NodeID) error {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		return fmt.Errorf("dag: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("dag: self-loop on node %d: %w", u, ErrCycle)
	}
	key := [2]NodeID{u, v}
	if _, dup := b.seen[key]; dup {
		return nil
	}
	b.seen[key] = struct{}{}
	b.edges = append(b.edges, key)
	return nil
}

// NumEdges returns how many distinct edges have been added so far. Because
// AddEdge silently ignores duplicates, callers that must *reject* duplicate
// edges (e.g. explicit client-supplied edge lists) can compare NumEdges
// before and after an AddEdge call.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build freezes the accumulated graph into an immutable DAG. It runs Kahn's
// algorithm to compute a topological order and returns an error wrapping
// ErrCycle if any cycle exists.
func (b *Builder) Build() (*DAG, error) {
	return freeze(b.n, b.edges)
}

// FromEdges freezes a graph directly from a prepared edge list, skipping
// Builder's per-edge duplicate map. It exists for trusted generators (deep
// chains near the node cap) where the dedupe map would dominate build cost;
// endpoints are still bounds-checked, self-loops still rejected, and the
// Kahn pass still rejects cycles. Callers must guarantee edges are
// distinct — duplicates would silently skew in-degrees.
func FromEdges(n int, edges [][2]NodeID) (*DAG, error) {
	if n < 0 {
		return nil, fmt.Errorf("dag: negative node count %d", n)
	}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("dag: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("dag: self-loop on node %d: %w", u, ErrCycle)
		}
	}
	return freeze(n, edges)
}

func freeze(n int, edges [][2]NodeID) (*DAG, error) {
	d := &DAG{
		n:      n,
		adj:    make([][]NodeID, n),
		radj:   make([][]NodeID, n),
		indeg:  make([]int, n),
		outdeg: make([]int, n),
		nEdges: len(edges),
	}
	for _, e := range edges {
		u, v := e[0], e[1]
		d.adj[u] = append(d.adj[u], v)
		d.radj[v] = append(d.radj[v], u)
		d.indeg[v]++
		d.outdeg[u]++
	}
	order, err := kahn(d)
	if err != nil {
		return nil, err
	}
	d.topo = order
	return d, nil
}

// kahn computes a topological order of d, or an error wrapping ErrCycle if
// fewer than n nodes can be ordered.
func kahn(d *DAG) ([]NodeID, error) {
	pending := make([]int, d.n)
	copy(pending, d.indeg)
	queue := make([]NodeID, 0, d.n)
	for v := 0; v < d.n; v++ {
		if pending[v] == 0 {
			queue = append(queue, NodeID(v))
		}
	}
	order := make([]NodeID, 0, d.n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range d.adj[u] {
			pending[v]--
			if pending[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != d.n {
		return nil, fmt.Errorf("dag: %d of %d nodes unreachable by Kahn's algorithm: %w",
			d.n-len(order), d.n, ErrCycle)
	}
	return order, nil
}

// DAG is an immutable directed acyclic graph. Construct one via Builder.
type DAG struct {
	n      int
	nEdges int
	adj    [][]NodeID // children of each node
	radj   [][]NodeID // parents of each node
	indeg  []int
	outdeg []int
	topo   []NodeID
}

// NumNodes returns the number of nodes.
func (d *DAG) NumNodes() int { return d.n }

// NumEdges returns the number of distinct edges.
func (d *DAG) NumEdges() int { return d.nEdges }

// Children returns the out-neighbors of id. The returned slice is shared and
// must not be modified.
func (d *DAG) Children(id NodeID) []NodeID { return d.adj[id] }

// Parents returns the in-neighbors of id. The returned slice is shared and
// must not be modified.
func (d *DAG) Parents(id NodeID) []NodeID { return d.radj[id] }

// InDegree returns the number of edges entering id.
func (d *DAG) InDegree(id NodeID) int { return d.indeg[id] }

// OutDegree returns the number of edges leaving id.
func (d *DAG) OutDegree(id NodeID) int { return d.outdeg[id] }

// TopoOrder returns a topological order of all nodes. The returned slice is
// shared and must not be modified.
func (d *DAG) TopoOrder() []NodeID { return d.topo }

// Sources returns all nodes with in-degree zero, in ascending ID order.
func (d *DAG) Sources() []NodeID {
	var s []NodeID
	for v := 0; v < d.n; v++ {
		if d.indeg[v] == 0 {
			s = append(s, NodeID(v))
		}
	}
	return s
}

// Sinks returns all nodes with out-degree zero, in ascending ID order.
func (d *DAG) Sinks() []NodeID {
	var s []NodeID
	for v := 0; v < d.n; v++ {
		if d.outdeg[v] == 0 {
			s = append(s, NodeID(v))
		}
	}
	return s
}

// Depth returns the length in edges of the longest path in the DAG
// (the critical-path length, i.e. the span of the task graph).
func (d *DAG) Depth() int {
	depth := make([]int, d.n)
	max := 0
	for _, u := range d.topo {
		for _, v := range d.adj[u] {
			if depth[u]+1 > depth[v] {
				depth[v] = depth[u] + 1
				if depth[v] > max {
					max = depth[v]
				}
			}
		}
	}
	return max
}
