package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/api"
)

// newTestServer stands up a real Service behind an httptest server.
func newTestServer(t *testing.T, opts core.ServiceOptions) *httptest.Server {
	t.Helper()
	svc, err := core.NewService(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return ts
}

func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if len(raw) > 0 && strings.Contains(resp.Header.Get("Content-Type"), "json") {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, decoded
}

// errCode extracts the machine-readable code from a structured error
// envelope body, failing the test if the envelope shape is wrong.
func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	env, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response is not a structured error envelope: %v", body)
	}
	code, _ := env["code"].(string)
	if code == "" {
		t.Fatalf("error envelope has no code: %v", body)
	}
	if msg, _ := env["message"].(string); msg == "" {
		t.Fatalf("error envelope has no message: %v", body)
	}
	return code
}

// pollUntil polls GET /v1/runs/{id} until the run state matches want.
func pollUntil(t *testing.T, base, id, want string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		code, body := doJSON(t, http.MethodGet, base+"/v1/runs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("GET run %s: status %d", id, code)
		}
		state, _ := body["state"].(string)
		if state == want {
			return body
		}
		switch state {
		case "succeeded", "failed", "cancelled":
			t.Fatalf("run %s reached %s (error %v), want %s", id, state, body["error"], want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %s", id, want)
	return nil
}

func submit(t *testing.T, base, spec string) string {
	t.Helper()
	code, body := doJSON(t, http.MethodPost, base+"/v1/runs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs %s: status %d body %v", spec, code, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("submit returned no id: %v", body)
	}
	if state, _ := body["state"].(string); state != "queued" {
		t.Fatalf("submitted run state = %q, want queued", state)
	}
	return id
}

// TestEndToEndBothShapes is the acceptance-criteria test: submit random and
// pipeline specs over HTTP, poll to succeeded, and check the parallel
// sink-path count matched the serial reference inside the service.
func TestEndToEndBothShapes(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 8, Dispatchers: 2})
	specs := []string{
		`{"shape":"random","nodes":500,"p":0.02,"seed":11,"workers":4}`,
		`{"shape":"pipeline","stages":80,"width":4,"work":10}`,
	}
	for _, spec := range specs {
		id := submit(t, ts.URL, spec)
		body := pollUntil(t, ts.URL, id, "succeeded")
		result, ok := body["result"].(map[string]any)
		if !ok {
			t.Fatalf("succeeded run has no result: %v", body)
		}
		if match, _ := result["match"].(bool); !match {
			t.Errorf("spec %s: match = false", spec)
		}
		if paths, _ := result["sink_paths_mod64"].(float64); paths == 0 {
			t.Errorf("spec %s: zero sink paths", spec)
		}
		if _, hasStart := body["started_at"]; !hasStart {
			t.Errorf("spec %s: missing started_at", spec)
		}
	}
}

// TestEndToEndAllWorkloads submits one run per registered workload over
// HTTP and requires each to pass its serial-vs-parallel self-check — the
// acceptance criterion for workload pluggability.
func TestEndToEndAllWorkloads(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 8, Dispatchers: 2})
	for _, name := range core.Workloads() {
		spec := fmt.Sprintf(`{"shape":"random","nodes":300,"p":0.03,"seed":5,"workload":%q}`, name)
		id := submit(t, ts.URL, spec)
		body := pollUntil(t, ts.URL, id, "succeeded")
		result, ok := body["result"].(map[string]any)
		if !ok {
			t.Fatalf("workload %s: no result: %v", name, body)
		}
		if match, _ := result["match"].(bool); !match {
			t.Errorf("workload %s: match = false", name)
		}
		if got, _ := result["workload"].(string); got != name {
			t.Errorf("result workload = %q, want %q", got, name)
		}
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1, DefaultWorkload: "longestpath"})
	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/workloads", "")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/workloads: status %d", code)
	}
	if def, _ := body["default"].(string); def != "longestpath" {
		t.Errorf("default = %v, want longestpath", body["default"])
	}
	names, _ := body["workloads"].([]any)
	if len(names) < 3 {
		t.Fatalf("workloads = %v, want at least the three built-ins", body["workloads"])
	}
	for _, want := range []string{"pathcount", "hashchain", "longestpath"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("workloads list missing %q: %v", want, names)
		}
	}
	if n, _ := body["count"].(float64); int(n) != len(names) {
		t.Errorf("count = %v, want %d", body["count"], len(names))
	}
}

func TestCancelInFlightOverHTTP(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1})
	id := submit(t, ts.URL, `{"shape":"pipeline","stages":40000,"width":4,"work":2000}`)
	pollUntil(t, ts.URL, id, "running")
	code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/runs/"+id+"/cancel", "")
	if code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	pollUntil(t, ts.URL, id, "cancelled")
	// Cancelling a terminal run conflicts.
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/runs/"+id+"/cancel", ""); code != http.StatusConflict {
		t.Errorf("cancel terminal run: status %d, want 409", code)
	}
}

func TestListAndFilter(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 8, Dispatchers: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submit(t, ts.URL, fmt.Sprintf(`{"shape":"pipeline","stages":20,"width":2,"seed":%d}`, i)))
	}
	for _, id := range ids {
		pollUntil(t, ts.URL, id, "succeeded")
	}
	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/runs", "")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if n, _ := body["count"].(float64); int(n) != 3 {
		t.Errorf("list count = %v, want 3", body["count"])
	}
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/runs?state=succeeded", "")
	if code != http.StatusOK || int(body["count"].(float64)) != 3 {
		t.Errorf("filtered list = %d %v", code, body)
	}
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/runs?state=failed", "")
	if code != http.StatusOK || int(body["count"].(float64)) != 0 {
		t.Errorf("failed filter = %d %v", code, body)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/runs?state=bogus", ""); code != http.StatusBadRequest {
		t.Errorf("bogus state filter: status %d, want 400", code)
	}
}

// TestErrorPaths pins the acceptance criterion that every 4xx/5xx carries
// the structured envelope with a documented machine-readable code — even
// the 404/405s the stdlib mux generates for unmatched routes.
func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1})
	cases := []struct {
		method, path, body string
		want               int
		code               string
	}{
		{"GET", "/v1/runs/r999999-deadbeef", "", http.StatusNotFound, "not_found"},
		{"POST", "/v1/runs/r999999-deadbeef/cancel", "", http.StatusNotFound, "not_found"},
		{"POST", "/v1/runs", `not json`, http.StatusBadRequest, "invalid_request"},
		{"POST", "/v1/runs", `{"shape":"random","nodes":1}`, http.StatusBadRequest, "invalid_spec"},
		// An unparseable shape name fails at JSON decode, before spec
		// validation, so it is an invalid_request, not an invalid_spec.
		{"POST", "/v1/runs", `{"shape":"hexagon"}`, http.StatusBadRequest, "invalid_request"},
		{"POST", "/v1/runs", `{"shape":"pipeline","stages":5,"width":2,"workload":"bogus"}`, http.StatusBadRequest, "unknown_workload"},
		{"POST", "/v1/runs", `{"shape":"pipeline","stages":5,"width":2,"bogus_knob":1}`, http.StatusBadRequest, "invalid_request"},
		{"GET", "/v1/runs?state=bogus", "", http.StatusBadRequest, "invalid_request"},
		{"GET", "/no/such/path", "", http.StatusNotFound, "not_found"},
		{"DELETE", "/v1/runs", "", http.StatusMethodNotAllowed, "method_not_allowed"},
	}
	for _, tc := range cases {
		code, body := doJSON(t, tc.method, ts.URL+tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s %s: status %d, want %d (body %v)", tc.method, tc.path, code, tc.want, body)
		}
		if got := errCode(t, body); got != tc.code {
			t.Errorf("%s %s: error code %q, want %q", tc.method, tc.path, got, tc.code)
		}
	}
}

// TestExplicitSpecAdmission covers every malformed explicit-graph class:
// each must 400 with code invalid_spec at admission and never reach a
// dispatcher (no run may exist afterwards).
func TestExplicitSpecAdmission(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 8, Dispatchers: 1})
	cases := []struct {
		name, spec string
	}{
		{"cycle", `{"shape":"explicit","nodes":3,"edges":[[0,1],[1,2],[2,0]]}`},
		{"self edge", `{"shape":"explicit","nodes":3,"edges":[[1,1]]}`},
		{"duplicate edge", `{"shape":"explicit","nodes":3,"edges":[[0,1],[0,1]]}`},
		{"out of range", `{"shape":"explicit","nodes":3,"edges":[[0,5]]}`},
		{"negative index", `{"shape":"explicit","nodes":3,"edges":[[-1,2]]}`},
		{"zero nodes", `{"shape":"explicit","nodes":0}`},
		{"edges on generated shape", `{"shape":"random","nodes":10,"p":0.1,"edges":[[0,1]]}`},
	}
	for _, tc := range cases {
		code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/runs", tc.spec)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %v)", tc.name, code, body)
			continue
		}
		if got := errCode(t, body); got != "invalid_spec" {
			t.Errorf("%s: error code %q, want invalid_spec", tc.name, got)
		}
	}
	// An over-cap edge list must also be invalid_spec (the length check
	// fires before edge content is examined, so junk filler is fine).
	edges := bytes.Repeat([]byte("[0,1],"), 1<<22+1)
	huge := fmt.Sprintf(`{"shape":"explicit","nodes":2,"edges":[%s]}`, edges[:len(edges)-1])
	code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/runs", huge)
	if code != http.StatusBadRequest || errCode(t, body) != "invalid_spec" {
		t.Errorf("over-cap edges: status %d code %v, want 400 invalid_spec", code, body)
	}
	// Nothing above may have left a run behind: admission failures never
	// reach the store or a dispatcher.
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/runs", "")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if n, _ := body["count"].(float64); n != 0 {
		t.Errorf("rejected specs left %v runs in the store", body["count"])
	}
}

// TestExplicitEndToEnd submits a client-authored diamond DAG and verifies
// it executes with the serial self-check matching.
func TestExplicitEndToEnd(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1})
	id := submit(t, ts.URL, `{"shape":"explicit","nodes":4,"edges":[[0,1],[0,2],[1,3],[2,3]],"workload":"pathcount"}`)
	body := pollUntil(t, ts.URL, id, "succeeded")
	result, ok := body["result"].(map[string]any)
	if !ok {
		t.Fatalf("no result: %v", body)
	}
	if match, _ := result["match"].(bool); !match {
		t.Error("explicit run: match = false")
	}
	// Diamond has exactly two source→sink paths.
	if paths, _ := result["sink_paths_mod64"].(float64); paths != 2 {
		t.Errorf("diamond sink paths = %v, want 2", result["sink_paths_mod64"])
	}
	if nodes, _ := result["nodes"].(float64); nodes != 4 {
		t.Errorf("nodes = %v, want 4", result["nodes"])
	}
}

func TestUnsupportedMediaType(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1})
	spec := `{"shape":"pipeline","stages":5,"width":2}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("text/plain submit: status %d, want 415", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if got := errCode(t, body); got != "unsupported_media_type" {
		t.Errorf("error code %q, want unsupported_media_type", got)
	}
	// application/json with a charset parameter is fine.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs", strings.NewReader(spec))
	req2.Header.Set("Content-Type", "application/json; charset=utf-8")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Errorf("application/json;charset submit: status %d, want 202", resp2.StatusCode)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 1, Dispatchers: 1})
	// Occupy the dispatcher and fill the queue with slow runs.
	slow := `{"shape":"pipeline","stages":2000,"width":4,"work":20000}`
	id := submit(t, ts.URL, slow)
	pollUntil(t, ts.URL, id, "running")
	submit(t, ts.URL, slow)
	got429 := false
	for i := 0; i < 20 && !got429; i++ {
		code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/runs", slow)
		got429 = code == http.StatusTooManyRequests
	}
	if !got429 {
		t.Error("saturated queue never returned 429")
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 7, Dispatchers: 2})
	code, body := doJSON(t, http.MethodGet, ts.URL+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if status, _ := body["status"].(string); status != "ok" {
		t.Errorf("healthz status = %v", body["status"])
	}
	stats, ok := body["stats"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing stats: %v", body)
	}
	if depth, _ := stats["queue_depth"].(float64); int(depth) != 7 {
		t.Errorf("queue_depth = %v, want 7", stats["queue_depth"])
	}
}

// TestReadyz covers the liveness/readiness split: /healthz stays 200 while
// the service drains, /readyz flips to 503 shutting_down the moment
// shutdown starts.
func TestReadyz(t *testing.T) {
	svc, err := core.NewService(core.ServiceOptions{QueueDepth: 4, Dispatchers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(svc).Handler())
	defer ts.Close()

	code, body := doJSON(t, http.MethodGet, ts.URL+"/readyz", "")
	if code != http.StatusOK {
		t.Fatalf("readyz before shutdown: status %d (body %v)", code, body)
	}
	if status, _ := body["status"].(string); status != "ok" {
		t.Errorf("readyz status = %v, want ok", body["status"])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	code, body = doJSON(t, http.MethodGet, ts.URL+"/readyz", "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d, want 503", code)
	}
	if got := errCode(t, body); got != "shutting_down" {
		t.Errorf("readyz error code %q, want shutting_down", got)
	}
	// Liveness is unchanged: the process can still serve.
	code, body = doJSON(t, http.MethodGet, ts.URL+"/healthz", "")
	if code != http.StatusOK {
		t.Errorf("healthz while draining: status %d, want 200", code)
	}
	if status, _ := body["status"].(string); status != "ok" {
		t.Errorf("healthz status while draining = %v, want ok", body["status"])
	}
}

// TestWaitParam covers the ?wait= long-poll: a single GET parks until the
// run finishes instead of requiring a busy-poll loop.
func TestWaitParam(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 2})
	id := submit(t, ts.URL, `{"shape":"pipeline","stages":200,"width":4,"work":100}`)
	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/runs/"+id+"?wait=20s", "")
	if code != http.StatusOK {
		t.Fatalf("wait poll: status %d (body %v)", code, body)
	}
	if state, _ := body["state"].(string); state != "succeeded" {
		t.Errorf("state after ?wait= poll = %q, want succeeded", state)
	}

	// A wait that expires returns the current snapshot, not an error.
	slow := submit(t, ts.URL, `{"shape":"pipeline","stages":40000,"width":4,"work":3000}`)
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/runs/"+slow+"?wait=50ms", "")
	if code != http.StatusOK {
		t.Fatalf("expired wait: status %d", code)
	}
	if state, _ := body["state"].(string); state != "queued" && state != "running" {
		t.Errorf("expired wait state = %q, want queued|running", state)
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/runs/"+slow+"/cancel", ""); code != http.StatusOK {
		t.Fatalf("cancel slow run: status %d", code)
	}

	// Malformed and negative waits are invalid_request.
	for _, bad := range []string{"bogus", "-1s"} {
		code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/runs/"+id+"?wait="+bad, "")
		if code != http.StatusBadRequest || errCode(t, body) != "invalid_request" {
			t.Errorf("wait=%s: status %d body %v, want 400 invalid_request", bad, code, body)
		}
	}
	// Waiting on a missing run is a plain 404.
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/runs/r999999-deadbeef?wait=1s", "")
	if code != http.StatusNotFound || errCode(t, body) != "not_found" {
		t.Errorf("wait on missing run: status %d body %v, want 404 not_found", code, body)
	}
}

// TestListPagination walks ?limit=&cursor= pages and checks the union is
// exactly the full stable-ordered listing.
func TestListPagination(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 16, Dispatchers: 2})
	const total = 7
	for i := 0; i < total; i++ {
		id := submit(t, ts.URL, fmt.Sprintf(`{"shape":"pipeline","stages":10,"width":2,"seed":%d}`, i))
		pollUntil(t, ts.URL, id, "succeeded")
	}

	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/runs", "")
	if code != http.StatusOK {
		t.Fatalf("full list: status %d", code)
	}
	full := body["runs"].([]any)
	if len(full) != total {
		t.Fatalf("full list has %d runs, want %d", len(full), total)
	}
	var wantIDs []string
	for _, r := range full {
		wantIDs = append(wantIDs, r.(map[string]any)["id"].(string))
	}

	var gotIDs []string
	cursor := ""
	pages := 0
	for {
		url := ts.URL + "/v1/runs?limit=3"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		code, body := doJSON(t, http.MethodGet, url, "")
		if code != http.StatusOK {
			t.Fatalf("page %d: status %d", pages, code)
		}
		runs := body["runs"].([]any)
		if len(runs) > 3 {
			t.Fatalf("page %d has %d runs, limit was 3", pages, len(runs))
		}
		for _, r := range runs {
			gotIDs = append(gotIDs, r.(map[string]any)["id"].(string))
		}
		next, _ := body["next_cursor"].(string)
		if next == "" {
			break
		}
		cursor = next
		if pages++; pages > total {
			t.Fatal("pagination never terminated")
		}
	}
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Errorf("paged IDs %v != full listing %v", gotIDs, wantIDs)
	}

	// Bad cursor and bad limit are invalid_request.
	for _, q := range []string{"cursor=%21%21%21", "limit=0", "limit=-2", "limit=x"} {
		code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/runs?"+q, "")
		if code != http.StatusBadRequest || errCode(t, body) != "invalid_request" {
			t.Errorf("?%s: status %d body %v, want 400 invalid_request", q, code, body)
		}
	}
}

// TestClassifyRequestTooLarge pins that the submit handler's double-%w
// wrapping keeps *http.MaxBytesError reachable through the error chain,
// so oversized bodies classify as 413 request_too_large rather than
// collapsing into 400 invalid_request.
func TestClassifyRequestTooLarge(t *testing.T) {
	wrapped := fmt.Errorf("%w: decoding spec: %w", errInvalidRequest, &http.MaxBytesError{Limit: maxSpecBytes})
	status, code := classify(wrapped)
	if status != http.StatusRequestEntityTooLarge || code != api.CodeRequestTooLarge {
		t.Errorf("classify(MaxBytesError) = %d %s, want 413 request_too_large", status, code)
	}
}

// TestRequestIDHeader covers the logging middleware's ID propagation: a
// generated X-Request-ID on every response, and incoming IDs echoed back.
func TestRequestIDHeader(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-ID"); rid == "" {
		t.Error("response missing generated X-Request-ID")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-supplied-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-ID"); rid != "caller-supplied-42" {
		t.Errorf("X-Request-ID = %q, want the caller-supplied value echoed", rid)
	}
}

// TestGracefulServeDrain exercises the serve loop directly: cancel the
// context and verify in-flight runs drain to completion before exit.
func TestGracefulServeDrain(t *testing.T) {
	svc, err := core.NewService(core.ServiceOptions{QueueDepth: 4, Dispatchers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(svc)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	ln := newLocalListener(t)
	go func() { done <- srv.serve(ctx, ln, 15*time.Second) }()
	base := "http://" + ln.Addr().String()

	// Wait for the listener to accept.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(base + "/healthz"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}

	id := submit(t, base, `{"shape":"pipeline","stages":20000,"width":4,"work":3000}`)
	pollUntil(t, base, id, "running")
	cancel()
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "closed") {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("serve did not return after ctx cancel")
	}
	// The in-flight run must have drained to success, not been dropped.
	r, err := svc.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != core.RunSucceeded {
		t.Errorf("drained run state = %s, want succeeded", r.State)
	}
}

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// doJSONTenant is doJSON with an X-Tenant header, returning the raw
// response for header assertions.
func doJSONTenant(t *testing.T, method, url, tenant, body string) (*http.Response, map[string]any) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if len(raw) > 0 && strings.Contains(resp.Header.Get("Content-Type"), "json") {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp, decoded
}

func specTenant(t *testing.T, body map[string]any) string {
	t.Helper()
	spec, _ := body["spec"].(map[string]any)
	if spec == nil {
		t.Fatalf("run body has no spec: %v", body)
	}
	name, _ := spec["tenant"].(string)
	return name
}

// TestTenantHeaderAttribution: X-Tenant decides attribution — configured
// names stick, unknown or absent ones collapse to "default", and a
// body-smuggled tenant never wins over the header.
func TestTenantHeaderAttribution(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{
		QueueDepth:  8,
		Dispatchers: 1,
		Tenants:     []core.TenantConfig{{Name: "alpha", Priority: 2}},
	})
	spec := `{"shape":"pipeline","stages":5,"width":2}`

	resp, body := doJSONTenant(t, http.MethodPost, ts.URL+"/v1/runs", "alpha", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit as alpha: status %d body %v", resp.StatusCode, body)
	}
	if got := specTenant(t, body); got != "alpha" {
		t.Errorf("attribution = %q, want alpha", got)
	}
	if prio, _ := body["spec"].(map[string]any)["priority"].(float64); prio != 2 {
		t.Errorf("stamped priority = %v, want 2", prio)
	}

	resp, body = doJSONTenant(t, http.MethodPost, ts.URL+"/v1/runs", "never-configured", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit as unknown tenant: status %d", resp.StatusCode)
	}
	if got := specTenant(t, body); got != "default" {
		t.Errorf("unknown tenant attributed to %q, want default", got)
	}

	// The body field is ignored: identity comes from the header only.
	smuggled := `{"shape":"pipeline","stages":5,"width":2,"tenant":"alpha","priority":9}`
	resp, body = doJSONTenant(t, http.MethodPost, ts.URL+"/v1/runs", "", smuggled)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with body tenant: status %d body %v", resp.StatusCode, body)
	}
	if got := specTenant(t, body); got != "default" {
		t.Errorf("body-smuggled tenant won attribution: %q", got)
	}
}

// TestInvalidTenantHeader: syntactically invalid X-Tenant values are a 400
// invalid_request, not silently rebadged as "default".
func TestInvalidTenantHeader(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1})
	spec := `{"shape":"pipeline","stages":5,"width":2}`
	for name, header := range map[string]string{
		"overlong": strings.Repeat("x", 200),
		"tab":      "bad\tname",
	} {
		t.Run(name, func(t *testing.T) {
			resp, body := doJSONTenant(t, http.MethodPost, ts.URL+"/v1/runs", header, spec)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if code := errCode(t, body); code != string(api.CodeInvalidRequest) {
				t.Errorf("code = %q, want invalid_request", code)
			}
		})
	}
}

// TestTenantRateLimit429RetryAfter: past the tenant's token bucket the API
// answers 429 rate_limited with a Retry-After header and retry details —
// and other tenants keep submitting.
func TestTenantRateLimit429RetryAfter(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{
		QueueDepth:  8,
		Dispatchers: 1,
		Tenants:     []core.TenantConfig{{Name: "limited", SubmitRate: 0.01, SubmitBurst: 1}},
	})
	spec := `{"shape":"pipeline","stages":5,"width":2}`

	resp, body := doJSONTenant(t, http.MethodPost, ts.URL+"/v1/runs", "limited", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit within burst: status %d body %v", resp.StatusCode, body)
	}
	resp, body = doJSONTenant(t, http.MethodPost, ts.URL+"/v1/runs", "limited", spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: status %d, want 429", resp.StatusCode)
	}
	if code := errCode(t, body); code != string(api.CodeRateLimited) {
		t.Errorf("code = %q, want rate_limited", code)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After header = %q, want a positive delay-seconds value", ra)
	}
	details, _ := body["error"].(map[string]any)["details"].(map[string]any)
	if details["tenant"] != "limited" {
		t.Errorf("details.tenant = %v, want limited", details["tenant"])
	}
	if ms, _ := details["retry_after_ms"].(float64); ms <= 0 {
		t.Errorf("details.retry_after_ms = %v, want positive", details["retry_after_ms"])
	}

	// Another tenant is unaffected by the limited one's bucket.
	resp, _ = doJSONTenant(t, http.MethodPost, ts.URL+"/v1/runs", "", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("default-tenant submit during rate limiting: status %d", resp.StatusCode)
	}
}

// TestTenantQuota429: a tenant at its queue-depth quota gets 429
// quota_exceeded (with Retry-After) while other tenants still submit.
func TestTenantQuota429(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{
		QueueDepth:  64,
		Dispatchers: 1,
		Tenants:     []core.TenantConfig{{Name: "small", MaxQueueDepth: 1}},
	})
	// Occupy the single dispatcher so submissions stay queued.
	plugID := submit(t, ts.URL, `{"shape":"pipeline","stages":40000,"width":4,"work":2000}`)
	pollUntil(t, ts.URL, plugID, "running")
	defer doJSON(t, http.MethodPost, ts.URL+"/v1/runs/"+plugID+"/cancel", "")

	spec := `{"shape":"pipeline","stages":5,"width":2}`
	resp, _ := doJSONTenant(t, http.MethodPost, ts.URL+"/v1/runs", "small", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit within quota: status %d", resp.StatusCode)
	}
	resp, body := doJSONTenant(t, http.MethodPost, ts.URL+"/v1/runs", "small", spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	if code := errCode(t, body); code != string(api.CodeQuotaExceeded) {
		t.Errorf("code = %q, want quota_exceeded", code)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 quota_exceeded carries no Retry-After header")
	}
	resp, _ = doJSONTenant(t, http.MethodPost, ts.URL+"/v1/runs", "", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("default-tenant submit while another tenant is at quota: status %d", resp.StatusCode)
	}
}

// TestListTenantFilter: ?tenant= narrows the listing to one tenant's runs
// and composes with ?state=.
func TestListTenantFilter(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{
		QueueDepth:  16,
		Dispatchers: 2,
		Tenants:     []core.TenantConfig{{Name: "alpha"}, {Name: "beta"}},
	})
	spec := `{"shape":"pipeline","stages":5,"width":2}`
	var alphaIDs []string
	for i := 0; i < 3; i++ {
		resp, body := doJSONTenant(t, http.MethodPost, ts.URL+"/v1/runs", "alpha", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatal("alpha submit failed")
		}
		alphaIDs = append(alphaIDs, body["id"].(string))
	}
	for i := 0; i < 2; i++ {
		if resp, _ := doJSONTenant(t, http.MethodPost, ts.URL+"/v1/runs", "beta", spec); resp.StatusCode != http.StatusAccepted {
			t.Fatal("beta submit failed")
		}
	}
	for _, id := range alphaIDs {
		pollUntil(t, ts.URL, id, "succeeded")
	}

	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/runs?tenant=alpha", "")
	if code != http.StatusOK {
		t.Fatalf("list?tenant=alpha: status %d", code)
	}
	runs, _ := body["runs"].([]any)
	if len(runs) != 3 {
		t.Fatalf("tenant=alpha listed %d runs, want 3", len(runs))
	}
	for _, rr := range runs {
		spec, _ := rr.(map[string]any)["spec"].(map[string]any)
		if spec["tenant"] != "alpha" {
			t.Errorf("tenant=alpha listing leaked a %v run", spec["tenant"])
		}
	}
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/runs?tenant=alpha&state=succeeded", "")
	if code != http.StatusOK {
		t.Fatalf("combined filter: status %d", code)
	}
	if n, _ := body["count"].(float64); int(n) != 3 {
		t.Errorf("tenant+state filter count = %v, want 3", n)
	}
	// An unknown tenant filter is an empty page, not an error.
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/runs?tenant=nobody", "")
	if code != http.StatusOK {
		t.Fatalf("list?tenant=nobody: status %d", code)
	}
	if n, _ := body["count"].(float64); n != 0 {
		t.Errorf("unknown tenant filter count = %v, want 0", n)
	}
}

// TestHealthzTenantStats: /healthz exposes per-tenant queue stats.
func TestHealthzTenantStats(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{
		QueueDepth:  4,
		Dispatchers: 1,
		Tenants:     []core.TenantConfig{{Name: "alpha", Weight: 3}},
	})
	code, body := doJSON(t, http.MethodGet, ts.URL+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	stats, _ := body["stats"].(map[string]any)
	tenants, _ := stats["tenants"].(map[string]any)
	if tenants == nil {
		t.Fatalf("healthz stats carry no tenants map: %v", stats)
	}
	alpha, _ := tenants["alpha"].(map[string]any)
	if alpha == nil || alpha["weight"].(float64) != 3 {
		t.Errorf("tenants.alpha = %v, want weight 3", tenants["alpha"])
	}
	if _, ok := tenants["default"]; !ok {
		t.Error("tenants map missing the catch-all default")
	}
}
