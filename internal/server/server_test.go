package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
)

// newTestServer stands up a real Service behind an httptest server.
func newTestServer(t *testing.T, opts core.ServiceOptions) *httptest.Server {
	t.Helper()
	svc := core.NewService(opts)
	ts := httptest.NewServer(New(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return ts
}

func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if len(raw) > 0 && strings.Contains(resp.Header.Get("Content-Type"), "json") {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, decoded
}

// pollUntil polls GET /v1/runs/{id} until the run state matches want.
func pollUntil(t *testing.T, base, id, want string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		code, body := doJSON(t, http.MethodGet, base+"/v1/runs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("GET run %s: status %d", id, code)
		}
		state, _ := body["state"].(string)
		if state == want {
			return body
		}
		switch state {
		case "succeeded", "failed", "cancelled":
			t.Fatalf("run %s reached %s (error %v), want %s", id, state, body["error"], want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %s", id, want)
	return nil
}

func submit(t *testing.T, base, spec string) string {
	t.Helper()
	code, body := doJSON(t, http.MethodPost, base+"/v1/runs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs %s: status %d body %v", spec, code, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("submit returned no id: %v", body)
	}
	if state, _ := body["state"].(string); state != "queued" {
		t.Fatalf("submitted run state = %q, want queued", state)
	}
	return id
}

// TestEndToEndBothShapes is the acceptance-criteria test: submit random and
// pipeline specs over HTTP, poll to succeeded, and check the parallel
// sink-path count matched the serial reference inside the service.
func TestEndToEndBothShapes(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 8, Dispatchers: 2})
	specs := []string{
		`{"shape":"random","nodes":500,"p":0.02,"seed":11,"workers":4}`,
		`{"shape":"pipeline","stages":80,"width":4,"work":10}`,
	}
	for _, spec := range specs {
		id := submit(t, ts.URL, spec)
		body := pollUntil(t, ts.URL, id, "succeeded")
		result, ok := body["result"].(map[string]any)
		if !ok {
			t.Fatalf("succeeded run has no result: %v", body)
		}
		if match, _ := result["match"].(bool); !match {
			t.Errorf("spec %s: match = false", spec)
		}
		if paths, _ := result["sink_paths_mod64"].(float64); paths == 0 {
			t.Errorf("spec %s: zero sink paths", spec)
		}
		if _, hasStart := body["started_at"]; !hasStart {
			t.Errorf("spec %s: missing started_at", spec)
		}
	}
}

// TestEndToEndAllWorkloads submits one run per registered workload over
// HTTP and requires each to pass its serial-vs-parallel self-check — the
// acceptance criterion for workload pluggability.
func TestEndToEndAllWorkloads(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 8, Dispatchers: 2})
	for _, name := range core.Workloads() {
		spec := fmt.Sprintf(`{"shape":"random","nodes":300,"p":0.03,"seed":5,"workload":%q}`, name)
		id := submit(t, ts.URL, spec)
		body := pollUntil(t, ts.URL, id, "succeeded")
		result, ok := body["result"].(map[string]any)
		if !ok {
			t.Fatalf("workload %s: no result: %v", name, body)
		}
		if match, _ := result["match"].(bool); !match {
			t.Errorf("workload %s: match = false", name)
		}
		if got, _ := result["workload"].(string); got != name {
			t.Errorf("result workload = %q, want %q", got, name)
		}
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1, DefaultWorkload: "longestpath"})
	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/workloads", "")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/workloads: status %d", code)
	}
	if def, _ := body["default"].(string); def != "longestpath" {
		t.Errorf("default = %v, want longestpath", body["default"])
	}
	names, _ := body["workloads"].([]any)
	if len(names) < 3 {
		t.Fatalf("workloads = %v, want at least the three built-ins", body["workloads"])
	}
	for _, want := range []string{"pathcount", "hashchain", "longestpath"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("workloads list missing %q: %v", want, names)
		}
	}
	if n, _ := body["count"].(float64); int(n) != len(names) {
		t.Errorf("count = %v, want %d", body["count"], len(names))
	}
}

func TestCancelInFlightOverHTTP(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1})
	id := submit(t, ts.URL, `{"shape":"pipeline","stages":40000,"width":4,"work":2000}`)
	pollUntil(t, ts.URL, id, "running")
	code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/runs/"+id+"/cancel", "")
	if code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	pollUntil(t, ts.URL, id, "cancelled")
	// Cancelling a terminal run conflicts.
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/runs/"+id+"/cancel", ""); code != http.StatusConflict {
		t.Errorf("cancel terminal run: status %d, want 409", code)
	}
}

func TestListAndFilter(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 8, Dispatchers: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submit(t, ts.URL, fmt.Sprintf(`{"shape":"pipeline","stages":20,"width":2,"seed":%d}`, i)))
	}
	for _, id := range ids {
		pollUntil(t, ts.URL, id, "succeeded")
	}
	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/runs", "")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if n, _ := body["count"].(float64); int(n) != 3 {
		t.Errorf("list count = %v, want 3", body["count"])
	}
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/runs?state=succeeded", "")
	if code != http.StatusOK || int(body["count"].(float64)) != 3 {
		t.Errorf("filtered list = %d %v", code, body)
	}
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/runs?state=failed", "")
	if code != http.StatusOK || int(body["count"].(float64)) != 0 {
		t.Errorf("failed filter = %d %v", code, body)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/runs?state=bogus", ""); code != http.StatusBadRequest {
		t.Errorf("bogus state filter: status %d, want 400", code)
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1})
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/v1/runs/r999999-deadbeef", "", http.StatusNotFound},
		{"POST", "/v1/runs/r999999-deadbeef/cancel", "", http.StatusNotFound},
		{"POST", "/v1/runs", `not json`, http.StatusBadRequest},
		{"POST", "/v1/runs", `{"shape":"random","nodes":1}`, http.StatusBadRequest},
		{"POST", "/v1/runs", `{"shape":"hexagon"}`, http.StatusBadRequest},
		{"POST", "/v1/runs", `{"shape":"pipeline","stages":5,"width":2,"workload":"bogus"}`, http.StatusBadRequest},
		{"POST", "/v1/runs", `{"shape":"pipeline","stages":5,"width":2,"bogus_knob":1}`, http.StatusBadRequest},
		{"DELETE", "/v1/runs", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		code, body := doJSON(t, tc.method, ts.URL+tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s %s: status %d, want %d (body %v)", tc.method, tc.path, code, tc.want, body)
		}
		if code >= 400 && code != http.StatusMethodNotAllowed {
			if msg, _ := body["error"].(string); msg == "" {
				t.Errorf("%s %s: error body missing message: %v", tc.method, tc.path, body)
			}
		}
	}
}

func TestQueueFullReturns429(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 1, Dispatchers: 1})
	// Occupy the dispatcher and fill the queue with slow runs.
	slow := `{"shape":"pipeline","stages":2000,"width":4,"work":20000}`
	id := submit(t, ts.URL, slow)
	pollUntil(t, ts.URL, id, "running")
	submit(t, ts.URL, slow)
	got429 := false
	for i := 0; i < 20 && !got429; i++ {
		code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/runs", slow)
		got429 = code == http.StatusTooManyRequests
	}
	if !got429 {
		t.Error("saturated queue never returned 429")
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 7, Dispatchers: 2})
	code, body := doJSON(t, http.MethodGet, ts.URL+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if status, _ := body["status"].(string); status != "ok" {
		t.Errorf("healthz status = %v", body["status"])
	}
	stats, ok := body["stats"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing stats: %v", body)
	}
	if depth, _ := stats["queue_depth"].(float64); int(depth) != 7 {
		t.Errorf("queue_depth = %v, want 7", stats["queue_depth"])
	}
}

// TestGracefulServeDrain exercises the serve loop directly: cancel the
// context and verify in-flight runs drain to completion before exit.
func TestGracefulServeDrain(t *testing.T) {
	svc := core.NewService(core.ServiceOptions{QueueDepth: 4, Dispatchers: 2})
	srv := New(svc)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	ln := newLocalListener(t)
	go func() { done <- srv.serve(ctx, ln, 15*time.Second) }()
	base := "http://" + ln.Addr().String()

	// Wait for the listener to accept.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(base + "/healthz"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}

	id := submit(t, base, `{"shape":"pipeline","stages":20000,"width":4,"work":3000}`)
	pollUntil(t, base, id, "running")
	cancel()
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "closed") {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("serve did not return after ctx cancel")
	}
	// The in-flight run must have drained to success, not been dropped.
	r, err := svc.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != core.RunSucceeded {
		t.Errorf("drained run state = %s, want succeeded", r.State)
	}
}

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}
