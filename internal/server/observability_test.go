package server

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/metrics"
)

// hammerSubmits floods POST /v1/runs with small fast runs from n goroutines
// (rotating through the given tenants; "" means no X-Tenant header) until
// stop is closed. Responses are drained and discarded — backpressure 429s
// are expected and fine; the point is to keep the dispatcher's counters
// moving while the observability surfaces are read.
func hammerSubmits(t *testing.T, base string, tenants []string, n int, stop <-chan struct{}) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn := tenants[i%len(tenants)]
			for {
				select {
				case <-stop:
					return
				default:
				}
				req, err := http.NewRequest(http.MethodPost, base+"/v1/runs",
					strings.NewReader(`{"shape":"pipeline","stages":5,"width":2,"work":5}`))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				if tn != "" {
					req.Header.Set("X-Tenant", tn)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return // server closing down under t.Cleanup
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	return &wg
}

// TestHealthzConsistentSnapshotUnderLoad is the regression test for the
// /healthz stats race: the handler used to read QueueLen and the per-tenant
// table through separate lock acquisitions, so the serialized snapshot
// could claim a total queue length that disagreed with the sum of its own
// per-tenant queued counts (and, worse, build the tenant map while
// dispatch counters kept moving). Stats now serializes one
// dispatch.Snapshot taken under a single lock acquisition; this hammers
// /healthz during heavy concurrent Submit traffic and asserts the
// invariant on every response. Run with -race (CI does) to also prove the
// snapshot path is data-race free.
func TestHealthzConsistentSnapshotUnderLoad(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{
		QueueDepth:  512,
		Dispatchers: 2,
		Tenants: []core.TenantConfig{
			{Name: "ha", Weight: 2},
			{Name: "hb", Weight: 1},
		},
	})

	stop := make(chan struct{})
	wg := hammerSubmits(t, ts.URL, []string{"ha", "hb", ""}, 4, stop)
	defer func() {
		close(stop)
		wg.Wait()
	}()

	deadline := time.Now().Add(500 * time.Millisecond)
	checks := 0
	for time.Now().Before(deadline) {
		code, body := doJSON(t, http.MethodGet, ts.URL+"/healthz", "")
		if code != http.StatusOK {
			t.Fatalf("GET /healthz = %d, want 200", code)
		}
		stats, ok := body["stats"].(map[string]any)
		if !ok {
			t.Fatalf("healthz body has no stats object: %v", body)
		}
		queueLen := int(stats["queue_len"].(float64))
		sum := 0
		tenants, ok := stats["tenants"].(map[string]any)
		if !ok {
			t.Fatalf("healthz stats has no tenants table: %v", stats)
		}
		for name, v := range tenants {
			tn, ok := v.(map[string]any)
			if !ok {
				t.Fatalf("tenant %s entry is not an object: %v", name, v)
			}
			sum += int(tn["queued"].(float64))
		}
		if queueLen != sum {
			t.Fatalf("inconsistent /healthz snapshot: queue_len=%d but per-tenant queued sums to %d", queueLen, sum)
		}
		checks++
	}
	if checks == 0 {
		t.Fatal("no /healthz checks executed")
	}
	t.Logf("verified %d consistent /healthz snapshots under load", checks)
}

// TestMetricsScrapeMidLoad scrapes GET /metrics repeatedly while the
// service churns through submissions, strict-parsing every page: no
// malformed line, label ordering and escaping intact, and every histogram
// family upholding its cumulative-bucket/+Inf/_sum/_count invariants even
// though observations land concurrently with rendering. A final quiesced
// scrape must show the core families with non-zero values.
func TestMetricsScrapeMidLoad(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 256, Dispatchers: 2})

	stop := make(chan struct{})
	wg := hammerSubmits(t, ts.URL, []string{""}, 3, stop)

	scrape := func() map[string]*metrics.Family {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("/metrics Content-Type = %q", ct)
		}
		fams, err := metrics.ParsePrometheus(resp.Body)
		if err != nil {
			t.Fatalf("mid-load /metrics page failed strict parse: %v", err)
		}
		return fams
	}

	deadline := time.Now().Add(500 * time.Millisecond)
	scrapes := 0
	for time.Now().Before(deadline) {
		scrape()
		scrapes++
	}
	close(stop)
	wg.Wait()

	fams := scrape()
	for _, name := range []string{
		"dagd_submits_total",
		"dagd_runs_completed_total",
		"dagd_queue_wait_seconds",
		"dagd_run_duration_seconds",
		"dagd_http_requests_total",
		"dagd_http_request_seconds",
		"dagd_sched_nodes_executed_total",
		"dagd_runs",
	} {
		f, ok := fams[name]
		if !ok {
			t.Errorf("/metrics lacks family %s", name)
			continue
		}
		if f.Sum() <= 0 {
			t.Errorf("family %s is zero after sustained load", name)
		}
	}
	// Terminal-state label values must be the state names, not rune-cast
	// integers: the load above only succeeds, so a state="succeeded" series
	// must carry the whole count.
	succeeded := 0.0
	for _, s := range fams["dagd_runs_completed_total"].Samples {
		if s.Labels["state"] == "succeeded" {
			succeeded += s.Value
		}
	}
	if succeeded < 1 {
		t.Errorf(`dagd_runs_completed_total lacks a positive state="succeeded" series: %+v`,
			fams["dagd_runs_completed_total"].Samples)
	}
	t.Logf("strict-parsed %d mid-load scrapes, %d families in the final page", scrapes, len(fams))
}
