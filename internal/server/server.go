// Package server exposes the dagd run service over a JSON HTTP API:
//
//	POST /v1/runs             submit a run spec (optional "workload" field), returns 202 + the queued run
//	GET  /v1/runs             list runs (optional ?state= filter)
//	GET  /v1/runs/{id}        poll one run's status/result
//	POST /v1/runs/{id}/cancel request cancellation
//	GET  /v1/workloads        list registered workloads + the service default
//	GET  /healthz             liveness + queue stats
//
// Errors are JSON objects {"error": "..."} with conventional status codes:
// 400 for bad specs (including unknown workload names and unknown ?state=
// filters), 404 for unknown runs, 409 for cancelling a finished run, 429
// when the dispatch queue is full, 503 while shutting down.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
)

// maxSpecBytes bounds the POST /v1/runs body; specs are tiny.
const maxSpecBytes = 1 << 16

// Server is the HTTP front end for a core.Service.
type Server struct {
	svc *core.Service
	mux *http.ServeMux
}

// New returns a Server routing to svc.
func New(svc *core.Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("POST /v1/runs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Handler returns the routing handler (useful for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully: stop accepting connections, then drain the run service so
// in-flight runs finish (or are force-cancelled once drainTimeout expires)
// before the process exits.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("dagd: listening on %s", ln.Addr())
	return s.serve(ctx, ln, drainTimeout)
}

func (s *Server) serve(ctx context.Context, ln net.Listener, drainTimeout time.Duration) error {
	httpSrv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		// Listener failed outright; nothing to drain.
		return err
	case <-ctx.Done():
	}

	log.Printf("dagd: shutting down, draining for up to %v", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	if err := s.svc.Shutdown(drainCtx); err != nil && shutdownErr == nil {
		shutdownErr = err
	}
	<-errc // Serve has returned http.ErrServerClosed by now
	return shutdownErr
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec core.RunSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	rr, err := s.svc.Submit(spec)
	if err != nil {
		switch {
		case errors.Is(err, core.ErrQueueFull):
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, core.ErrShuttingDown):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, rr)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	runs := s.svc.List()
	if want := r.URL.Query().Get("state"); want != "" {
		state, err := core.ParseRunState(want)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		filtered := runs[:0]
		for _, rr := range runs {
			if rr.State == state {
				filtered = append(filtered, rr)
			}
		}
		runs = filtered
	}
	if runs == nil {
		runs = []core.RunInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": runs, "count": len(runs)})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rr, err := s.svc.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, rr)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rr, err := s.svc.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, rr)
	case errors.Is(err, core.ErrRunNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, core.ErrRunTerminal):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	names := core.Workloads()
	writeJSON(w, http.StatusOK, map[string]any{
		"workloads": names,
		"count":     len(names),
		"default":   s.svc.DefaultWorkloadName(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"stats":  s.svc.Stats(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; all we can do is log.
		log.Printf("dagd: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
