// Package server exposes the dagd run service over a JSON HTTP API:
//
//	POST /v1/runs             submit a run spec (generated or explicit DAG), returns 202 + the queued run
//	GET  /v1/runs             list runs (?state=/?tenant= filters, ?limit=&cursor= pagination)
//	GET  /v1/runs/{id}        poll one run's status/result (?wait=1s long-polls until terminal)
//	POST /v1/runs/{id}/cancel request cancellation
//	GET  /v1/workloads        list registered workloads + the service default
//	GET  /healthz             liveness + queue stats (stays 200 while draining)
//	GET  /readyz              readiness; 503 shutting_down once shutdown starts
//	GET  /metrics             Prometheus text exposition of every dagd metric
//
// Submissions are attributed to the tenant named by the X-Tenant header
// (absent/empty = the catch-all "default" tenant); per-tenant quotas and
// rate limits reject with 429 + a computed Retry-After header.
//
// Every 4xx/5xx response carries the structured envelope defined in
// pkg/api: {"error":{"code":"...","message":"...","details":{...}}}. The
// sentinel→code/status mapping lives in one table (errors.go): 400
// invalid_request/invalid_spec/unknown_workload, 404 not_found, 405
// method_not_allowed, 409 run_terminal, 413 request_too_large, 415
// unsupported_media_type, 429 queue_full/rate_limited/quota_exceeded,
// 503 shutting_down, 500 internal.
package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"mime"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/metrics"
)

// maxSpecBytes bounds the POST /v1/runs body. Explicit specs carry literal
// edge lists (up to run.MaxEdges ≈ 4M edges at ~10 JSON bytes each), so
// the bound is sized for those rather than the tiny generated-shape specs.
// This is a per-request bound; aggregate exposure is limited by the queue
// depth (-queue, each queued run holds its edge list until execution) and
// by terminal snapshots dropping their edge lists (run.Store) — operators
// serving untrusted clients should size -queue accordingly.
const maxSpecBytes = 64 << 20

// maxWait caps the ?wait= long-poll duration per request; clients that
// need longer simply re-issue the poll (pkg/client's Wait does).
const maxWait = 30 * time.Second

// Server is the HTTP front end for a core.Service.
type Server struct {
	svc      *core.Service
	mux      *http.ServeMux
	logf     func(format string, args ...any)
	draining atomic.Bool // set once graceful shutdown begins

	httpRequests *metrics.CounterVec   // dagd_http_requests_total{route,method,status}
	httpLatency  *metrics.HistogramVec // dagd_http_request_seconds{route,method}
	httpInflight *metrics.Gauge        // dagd_http_inflight_requests
}

// New returns a Server routing to svc.
func New(svc *core.Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), logf: log.Printf}
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("POST /v1/runs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)

	reg := svc.Metrics()
	s.httpRequests = reg.CounterVec("dagd_http_requests_total",
		"HTTP requests served, by normalized route, method, and status code.",
		"route", "method", "status")
	s.httpLatency = reg.HistogramVec("dagd_http_request_seconds",
		"HTTP request latency by normalized route and method. ?wait= long-polls land here too, so the upper buckets reach the 30s poll cap.",
		[]float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}, "route", "method")
	s.httpInflight = reg.Gauge("dagd_http_inflight_requests",
		"HTTP requests currently being served.")
	return s
}

// MetricsHandler returns the bare /metrics handler for mounting on a
// second listener (dagd's -debug-addr), outside the request-logging and
// instrumentation middleware so debug scrapes don't skew the HTTP series.
func (s *Server) MetricsHandler() http.Handler { return http.HandlerFunc(s.handleMetrics) }

// handleMetrics renders every registered family in Prometheus text
// exposition format v0.0.4.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.svc.Metrics().WritePrometheus(w); err != nil {
		s.logf("dagd: writing /metrics: %v", err)
	}
}

// Handler returns the full handler chain — request logging and
// envelope-normalizing middleware around the route mux — for tests and
// embedding.
func (s *Server) Handler() http.Handler { return s.withRequestLog(s.mux) }

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully: flip readiness, drain the run service so in-flight runs
// finish (or are force-cancelled once drainTimeout expires), then close
// the HTTP server.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("dagd: listening on %s", ln.Addr())
	return s.serve(ctx, ln, drainTimeout)
}

func (s *Server) serve(ctx context.Context, ln net.Listener, drainTimeout time.Duration) error {
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		// Listener failed outright; nothing to drain.
		return err
	case <-ctx.Done():
	}

	log.Printf("dagd: shutting down, draining for up to %v", drainTimeout)
	s.draining.Store(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain the run service while still serving HTTP: /readyz has flipped
	// to 503 and new submissions are refused, but clients can keep polling
	// (including ?wait= long-polls) to observe their runs' final states.
	svcErr := s.svc.Shutdown(drainCtx)
	shutdownErr := httpSrv.Shutdown(drainCtx)
	if shutdownErr == nil {
		shutdownErr = svcErr
	}
	<-errc // Serve has returned http.ErrServerClosed by now
	return shutdownErr
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// An absent Content-Type is tolerated (Go's http client omits it for
	// bare byte-reader bodies), but a present one must declare JSON. Note
	// curl's bare -d sends application/x-www-form-urlencoded and is
	// rejected — pass -H 'Content-Type: application/json'.
	if ct := r.Header.Get("Content-Type"); ct != "" {
		if mt, _, err := mime.ParseMediaType(ct); err != nil || mt != "application/json" {
			writeError(w, fmt.Errorf("%w: Content-Type %q (want application/json)",
				errUnsupportedMediaType, ct), nil)
			return
		}
	}
	tenantName, err := tenantOf(r)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", errInvalidRequest, err), nil)
		return
	}
	var spec core.RunSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		// Both errors are wrapped so classify can still surface an
		// *http.MaxBytesError as 413 request_too_large.
		writeError(w, fmt.Errorf("%w: decoding spec: %w", errInvalidRequest, err), nil)
		return
	}
	// Identity comes from the header, never the body: a spec-carried tenant
	// (or priority) would let any client bill its runs to someone else's
	// quota. The dispatcher overwrites both with the resolved values.
	spec.Tenant = tenantName
	spec.Priority = 0
	rr, err := s.svc.Submit(spec)
	if err != nil {
		var details map[string]any
		if errors.Is(err, core.ErrQueueFull) {
			details = map[string]any{"queue_depth": s.svc.Stats().QueueDepth}
		}
		writeError(w, err, details)
		return
	}
	writeJSON(w, http.StatusAccepted, rr)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	runs := s.svc.List() // sorted by (CreatedAt, ID) — the pagination order
	if want := q.Get("state"); want != "" {
		state, err := core.ParseRunState(want)
		if err != nil {
			writeError(w, fmt.Errorf("%w: %v", errInvalidRequest, err), nil)
			return
		}
		filtered := runs[:0]
		for _, rr := range runs {
			if rr.State == state {
				filtered = append(filtered, rr)
			}
		}
		runs = filtered
	}
	if want := q.Get("tenant"); want != "" {
		// Exact match on the stored attribution. "default" also matches
		// legacy WAL records, which replay with that tenant stamped.
		filtered := runs[:0]
		for _, rr := range runs {
			if rr.Spec.Tenant == want {
				filtered = append(filtered, rr)
			}
		}
		runs = filtered
	}
	if cur := q.Get("cursor"); cur != "" {
		afterNanos, afterID, err := decodeCursor(cur)
		if err != nil {
			writeError(w, fmt.Errorf("%w: %v", errInvalidRequest, err), nil)
			return
		}
		// Keep only runs strictly after the cursor position, compared with
		// the same shared comparator that orders List — so a cursor walk
		// can never drift from the listing order. Position-based cursors
		// survive eviction: a deleted run simply no longer appears, without
		// shifting later pages the way offset pagination would.
		kept := runs[:0]
		for _, rr := range runs {
			if core.CompareRunToCursor(rr, afterNanos, afterID) > 0 {
				kept = append(kept, rr)
			}
		}
		runs = kept
	}
	limit := 0
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			writeError(w, fmt.Errorf("%w: limit must be a positive integer, got %q",
				errInvalidRequest, ls), nil)
			return
		}
		limit = n
	}
	next := ""
	if limit > 0 && len(runs) > limit {
		runs = runs[:limit]
		last := runs[len(runs)-1]
		next = encodeCursor(last.CreatedAt.UnixNano(), last.ID)
	}
	if runs == nil {
		runs = []core.RunInfo{}
	}
	resp := map[string]any{"runs": runs, "count": len(runs)}
	if next != "" {
		resp["next_cursor"] = next
	}
	writeJSON(w, http.StatusOK, resp)
}

// encodeCursor packs a (CreatedAt, ID) position into an opaque URL-safe
// token.
func encodeCursor(nanos int64, id string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(fmt.Sprintf("%d|%s", nanos, id)))
}

func decodeCursor(s string) (nanos int64, id string, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, "", fmt.Errorf("malformed cursor")
	}
	sep := strings.IndexByte(string(raw), '|')
	if sep < 0 {
		return 0, "", fmt.Errorf("malformed cursor")
	}
	nanos, err = strconv.ParseInt(string(raw[:sep]), 10, 64)
	if err != nil {
		return 0, "", fmt.Errorf("malformed cursor")
	}
	return nanos, string(raw[sep+1:]), nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if ws := r.URL.Query().Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d < 0 {
			writeError(w, fmt.Errorf("%w: wait must be a non-negative duration (e.g. 1s), got %q",
				errInvalidRequest, ws), nil)
			return
		}
		if d > maxWait {
			d = maxWait
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		rr, err := s.svc.Await(ctx, id)
		if err != nil {
			writeError(w, err, map[string]any{"id": id})
			return
		}
		writeJSON(w, http.StatusOK, rr)
		return
	}
	rr, err := s.svc.Get(id)
	if err != nil {
		writeError(w, err, map[string]any{"id": id})
		return
	}
	writeJSON(w, http.StatusOK, rr)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rr, err := s.svc.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err, map[string]any{"id": r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, rr)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	names := core.Workloads()
	writeJSON(w, http.StatusOK, map[string]any{
		"workloads": names,
		"count":     len(names),
		"default":   s.svc.DefaultWorkloadName(),
	})
}

// handleHealth is the liveness probe: it answers 200 "ok" for as long as
// the process can serve at all, including while draining — restarting a
// draining process would only lose in-flight runs.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"stats":  s.svc.Stats(),
	})
}

// handleReady is the readiness probe: once shutdown begins (or the
// dispatcher stops accepting work) it answers 503 with code shutting_down
// so load balancers route new submissions elsewhere, while liveness stays
// green.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() || s.svc.Draining() {
		writeError(w, core.ErrShuttingDown, nil)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; all we can do is log.
		log.Printf("dagd: encoding response: %v", err)
	}
}
