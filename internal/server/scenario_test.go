package server

import (
	"net/http"
	"strings"
	"testing"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
)

// TestOverflowSpecAdmission is the server half of the admission-bypass
// regression: the pipeline cap check used to compute stages*width+2 in int,
// which wraps negative for stages=width=3037000500 and sailed past
// MaxNodes. The spec must 400 as invalid_spec and leave nothing stored.
func TestOverflowSpecAdmission(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 8, Dispatchers: 1})
	code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/runs",
		`{"shape":"pipeline","stages":3037000500,"width":3037000500}`)
	if code != http.StatusBadRequest {
		t.Fatalf("overflow spec: status %d, want 400 (body %v)", code, body)
	}
	if got := errCode(t, body); got != "invalid_spec" {
		t.Errorf("overflow spec: error code %q, want invalid_spec", got)
	}
	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/runs", "")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if n, _ := body["count"].(float64); n != 0 {
		t.Errorf("rejected overflow spec left %v runs in the store", body["count"])
	}
}

// TestScenarioShapesEndToEnd submits one run per new scenario shape/knob
// through the full service: a deep chain (the ≥500k-span acceptance bar), a
// parallel_work pipeline, and a small dynamic run. All must verify.
func TestScenarioShapesEndToEnd(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 8, Dispatchers: 2})
	cases := []struct {
		name, spec string
		minDepth   float64
	}{
		{"deep chain", `{"shape":"chain","nodes":500001}`, 500000},
		{"parallel work", `{"shape":"pipeline","stages":10,"width":2,"work":65536,"parallel_work":true,"workload":"hashchain"}`, 0},
		{"dynamic", `{"shape":"dynamic","stages":8,"width":3,"p":0.3,"seed":11}`, 8},
	}
	for _, tc := range cases {
		id := submit(t, ts.URL, tc.spec)
		body := pollUntil(t, ts.URL, id, "succeeded")
		result, ok := body["result"].(map[string]any)
		if !ok {
			t.Fatalf("%s: no result: %v", tc.name, body)
		}
		if match, _ := result["match"].(bool); !match {
			t.Errorf("%s: match = false", tc.name)
		}
		if depth, _ := result["depth"].(float64); depth < tc.minDepth {
			t.Errorf("%s: depth = %v, want >= %v", tc.name, depth, tc.minDepth)
		}
	}
}

// TestDynamicGrowthBoundEndToEnd pins fail-closed behavior through the
// service: a dynamic spec whose expansion exceeds MaxNodes passes admission
// (final size is unknowable there) but the run fails at the growth bound.
func TestDynamicGrowthBoundEndToEnd(t *testing.T) {
	ts := newTestServer(t, core.ServiceOptions{QueueDepth: 4, Dispatchers: 1})
	id := submit(t, ts.URL, `{"shape":"dynamic","stages":20,"width":4,"seed":7}`)
	body := pollUntil(t, ts.URL, id, "failed")
	errMsg, _ := body["error"].(string)
	if !strings.Contains(errMsg, "growth bound") {
		t.Errorf("failed run error = %q, want it to mention the growth bound", errMsg)
	}
}
