package server

import (
	"errors"
	"math"
	"net/http"
	"strconv"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/api"
)

// Local sentinels for failures that originate in the HTTP layer itself
// (the service layer has no notion of media types or query strings).
var (
	errInvalidRequest       = errors.New("server: invalid request")
	errUnsupportedMediaType = errors.New("server: unsupported media type")
)

// errorMapping is the single sentinel→(status, code) table for the whole
// API surface. Handlers never pick statuses or codes themselves; they
// return sentinel-wrapped errors and writeError classifies them here, so a
// new error category is one table row, not N handler switches.
var errorMapping = []struct {
	sentinel error
	status   int
	code     api.Code
}{
	{core.ErrInvalidSpec, http.StatusBadRequest, api.CodeInvalidSpec},
	{core.ErrUnknownWorkload, http.StatusBadRequest, api.CodeUnknownWorkload},
	{errInvalidRequest, http.StatusBadRequest, api.CodeInvalidRequest},
	{errUnsupportedMediaType, http.StatusUnsupportedMediaType, api.CodeUnsupportedMediaType},
	{core.ErrRunNotFound, http.StatusNotFound, api.CodeNotFound},
	{core.ErrRunTerminal, http.StatusConflict, api.CodeRunTerminal},
	{core.ErrQueueFull, http.StatusTooManyRequests, api.CodeQueueFull},
	{core.ErrRateLimited, http.StatusTooManyRequests, api.CodeRateLimited},
	{core.ErrQuotaExceeded, http.StatusTooManyRequests, api.CodeQuotaExceeded},
	{core.ErrShuttingDown, http.StatusServiceUnavailable, api.CodeShuttingDown},
}

// classify maps err to its HTTP status and machine-readable code,
// defaulting to 500/internal for anything unrecognized.
func classify(err error) (int, api.Code) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge, api.CodeRequestTooLarge
	}
	for _, m := range errorMapping {
		if errors.Is(err, m.sentinel) {
			return m.status, m.code
		}
	}
	return http.StatusInternalServerError, api.CodeInternal
}

// writeError emits the structured v1 error envelope
// {"error":{"code":...,"message":...,"details":...}} for err; details may
// be nil. Backpressure errors (a core.RetryableError in the chain) also
// carry a Retry-After header and retry details, so well-behaved clients
// can back off for exactly as long as the tenant's token bucket needs.
func writeError(w http.ResponseWriter, err error, details map[string]any) {
	status, code := classify(err)
	var retryable *core.RetryableError
	if errors.As(err, &retryable) {
		// Retry-After is whole seconds; round up so a 300ms token deficit
		// doesn't advertise "retry immediately".
		secs := int64(math.Ceil(retryable.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		if details == nil {
			details = map[string]any{}
		}
		details["tenant"] = retryable.Tenant
		details["retry_after_ms"] = retryable.RetryAfter.Milliseconds()
	}
	writeJSON(w, status, api.ErrorEnvelope{Error: &api.Error{
		Code:    code,
		Message: err.Error(),
		Details: details,
	}})
}
