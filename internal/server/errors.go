package server

import (
	"errors"
	"net/http"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/core"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/api"
)

// Local sentinels for failures that originate in the HTTP layer itself
// (the service layer has no notion of media types or query strings).
var (
	errInvalidRequest       = errors.New("server: invalid request")
	errUnsupportedMediaType = errors.New("server: unsupported media type")
)

// errorMapping is the single sentinel→(status, code) table for the whole
// API surface. Handlers never pick statuses or codes themselves; they
// return sentinel-wrapped errors and writeError classifies them here, so a
// new error category is one table row, not N handler switches.
var errorMapping = []struct {
	sentinel error
	status   int
	code     api.Code
}{
	{core.ErrInvalidSpec, http.StatusBadRequest, api.CodeInvalidSpec},
	{core.ErrUnknownWorkload, http.StatusBadRequest, api.CodeUnknownWorkload},
	{errInvalidRequest, http.StatusBadRequest, api.CodeInvalidRequest},
	{errUnsupportedMediaType, http.StatusUnsupportedMediaType, api.CodeUnsupportedMediaType},
	{core.ErrRunNotFound, http.StatusNotFound, api.CodeNotFound},
	{core.ErrRunTerminal, http.StatusConflict, api.CodeRunTerminal},
	{core.ErrQueueFull, http.StatusTooManyRequests, api.CodeQueueFull},
	{core.ErrShuttingDown, http.StatusServiceUnavailable, api.CodeShuttingDown},
}

// classify maps err to its HTTP status and machine-readable code,
// defaulting to 500/internal for anything unrecognized.
func classify(err error) (int, api.Code) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge, api.CodeRequestTooLarge
	}
	for _, m := range errorMapping {
		if errors.Is(err, m.sentinel) {
			return m.status, m.code
		}
	}
	return http.StatusInternalServerError, api.CodeInternal
}

// writeError emits the structured v1 error envelope
// {"error":{"code":...,"message":...,"details":...}} for err; details may
// be nil.
func writeError(w http.ResponseWriter, err error, details map[string]any) {
	status, code := classify(err)
	writeJSON(w, status, api.ErrorEnvelope{Error: &api.Error{
		Code:    code,
		Message: err.Error(),
		Details: details,
	}})
}
