package server

import (
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/pkg/api"
)

// responseWriter wraps the downstream http.ResponseWriter to (a) record the
// status code for request logging and (b) convert the plain-text 404/405
// bodies http.ServeMux generates for unmatched routes into the structured
// v1 error envelope, so *every* 4xx/5xx on this surface carries a
// machine-readable code.
type responseWriter struct {
	http.ResponseWriter
	status      int
	intercepted bool // mux-generated error body is being replaced
}

func (rw *responseWriter) WriteHeader(code int) {
	if rw.status != 0 {
		rw.ResponseWriter.WriteHeader(code)
		return
	}
	rw.status = code
	// Our handlers always set application/json before writing; a text/plain
	// 404/405 can only be the mux (or http.Error) speaking. Swap its body
	// for the envelope.
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		strings.HasPrefix(rw.Header().Get("Content-Type"), "text/plain") {
		rw.intercepted = true
		rw.Header().Set("Content-Type", "application/json")
		rw.Header().Del("Content-Length")
		rw.ResponseWriter.WriteHeader(code)
		apiCode := api.CodeNotFound
		msg := "no route matches the request path"
		if code == http.StatusMethodNotAllowed {
			apiCode = api.CodeMethodNotAllowed
			msg = "method not allowed for this path"
		}
		json.NewEncoder(rw.ResponseWriter).Encode(api.ErrorEnvelope{ //nolint:errcheck // headers are gone either way
			Error: &api.Error{Code: apiCode, Message: msg},
		})
		return
	}
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *responseWriter) Write(b []byte) (int, error) {
	if rw.intercepted {
		// Swallow the mux's plain-text body; the envelope already went out.
		return len(b), nil
	}
	if rw.status == 0 {
		rw.status = http.StatusOK
	}
	return rw.ResponseWriter.Write(b)
}

// maxTenantHeaderLen bounds the X-Tenant header before it reaches the
// service layer; tenant.MaxNameLen bounds what is stored, but junk longer
// than this is rejected up front rather than silently attributed to
// "default".
const maxTenantHeaderLen = 128

// tenantOf extracts the requester's tenant identity from the X-Tenant
// header. An absent or empty header means the catch-all default tenant
// (the service resolves the empty string to it); a syntactically invalid
// header — overlong, or containing whitespace/control bytes — is a client
// error, not an identity.
func tenantOf(r *http.Request) (string, error) {
	name := r.Header.Get("X-Tenant")
	if name == "" {
		return "", nil
	}
	if len(name) > maxTenantHeaderLen {
		return "", fmt.Errorf("X-Tenant header longer than %d bytes", maxTenantHeaderLen)
	}
	for _, c := range name {
		if c <= ' ' || c == 0x7f {
			return "", fmt.Errorf("X-Tenant header contains whitespace or control characters")
		}
	}
	return name, nil
}

// newRequestID returns a short random hex ID for request correlation.
func newRequestID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// routeLabel normalizes a request path to its route pattern so the metric
// cardinality stays bounded: run IDs collapse into {id}, and paths outside
// the served surface collapse into "other" (a scanner probing random URLs
// must not mint one series per probe). Maintained by hand because
// go 1.22's http.Request has no matched-pattern accessor.
func routeLabel(path string) string {
	switch path {
	case "/v1/runs", "/v1/workloads", "/healthz", "/readyz", "/metrics":
		return path
	}
	if rest, ok := strings.CutPrefix(path, "/v1/runs/"); ok {
		if strings.HasSuffix(rest, "/cancel") && strings.Count(rest, "/") == 1 {
			return "/v1/runs/{id}/cancel"
		}
		if !strings.Contains(rest, "/") {
			return "/v1/runs/{id}"
		}
	}
	return "other"
}

// withRequestLog wraps next with request logging (method, path, status,
// duration) and request-ID propagation: an incoming X-Request-ID is
// honored, otherwise one is generated, and either way it is echoed on the
// response and included in the log line.
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		rw := &responseWriter{ResponseWriter: w}
		start := time.Now()
		s.httpInflight.Inc()
		next.ServeHTTP(rw, r)
		s.httpInflight.Dec()
		if rw.status == 0 {
			rw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		route := routeLabel(r.URL.Path)
		s.httpRequests.With(route, r.Method, strconv.Itoa(rw.status)).Inc()
		s.httpLatency.With(route, r.Method).Observe(elapsed.Seconds())
		s.logf("dagd: %s %s %d %s rid=%s", r.Method, r.URL.Path, rw.status,
			elapsed.Round(time.Microsecond), rid)
	})
}
