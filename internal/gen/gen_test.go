package gen

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
)

// TestConfigJSONRoundTrip pins the serializable spec form used on the dagd
// wire: shapes marshal by name and equal JSON always means equal DAGs.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := Config{Shape: Pipeline, Stages: 12, Width: 3, Seed: 5}
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Config
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, cfg) {
		t.Fatalf("round trip %+v, want %+v", decoded, cfg)
	}
	var fromWire Config
	if err := json.Unmarshal([]byte(`{"shape":"random","nodes":64,"p":0.1,"seed":9}`), &fromWire); err != nil {
		t.Fatal(err)
	}
	if want := (Config{Shape: Random, Nodes: 64, EdgeProb: 0.1, Seed: 9}); !reflect.DeepEqual(fromWire, want) {
		t.Fatalf("wire decode %+v, want %+v", fromWire, want)
	}
	var explicitWire Config
	if err := json.Unmarshal([]byte(`{"shape":"explicit","nodes":3,"edges":[[0,1],[1,2]]}`), &explicitWire); err != nil {
		t.Fatal(err)
	}
	if want := (Config{Shape: Explicit, Nodes: 3, Edges: []Edge{{0, 1}, {1, 2}}}); !reflect.DeepEqual(explicitWire, want) {
		t.Fatalf("explicit wire decode %+v, want %+v", explicitWire, want)
	}
	if err := json.Unmarshal([]byte(`{"shape":"hexagon"}`), &fromWire); err == nil {
		t.Fatal("unknown shape decoded without error")
	}
	if _, err := json.Marshal(Config{Shape: Shape(9)}); err == nil {
		t.Fatal("unknown shape marshalled without error")
	}
}

func TestRandomDAGDeterministic(t *testing.T) {
	a, err := RandomDAG(200, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomDAG(200, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumNodes(); v++ {
		ca, cb := a.Children(dag.NodeID(v)), b.Children(dag.NodeID(v))
		if len(ca) != len(cb) {
			t.Fatalf("node %d: child counts differ: %d vs %d", v, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("node %d child %d differs: %d vs %d", v, i, ca[i], cb[i])
			}
		}
	}
	c, err := RandomDAG(200, 0.05, 43)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() == a.NumEdges() && sameChildren(a, c) {
		t.Error("different seeds produced identical DAGs")
	}
}

func sameChildren(a, b *dag.DAG) bool {
	for v := 0; v < a.NumNodes(); v++ {
		ca, cb := a.Children(dag.NodeID(v)), b.Children(dag.NodeID(v))
		if len(ca) != len(cb) {
			return false
		}
		for i := range ca {
			if ca[i] != cb[i] {
				return false
			}
		}
	}
	return true
}

func TestRandomDAGConnectivity(t *testing.T) {
	for _, p := range []float64{0, 0.01, 0.3} {
		d, err := RandomDAG(100, p, 7)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		// Node 0 is the unique source, node n-1 the unique sink.
		for v := 1; v < d.NumNodes(); v++ {
			if d.InDegree(dag.NodeID(v)) == 0 {
				t.Errorf("p=%v: node %d has no parent", p, v)
			}
		}
		for v := 0; v < d.NumNodes()-1; v++ {
			if d.OutDegree(dag.NodeID(v)) == 0 {
				t.Errorf("p=%v: node %d has no child", p, v)
			}
		}
	}
}

func TestRandomDAGValidation(t *testing.T) {
	if _, err := RandomDAG(1, 0.5, 1); err == nil {
		t.Error("RandomDAG(1, ...) succeeded, want error")
	}
	if _, err := RandomDAG(10, -0.1, 1); err == nil {
		t.Error("RandomDAG with p<0 succeeded, want error")
	}
	if _, err := RandomDAG(10, 1.5, 1); err == nil {
		t.Error("RandomDAG with p>1 succeeded, want error")
	}
}

func TestPipelineDAGShape(t *testing.T) {
	stages, width := 10, 3
	d, err := PipelineDAG(stages, width)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.NumNodes(), stages*width+2; got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	if got := len(d.Sources()); got != 1 {
		t.Errorf("len(Sources) = %d, want 1", got)
	}
	if got := len(d.Sinks()); got != 1 {
		t.Errorf("len(Sinks) = %d, want 1", got)
	}
	// Depth is source → stage 0 → ... → stage stages-1 → sink.
	if got, want := d.Depth(), stages+1; got != want {
		t.Errorf("Depth = %d, want %d", got, want)
	}
	// Interior grid column feeds 3 neighbors; edge columns feed 2.
	mid := dag.NodeID(1 + 0*width + 1) // stage 0, column 1
	if got := d.OutDegree(mid); got != 3 {
		t.Errorf("OutDegree(stage0,col1) = %d, want 3", got)
	}
}

func TestPipelineDAGValidation(t *testing.T) {
	if _, err := PipelineDAG(0, 3); err == nil {
		t.Error("PipelineDAG(0,3) succeeded, want error")
	}
	if _, err := PipelineDAG(3, 0); err == nil {
		t.Error("PipelineDAG(3,0) succeeded, want error")
	}
	// stages*width+2 wraps negative for these dimensions; pre-guard this
	// panicked in dag.NewBuilder on callers that bypass admission (the CLI).
	if _, err := PipelineDAG(3037000500, 3037000500); err == nil {
		t.Error("PipelineDAG(3037000500,3037000500) succeeded, want overflow error")
	}
}

func TestGenerateDispatch(t *testing.T) {
	d, err := Generate(Config{Shape: Random, Nodes: 50, EdgeProb: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 50 {
		t.Errorf("random NumNodes = %d, want 50", d.NumNodes())
	}
	d, err = Generate(Config{Shape: Pipeline, Stages: 5, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 12 {
		t.Errorf("pipeline NumNodes = %d, want 12", d.NumNodes())
	}
	if _, err := Generate(Config{Shape: Shape(99)}); err == nil {
		t.Error("Generate with bogus shape succeeded, want error")
	}
}

func TestParseShape(t *testing.T) {
	for s, want := range map[string]Shape{"random": Random, "pipeline": Pipeline, "explicit": Explicit} {
		got, err := ParseShape(s)
		if err != nil || got != want {
			t.Errorf("ParseShape(%q) = %v, %v; want %v, nil", s, got, err, want)
		}
	}
	if _, err := ParseShape("ring"); err == nil {
		t.Error(`ParseShape("ring") succeeded, want error`)
	}
}

// TestEdgeUnmarshalArity pins the strict [from,to] decoding: the default
// array decoding would zero-fill short lists and drop long ones, silently
// changing the client's graph.
func TestEdgeUnmarshalArity(t *testing.T) {
	var e Edge
	if err := json.Unmarshal([]byte(`[3,7]`), &e); err != nil || e != (Edge{3, 7}) {
		t.Fatalf("Unmarshal([3,7]) = %v, %v", e, err)
	}
	for _, bad := range []string{`[1]`, `[1,2,3]`, `[]`, `"ab"`, `{"from":1}`, `[1,"x"]`} {
		if err := json.Unmarshal([]byte(bad), &e); err == nil {
			t.Errorf("Unmarshal(%s) succeeded, want error", bad)
		}
	}
}

func TestExplicitDAG(t *testing.T) {
	// Diamond with a skip edge: 3 source→sink paths, depth 2.
	d, err := ExplicitDAG(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 4 || d.NumEdges() != 5 {
		t.Fatalf("NumNodes/NumEdges = %d/%d, want 4/5", d.NumNodes(), d.NumEdges())
	}
	if d.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", d.Depth())
	}
	// A single isolated node is a legal explicit DAG.
	if d, err := ExplicitDAG(1, nil); err != nil || d.NumNodes() != 1 {
		t.Errorf("ExplicitDAG(1, nil) = %v, %v; want 1-node dag", d, err)
	}
	// Disconnected components are allowed — nothing is invented.
	if d, err := ExplicitDAG(4, []Edge{{0, 1}}); err != nil || len(d.Sources()) != 3 {
		t.Errorf("disconnected explicit dag = %v (err %v), want 3 sources", d, err)
	}
}

func TestExplicitDAGRejections(t *testing.T) {
	cases := []struct {
		name  string
		nodes int
		edges []Edge
		want  string // substring of the error
	}{
		{"zero nodes", 0, nil, "needs >= 1 node"},
		{"self edge", 3, []Edge{{1, 1}}, "self-loop"},
		{"duplicate edge", 3, []Edge{{0, 1}, {0, 1}}, "duplicate edge"},
		{"out of range", 3, []Edge{{0, 5}}, "out of range"},
		{"negative endpoint", 3, []Edge{{-1, 2}}, "out of range"},
		{"cycle", 3, []Edge{{0, 1}, {1, 2}, {2, 0}}, "cycle"},
	}
	for _, tc := range cases {
		_, err := ExplicitDAG(tc.nodes, tc.edges)
		if err == nil {
			t.Errorf("%s: ExplicitDAG succeeded, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
	// The cycle rejection must be the shared dag.ErrCycle from the Kahn
	// check, not a bespoke error.
	if _, err := ExplicitDAG(3, []Edge{{0, 1}, {1, 2}, {2, 0}}); !errors.Is(err, dag.ErrCycle) {
		t.Errorf("cycle error = %v, want errors.Is(_, dag.ErrCycle)", err)
	}
}
