package gen

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
)

// ErrGrowthBound is returned (wrapped) by Dyn.Expand when materializing the
// next level would push the discovered graph past its node or edge limits.
// Dynamic specs deliberately do not bound their final size at admission —
// the graph does not exist yet — so this runtime check is the enforcement
// point for MaxNodes/MaxEdges on the dynamic shape.
var ErrGrowthBound = errors.New("gen: dynamic dag exceeded growth bound")

// DynLimits caps how large a dynamic graph may grow while it executes.
// Zero means unlimited for that dimension.
type DynLimits struct {
	MaxNodes int
	MaxEdges int
}

// Dyn is the runtime expander behind the Dynamic shape: a DAG whose nodes
// are discovered while it executes, mirroring Nabbit's dynamic mode where a
// node's successors are only known once the node runs.
//
// The graph is layered. Level 0 is the single root (node 0). The first time
// any level-ℓ node is expanded, the whole of level ℓ+1 materializes under
// the expander's mutex: each level-ℓ node spawns between 1 and Width fresh
// children, and each child then gains up to three extra cross-parents drawn
// from level ℓ with probability EdgeProb apiece. Nodes at level Stages are
// leaves. Because levels materialize wholly, in order, from a single seeded
// PRNG, the final graph is a pure function of the Config no matter which
// worker triggers each expansion or in what order — which is what lets
// run.Execute verify the parallel result against a serial sweep of the
// final graph.
type Dyn struct {
	stages int
	width  int
	p      float64

	mu       sync.Mutex
	rng      *rand.Rand
	limits   DynLimits
	levels   [][]dag.NodeID // node IDs per level; levels[0] == {0}
	levelOf  []int          // level of each discovered node
	children [][]dag.NodeID // successors, discovery order
	parents  [][]dag.NodeID // predecessors; primary parent first
	nEdges   int
	err      error // sticky growth-bound error
}

// NewDynamic creates the expander for a dynamic Config. Stages is the
// number of expansion levels below the root (the final span in edges),
// Width the maximum children any node spawns, EdgeProb the per-draw chance
// of a cross-parent edge, and Seed fixes the whole expansion.
func NewDynamic(cfg Config, limits DynLimits) (*Dyn, error) {
	if cfg.Shape != Dynamic {
		return nil, fmt.Errorf("gen: NewDynamic called with shape %v", cfg.Shape)
	}
	if cfg.Stages < 1 {
		return nil, fmt.Errorf("gen: dynamic dag needs stages >= 1, got %d", cfg.Stages)
	}
	if cfg.Width < 1 {
		return nil, fmt.Errorf("gen: dynamic dag needs width >= 1, got %d", cfg.Width)
	}
	if cfg.EdgeProb < 0 || cfg.EdgeProb > 1 {
		return nil, fmt.Errorf("gen: edge probability %v outside [0,1]", cfg.EdgeProb)
	}
	return &Dyn{
		stages:   cfg.Stages,
		width:    cfg.Width,
		p:        cfg.EdgeProb,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		limits:   limits,
		levels:   [][]dag.NodeID{{0}},
		levelOf:  []int{0},
		children: [][]dag.NodeID{nil},
		parents:  [][]dag.NodeID{nil},
	}, nil
}

// Expand reports the successors of u, materializing u's child level on
// first use. It returns an error wrapping ErrGrowthBound if growing the
// graph would exceed the expander's limits; the error is sticky, so every
// subsequent Expand fails the same way and the run winds down.
func (d *Dyn) Expand(u dag.NodeID) ([]dag.NodeID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return nil, d.err
	}
	if u < 0 || int(u) >= len(d.levelOf) {
		return nil, fmt.Errorf("gen: expand of undiscovered node %d", u)
	}
	lvl := d.levelOf[u]
	if lvl >= d.stages {
		return nil, nil // leaf level
	}
	if lvl+1 >= len(d.levels) {
		if err := d.materializeLocked(lvl + 1); err != nil {
			d.err = err
			return nil, err
		}
	}
	return d.children[u], nil
}

// materializeLocked builds the whole of the given level. The caller holds
// d.mu and guarantees level == len(d.levels): a level-ℓ node can only run
// after level ℓ materialized, so levels always build in order 1, 2, 3, …
// and the shared PRNG is consumed deterministically.
func (d *Dyn) materializeLocked(level int) error {
	prev := d.levels[level-1]
	var lvl []dag.NodeID
	for _, u := range prev {
		c := 1 + d.rng.Intn(d.width)
		for k := 0; k < c; k++ {
			if d.limits.MaxNodes > 0 && len(d.levelOf)+1 > d.limits.MaxNodes {
				return fmt.Errorf("gen: dynamic dag grew to %d nodes at level %d (cap %d): %w",
					len(d.levelOf)+1, level, d.limits.MaxNodes, ErrGrowthBound)
			}
			id := dag.NodeID(len(d.levelOf))
			d.levelOf = append(d.levelOf, level)
			d.children = append(d.children, nil)
			d.parents = append(d.parents, nil)
			if err := d.addEdgeLocked(u, id); err != nil {
				return err
			}
			lvl = append(lvl, id)
		}
	}
	if d.p > 0 && len(prev) > 1 {
		for _, v := range lvl {
			primary := d.parents[v][0]
			for k := 0; k < 3; k++ {
				if d.rng.Float64() >= d.p {
					continue
				}
				w := prev[d.rng.Intn(len(prev))]
				if w == primary || containsNode(d.parents[v], w) {
					continue
				}
				if err := d.addEdgeLocked(w, v); err != nil {
					return err
				}
			}
		}
	}
	d.levels = append(d.levels, lvl)
	return nil
}

func (d *Dyn) addEdgeLocked(u, v dag.NodeID) error {
	if d.limits.MaxEdges > 0 && d.nEdges+1 > d.limits.MaxEdges {
		return fmt.Errorf("gen: dynamic dag grew to %d edges (cap %d): %w",
			d.nEdges+1, d.limits.MaxEdges, ErrGrowthBound)
	}
	d.children[u] = append(d.children[u], v)
	d.parents[v] = append(d.parents[v], u)
	d.nEdges++
	return nil
}

func containsNode(s []dag.NodeID, v dag.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Parents returns the predecessors of a discovered node. A node's parent
// slice never changes once its level materialized (cross-parents only come
// from the previous level), but the outer slice may be reallocated by
// growth, so the lookup takes the expander's mutex.
func (d *Dyn) Parents(v dag.NodeID) []dag.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.parents[v]
}

// NumNodes returns how many nodes have been discovered so far.
func (d *Dyn) NumNodes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.levelOf)
}

// NumEdges returns how many edges have been discovered so far.
func (d *Dyn) NumEdges() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nEdges
}

// FinalDAG freezes the discovered graph into an immutable DAG, for the
// serial verification sweep that runs after a dynamic execution finishes.
// The edge list is emitted in parent order per node, so the frozen graph's
// Parents(v) matches the expander's Parents(v) element for element — a
// workload that folds parent values in order sees identical inputs on both
// the parallel and serial passes.
func (d *Dyn) FinalDAG() (*dag.DAG, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.levelOf)
	edges := make([][2]dag.NodeID, 0, d.nEdges)
	for v := 0; v < n; v++ {
		for _, u := range d.parents[v] {
			edges = append(edges, [2]dag.NodeID{u, dag.NodeID(v)})
		}
	}
	return dag.FromEdges(n, edges)
}
