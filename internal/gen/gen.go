// Package gen provides deterministic DAG construction for benchmark and
// service workloads. Five shapes are supported; they mirror the Nabbit
// random-DAG microbenchmark knobs <R, NodeWork, dag_type>:
//
//   - Random: nodes 0..N-1 with each forward edge (i, j), i < j, present
//     independently with probability p. Node 0 is forced to be the unique
//     source and node N-1 the unique sink, so source→sink path counting is
//     always well defined.
//   - Pipeline: a stages×width grid where node (s, i) feeds (s+1, j) for
//     |i-j| <= 1, bracketed by a dedicated source and sink. This produces a
//     deep, narrow task graph with large span — the shape that stresses
//     scheduler depth.
//   - Chain: a single path 0→1→…→N-1, the degenerate width-1 pipeline and
//     the maximum-span shape per node budget. Nabbit's TODO notes that
//     huge-span pipelines break naive (stack-recursive) execution; chain
//     specs near the node cap prove the scheduler's iterative continuation
//     loop handles them.
//   - Explicit: a client-supplied node count and edge list, built verbatim
//     through dag.Builder. Unlike the generated shapes nothing is invented:
//     self-loops, duplicate edges, out-of-range endpoints, and cycles are
//     all rejected.
//   - Dynamic: a seeded expansion whose nodes are discovered at runtime
//     (Nabbit's dynamic mode): the graph is never built up front — see
//     dynamic.go for the lazy expander the scheduler grows mid-run.
//
// All randomness flows from Config.Seed, so a given Config always produces
// an identical DAG (Explicit involves no randomness at all, Chain only
// depends on its node count).
package gen

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
)

// Shape selects which generator a Config drives.
type Shape int

const (
	// Random is a forward-edge Erdős–Rényi style DAG.
	Random Shape = iota
	// Pipeline is a stages×width grid DAG with nearest-neighbor edges.
	Pipeline
	// Explicit is a client-supplied node count plus edge list.
	Explicit
	// Chain is a single path 0→1→…→N-1 (a width-1 pipeline without the
	// bracketing source/sink): the deepest span any node budget allows.
	Chain
	// Dynamic is a seeded runtime expansion; its graph is discovered while
	// it executes rather than generated up front (see Dyn).
	Dynamic
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case Random:
		return "random"
	case Pipeline:
		return "pipeline"
	case Explicit:
		return "explicit"
	case Chain:
		return "chain"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// ParseShape converts a wire string ("random", "pipeline", "explicit",
// "chain", "dynamic") to a Shape.
func ParseShape(s string) (Shape, error) {
	switch s {
	case "random":
		return Random, nil
	case "pipeline":
		return Pipeline, nil
	case "explicit":
		return Explicit, nil
	case "chain":
		return Chain, nil
	case "dynamic":
		return Dynamic, nil
	default:
		return 0, fmt.Errorf("gen: unknown dag shape %q (want random, pipeline, chain, dynamic, or explicit)", s)
	}
}

// MarshalText implements encoding.TextMarshaler, so a Shape serializes as
// its name ("random", "pipeline", "explicit", "chain", "dynamic") in JSON
// and other text encodings.
func (s Shape) MarshalText() ([]byte, error) {
	switch s {
	case Random, Pipeline, Explicit, Chain, Dynamic:
		return []byte(s.String()), nil
	default:
		return nil, fmt.Errorf("gen: cannot marshal unknown dag shape %d", int(s))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Shape) UnmarshalText(text []byte) error {
	parsed, err := ParseShape(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// Edge is one directed edge of an Explicit spec, serialized on the wire as
// a two-element JSON array [from, to].
type Edge [2]int

// UnmarshalJSON enforces that an edge is exactly a [from, to] pair. The
// default array decoding would silently zero-fill a one-element list
// (creating a phantom [x, 0] edge) and silently drop extra elements, both
// of which must be admission errors for client-supplied graphs.
func (e *Edge) UnmarshalJSON(b []byte) error {
	var pair []int
	if err := json.Unmarshal(b, &pair); err != nil {
		return fmt.Errorf("gen: edge must be a [from,to] array: %w", err)
	}
	if len(pair) != 2 {
		return fmt.Errorf("gen: edge must have exactly 2 endpoints, got %d", len(pair))
	}
	e[0], e[1] = pair[0], pair[1]
	return nil
}

// Config parameterizes a generator run. The JSON form is the wire format
// used by the dagd run-submission API, so equal JSON documents always
// describe equal DAGs.
type Config struct {
	Shape    Shape   `json:"shape"`
	Nodes    int     `json:"nodes,omitempty"`  // total node count (Random, Explicit); ignored by Pipeline
	EdgeProb float64 `json:"p,omitempty"`      // forward-edge probability p (Random only)
	Stages   int     `json:"stages,omitempty"` // pipeline depth (Pipeline only)
	Width    int     `json:"width,omitempty"`  // pipeline width (Pipeline only)
	Seed     int64   `json:"seed,omitempty"`   // PRNG seed; equal seeds give equal DAGs
	Edges    []Edge  `json:"edges,omitempty"`  // explicit edge list (Explicit only)
}

// Generate builds the DAG described by cfg. The dynamic shape has no
// up-front graph by design — callers execute it through NewDynamic instead.
func Generate(cfg Config) (*dag.DAG, error) {
	switch cfg.Shape {
	case Random:
		return RandomDAG(cfg.Nodes, cfg.EdgeProb, cfg.Seed)
	case Pipeline:
		return PipelineDAG(cfg.Stages, cfg.Width)
	case Explicit:
		return ExplicitDAG(cfg.Nodes, cfg.Edges)
	case Chain:
		return ChainDAG(cfg.Nodes)
	case Dynamic:
		return nil, fmt.Errorf("gen: dynamic dags are discovered at runtime; execute them via NewDynamic, not Generate")
	default:
		return nil, fmt.Errorf("gen: unknown dag shape %v", cfg.Shape)
	}
}

// ChainDAG builds the n-node path 0→1→…→n-1. It bypasses Builder's
// duplicate-edge map: a chain near the node cap is the deep-span stress
// shape, and paying a million-entry hash map to dedupe edges that cannot
// repeat would roughly triple generation cost for nothing.
func ChainDAG(n int) (*dag.DAG, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: chain needs >= 1 node, got %d", n)
	}
	edges := make([][2]dag.NodeID, n-1)
	for i := range edges {
		edges[i] = [2]dag.NodeID{dag.NodeID(i), dag.NodeID(i + 1)}
	}
	return dag.FromEdges(n, edges)
}

// ExplicitDAG builds the graph a client described literally: n nodes
// identified 0..n-1 and exactly the given edges. The Builder rejects
// out-of-range endpoints and self-loops edge by edge, duplicate edges are
// rejected here (the Builder would silently ignore them, which is the wrong
// posture for untrusted input), and Build's Kahn pass rejects cycles.
func ExplicitDAG(n int, edges []Edge) (*dag.DAG, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: explicit dag needs >= 1 node, got %d", n)
	}
	b := dag.NewBuilder(n)
	for _, e := range edges {
		before := b.NumEdges()
		if err := b.AddEdge(dag.NodeID(e[0]), dag.NodeID(e[1])); err != nil {
			return nil, err
		}
		if b.NumEdges() == before {
			return nil, fmt.Errorf("gen: duplicate edge (%d,%d)", e[0], e[1])
		}
	}
	return b.Build()
}

// RandomDAG generates a random DAG with n nodes. Every forward pair (i, j)
// with i < j gets an edge with probability p. To keep the source→sink path
// count well defined, every node except 0 is guaranteed at least one parent
// and every node except n-1 at least one child (fill-in edges are drawn from
// the same seeded PRNG, so the result is still fully deterministic).
func RandomDAG(n int, p float64, seed int64) (*dag.DAG, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: random dag needs >= 2 nodes, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: edge probability %v outside [0,1]", p)
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(n)
	hasParent := make([]bool, n)
	hasChild := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				if err := b.AddEdge(dag.NodeID(i), dag.NodeID(j)); err != nil {
					return nil, err
				}
				hasParent[j] = true
				hasChild[i] = true
			}
		}
	}
	// Connectivity fill-in: orphaned interior nodes get a random earlier
	// parent; childless interior nodes get a random later child.
	for j := 1; j < n; j++ {
		if !hasParent[j] {
			i := rng.Intn(j)
			if err := b.AddEdge(dag.NodeID(i), dag.NodeID(j)); err != nil {
				return nil, err
			}
			hasChild[i] = true
		}
	}
	for i := n - 2; i >= 0; i-- {
		if !hasChild[i] {
			j := i + 1 + rng.Intn(n-1-i)
			if err := b.AddEdge(dag.NodeID(i), dag.NodeID(j)); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}

// PipelineDAG generates a stages×width grid with a dedicated source (node 0)
// and sink (last node). Grid node (s, i) connects to (s+1, j) for every j
// with |i-j| <= 1. The source feeds all of stage 0; all of the last stage
// feeds the sink. The shape is fully determined by its dimensions, so no
// seed is involved.
func PipelineDAG(stages, width int) (*dag.DAG, error) {
	if stages < 1 || width < 1 {
		return nil, fmt.Errorf("gen: pipeline needs stages >= 1 and width >= 1, got %dx%d", stages, width)
	}
	// Division-based guard: stages*width+2 overflows int for adversarial
	// dimensions (wrapping negative and panicking in NewBuilder), and
	// admission caps are not on every caller's path — the CLI hands
	// dimensions straight here.
	if stages > (math.MaxInt-2)/width {
		return nil, fmt.Errorf("gen: pipeline %dx%d overflows the node count", stages, width)
	}
	n := stages*width + 2
	source := dag.NodeID(0)
	sink := dag.NodeID(n - 1)
	// Grid node (s, i) is ID 1 + s*width + i.
	id := func(s, i int) dag.NodeID { return dag.NodeID(1 + s*width + i) }
	b := dag.NewBuilder(n)
	for i := 0; i < width; i++ {
		if err := b.AddEdge(source, id(0, i)); err != nil {
			return nil, err
		}
		if err := b.AddEdge(id(stages-1, i), sink); err != nil {
			return nil, err
		}
	}
	for s := 0; s < stages-1; s++ {
		for i := 0; i < width; i++ {
			for j := i - 1; j <= i+1; j++ {
				if j < 0 || j >= width {
					continue
				}
				if err := b.AddEdge(id(s, i), id(s+1, j)); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}
