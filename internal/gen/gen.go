// Package gen provides deterministic, seeded DAG generators for benchmark
// workloads. Two shapes are supported, mirroring the Nabbit random-DAG
// microbenchmark knobs <R, NodeWork, dag_type>:
//
//   - Random: nodes 0..N-1 with each forward edge (i, j), i < j, present
//     independently with probability p. Node 0 is forced to be the unique
//     source and node N-1 the unique sink, so source→sink path counting is
//     always well defined.
//   - Pipeline: a stages×width grid where node (s, i) feeds (s+1, j) for
//     |i-j| <= 1, bracketed by a dedicated source and sink. This produces a
//     deep, narrow task graph with large span — the shape that stresses
//     scheduler depth.
//
// All randomness flows from Config.Seed, so a given Config always produces
// an identical DAG.
package gen

import (
	"fmt"
	"math/rand"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
)

// Shape selects which generator a Config drives.
type Shape int

const (
	// Random is a forward-edge Erdős–Rényi style DAG.
	Random Shape = iota
	// Pipeline is a stages×width grid DAG with nearest-neighbor edges.
	Pipeline
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case Random:
		return "random"
	case Pipeline:
		return "pipeline"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// ParseShape converts a CLI string ("random" or "pipeline") to a Shape.
func ParseShape(s string) (Shape, error) {
	switch s {
	case "random":
		return Random, nil
	case "pipeline":
		return Pipeline, nil
	default:
		return 0, fmt.Errorf("gen: unknown dag shape %q (want random or pipeline)", s)
	}
}

// MarshalText implements encoding.TextMarshaler, so a Shape serializes as
// its name ("random", "pipeline") in JSON and other text encodings.
func (s Shape) MarshalText() ([]byte, error) {
	switch s {
	case Random, Pipeline:
		return []byte(s.String()), nil
	default:
		return nil, fmt.Errorf("gen: cannot marshal unknown dag shape %d", int(s))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Shape) UnmarshalText(text []byte) error {
	parsed, err := ParseShape(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// Config parameterizes a generator run. The JSON form is the wire format
// used by the dagd run-submission API, so equal JSON documents always
// describe equal DAGs.
type Config struct {
	Shape    Shape   `json:"shape"`
	Nodes    int     `json:"nodes,omitempty"`  // total node count (Random); ignored by Pipeline
	EdgeProb float64 `json:"p,omitempty"`      // forward-edge probability p (Random only)
	Stages   int     `json:"stages,omitempty"` // pipeline depth (Pipeline only)
	Width    int     `json:"width,omitempty"`  // pipeline width (Pipeline only)
	Seed     int64   `json:"seed,omitempty"`   // PRNG seed; equal seeds give equal DAGs
}

// Generate builds the DAG described by cfg.
func Generate(cfg Config) (*dag.DAG, error) {
	switch cfg.Shape {
	case Random:
		return RandomDAG(cfg.Nodes, cfg.EdgeProb, cfg.Seed)
	case Pipeline:
		return PipelineDAG(cfg.Stages, cfg.Width)
	default:
		return nil, fmt.Errorf("gen: unknown dag shape %v", cfg.Shape)
	}
}

// RandomDAG generates a random DAG with n nodes. Every forward pair (i, j)
// with i < j gets an edge with probability p. To keep the source→sink path
// count well defined, every node except 0 is guaranteed at least one parent
// and every node except n-1 at least one child (fill-in edges are drawn from
// the same seeded PRNG, so the result is still fully deterministic).
func RandomDAG(n int, p float64, seed int64) (*dag.DAG, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: random dag needs >= 2 nodes, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: edge probability %v outside [0,1]", p)
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(n)
	hasParent := make([]bool, n)
	hasChild := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				if err := b.AddEdge(dag.NodeID(i), dag.NodeID(j)); err != nil {
					return nil, err
				}
				hasParent[j] = true
				hasChild[i] = true
			}
		}
	}
	// Connectivity fill-in: orphaned interior nodes get a random earlier
	// parent; childless interior nodes get a random later child.
	for j := 1; j < n; j++ {
		if !hasParent[j] {
			i := rng.Intn(j)
			if err := b.AddEdge(dag.NodeID(i), dag.NodeID(j)); err != nil {
				return nil, err
			}
			hasChild[i] = true
		}
	}
	for i := n - 2; i >= 0; i-- {
		if !hasChild[i] {
			j := i + 1 + rng.Intn(n-1-i)
			if err := b.AddEdge(dag.NodeID(i), dag.NodeID(j)); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}

// PipelineDAG generates a stages×width grid with a dedicated source (node 0)
// and sink (last node). Grid node (s, i) connects to (s+1, j) for every j
// with |i-j| <= 1. The source feeds all of stage 0; all of the last stage
// feeds the sink. The shape is fully determined by its dimensions, so no
// seed is involved.
func PipelineDAG(stages, width int) (*dag.DAG, error) {
	if stages < 1 || width < 1 {
		return nil, fmt.Errorf("gen: pipeline needs stages >= 1 and width >= 1, got %dx%d", stages, width)
	}
	n := stages*width + 2
	source := dag.NodeID(0)
	sink := dag.NodeID(n - 1)
	// Grid node (s, i) is ID 1 + s*width + i.
	id := func(s, i int) dag.NodeID { return dag.NodeID(1 + s*width + i) }
	b := dag.NewBuilder(n)
	for i := 0; i < width; i++ {
		if err := b.AddEdge(source, id(0, i)); err != nil {
			return nil, err
		}
		if err := b.AddEdge(id(stages-1, i), sink); err != nil {
			return nil, err
		}
	}
	for s := 0; s < stages-1; s++ {
		for i := 0; i < width; i++ {
			for j := i - 1; j <= i+1; j++ {
				if j < 0 || j >= width {
					continue
				}
				if err := b.AddEdge(id(s, i), id(s+1, j)); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}
