package gen

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
)

func TestChainDAGShape(t *testing.T) {
	d, err := ChainDAG(5)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 5 || d.NumEdges() != 4 {
		t.Fatalf("NumNodes/NumEdges = %d/%d, want 5/4", d.NumNodes(), d.NumEdges())
	}
	if d.Depth() != 4 {
		t.Errorf("Depth = %d, want 4", d.Depth())
	}
	if got := len(d.Sources()); got != 1 {
		t.Errorf("len(Sources) = %d, want 1", got)
	}
	if got := len(d.Sinks()); got != 1 {
		t.Errorf("len(Sinks) = %d, want 1", got)
	}
	for v := 0; v < 4; v++ {
		c := d.Children(dag.NodeID(v))
		if len(c) != 1 || c[0] != dag.NodeID(v+1) {
			t.Fatalf("Children(%d) = %v, want [%d]", v, c, v+1)
		}
	}
	// A single node is a legal (edgeless) chain.
	if d, err := ChainDAG(1); err != nil || d.NumNodes() != 1 || d.Depth() != 0 {
		t.Errorf("ChainDAG(1) = %v, %v; want a 1-node depth-0 dag", d, err)
	}
	if _, err := ChainDAG(0); err == nil {
		t.Error("ChainDAG(0) succeeded, want error")
	}
}

// TestChainDAGDeep pins that chain construction stays linear and shallow in
// memory at the spans the paper exercises (~1e6 nodes).
func TestChainDAGDeep(t *testing.T) {
	const n = 1 << 20
	d, err := ChainDAG(n)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != n || d.NumEdges() != n-1 {
		t.Fatalf("NumNodes/NumEdges = %d/%d, want %d/%d", d.NumNodes(), d.NumEdges(), n, n-1)
	}
	if d.Depth() != n-1 {
		t.Errorf("Depth = %d, want %d", d.Depth(), n-1)
	}
}

func TestNewDynamicValidation(t *testing.T) {
	base := Config{Shape: Dynamic, Stages: 4, Width: 2, EdgeProb: 0.3, Seed: 1}
	if _, err := NewDynamic(base, DynLimits{}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Shape: Random, Nodes: 10, EdgeProb: 0.1},
		{Shape: Dynamic, Stages: 0, Width: 2},
		{Shape: Dynamic, Stages: 4, Width: 0},
		{Shape: Dynamic, Stages: 4, Width: 2, EdgeProb: -0.1},
		{Shape: Dynamic, Stages: 4, Width: 2, EdgeProb: 1.1},
	}
	for _, cfg := range bad {
		if _, err := NewDynamic(cfg, DynLimits{}); err == nil {
			t.Errorf("NewDynamic(%+v) succeeded, want error", cfg)
		}
	}
	// Generate must refuse the dynamic shape: it has no static graph.
	if _, err := Generate(base); err == nil {
		t.Error("Generate with dynamic shape succeeded, want error")
	}
}

// expandAll walks the expander to exhaustion in the given visit order
// (mimicking an arbitrary parallel execution order) and returns the visit
// count. order permutes each discovery frontier before expanding it.
func expandAll(t *testing.T, d *Dyn, order func([]dag.NodeID)) int {
	t.Helper()
	frontier := []dag.NodeID{0}
	seen := 1
	for len(frontier) > 0 {
		order(frontier)
		var next []dag.NodeID
		visited := make(map[dag.NodeID]bool)
		for _, u := range frontier {
			children, err := d.Expand(u)
			if err != nil {
				t.Fatalf("Expand(%d): %v", u, err)
			}
			for _, c := range children {
				if !visited[c] {
					visited[c] = true
					next = append(next, c)
					seen++
				}
			}
		}
		frontier = next
	}
	return seen
}

// TestDynamicDeterministicAcrossOrders pins the core property run.Execute
// relies on: the final graph is a pure function of the Config no matter
// which order workers trigger expansions in.
func TestDynamicDeterministicAcrossOrders(t *testing.T) {
	cfg := Config{Shape: Dynamic, Stages: 6, Width: 3, EdgeProb: 0.4, Seed: 99}
	shapes := make([]*dag.DAG, 3)
	orders := []func([]dag.NodeID){
		func([]dag.NodeID) {}, // discovery order
		func(f []dag.NodeID) { // reversed
			for i, j := 0, len(f)-1; i < j; i, j = i+1, j-1 {
				f[i], f[j] = f[j], f[i]
			}
		},
		func(f []dag.NodeID) { // shuffled
			rand.New(rand.NewSource(7)).Shuffle(len(f), func(i, j int) { f[i], f[j] = f[j], f[i] })
		},
	}
	for i, order := range orders {
		d, err := NewDynamic(cfg, DynLimits{})
		if err != nil {
			t.Fatal(err)
		}
		expandAll(t, d, order)
		fin, err := d.FinalDAG()
		if err != nil {
			t.Fatalf("order %d: FinalDAG: %v", i, err)
		}
		shapes[i] = fin
	}
	for i := 1; i < len(shapes); i++ {
		if shapes[i].NumNodes() != shapes[0].NumNodes() || shapes[i].NumEdges() != shapes[0].NumEdges() {
			t.Fatalf("order %d: %d nodes/%d edges, order 0: %d/%d", i,
				shapes[i].NumNodes(), shapes[i].NumEdges(), shapes[0].NumNodes(), shapes[0].NumEdges())
		}
		if !sameChildren(shapes[0], shapes[i]) {
			t.Fatalf("order %d produced a different graph than discovery order", i)
		}
	}
}

// TestDynamicFinalDAGParentOrder pins that the frozen graph's Parents(v)
// matches the expander's element for element: order-sensitive workloads
// (hashchain) fold parent values in radj order, so a mismatch would make
// serial verification fail on correct executions.
func TestDynamicFinalDAGParentOrder(t *testing.T) {
	cfg := Config{Shape: Dynamic, Stages: 5, Width: 4, EdgeProb: 0.5, Seed: 3}
	d, err := NewDynamic(cfg, DynLimits{})
	if err != nil {
		t.Fatal(err)
	}
	expandAll(t, d, func([]dag.NodeID) {})
	fin, err := d.FinalDAG()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < fin.NumNodes(); v++ {
		want := d.Parents(dag.NodeID(v))
		got := fin.Parents(dag.NodeID(v))
		if len(got) != len(want) {
			t.Fatalf("node %d: parent counts differ: frozen %d vs expander %d", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d parent %d: frozen %d vs expander %d", v, i, got[i], want[i])
			}
		}
	}
}

// TestDynamicGrowthBound pins the runtime enforcement of the node cap: an
// expansion that would exceed it fails with ErrGrowthBound and the error is
// sticky so the whole run winds down.
func TestDynamicGrowthBound(t *testing.T) {
	cfg := Config{Shape: Dynamic, Stages: 30, Width: 4, EdgeProb: 0, Seed: 5}
	d, err := NewDynamic(cfg, DynLimits{MaxNodes: 200})
	if err != nil {
		t.Fatal(err)
	}
	frontier := []dag.NodeID{0}
	var boundErr error
	for len(frontier) > 0 && boundErr == nil {
		var next []dag.NodeID
		for _, u := range frontier {
			children, err := d.Expand(u)
			if err != nil {
				boundErr = err
				break
			}
			next = append(next, children...)
		}
		frontier = next
	}
	if !errors.Is(boundErr, ErrGrowthBound) {
		t.Fatalf("expansion error = %v, want ErrGrowthBound", boundErr)
	}
	if d.NumNodes() > 200 {
		t.Errorf("NumNodes = %d after bound hit, want <= 200", d.NumNodes())
	}
	// Sticky: the root re-expanded reports the same failure.
	if _, err := d.Expand(0); !errors.Is(err, ErrGrowthBound) {
		t.Errorf("Expand after bound = %v, want sticky ErrGrowthBound", err)
	}

	// Edge cap enforcement, separately.
	de, err := NewDynamic(Config{Shape: Dynamic, Stages: 30, Width: 4, EdgeProb: 0.9, Seed: 5}, DynLimits{MaxEdges: 100})
	if err != nil {
		t.Fatal(err)
	}
	frontier = []dag.NodeID{0}
	boundErr = nil
	for len(frontier) > 0 && boundErr == nil {
		var next []dag.NodeID
		for _, u := range frontier {
			children, err := de.Expand(u)
			if err != nil {
				boundErr = err
				break
			}
			next = append(next, children...)
		}
		frontier = next
	}
	if !errors.Is(boundErr, ErrGrowthBound) {
		t.Fatalf("edge-cap expansion error = %v, want ErrGrowthBound", boundErr)
	}
}

// TestDynamicLeafAndUnknown pins Expand's edge cases: leaves return no
// successors and undiscovered IDs are an error, not a silent expansion.
func TestDynamicLeafAndUnknown(t *testing.T) {
	d, err := NewDynamic(Config{Shape: Dynamic, Stages: 1, Width: 2, Seed: 8}, DynLimits{})
	if err != nil {
		t.Fatal(err)
	}
	children, err := d.Expand(0)
	if err != nil || len(children) == 0 {
		t.Fatalf("Expand(0) = %v, %v; want children", children, err)
	}
	for _, c := range children {
		got, err := d.Expand(c)
		if err != nil || got != nil {
			t.Errorf("Expand(leaf %d) = %v, %v; want nil, nil", c, got, err)
		}
	}
	if _, err := d.Expand(dag.NodeID(d.NumNodes() + 5)); err == nil {
		t.Error("Expand of undiscovered node succeeded, want error")
	}
	if _, err := d.Expand(-1); err == nil {
		t.Error("Expand(-1) succeeded, want error")
	}
}
