package core
