// Package core is the engine's public entry point: it re-exports the graph
// model (internal/dag), the deterministic generators (internal/gen), and
// the concurrent scheduler (internal/sched) so callers wire against one
// package while the layers underneath stay independently testable.
package core

import (
	"context"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dag"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/sched"
)

// Graph model re-exports.
type (
	DAG     = dag.DAG
	NodeID  = dag.NodeID
	Builder = dag.Builder
)

// ErrCycle is returned by Build when the assembled graph is cyclic.
var ErrCycle = dag.ErrCycle

// NewBuilder starts assembling a graph with n nodes.
func NewBuilder(n int) *Builder { return dag.NewBuilder(n) }

// Generator re-exports.
type (
	GenConfig = gen.Config
	Shape     = gen.Shape
	Edge      = gen.Edge
)

const (
	RandomShape   = gen.Random
	PipelineShape = gen.Pipeline
	ExplicitShape = gen.Explicit
	ChainShape    = gen.Chain
	DynamicShape  = gen.Dynamic
)

// ParseShape converts a CLI string ("random", "pipeline", "explicit",
// "chain", or "dynamic") to a Shape.
func ParseShape(s string) (Shape, error) { return gen.ParseShape(s) }

// Generate builds a deterministic benchmark DAG from cfg.
func Generate(cfg GenConfig) (*DAG, error) { return gen.Generate(cfg) }

// RandomDAG generates a seeded random DAG with n nodes and forward-edge
// probability p.
func RandomDAG(n int, p float64, seed int64) (*DAG, error) { return gen.RandomDAG(n, p, seed) }

// PipelineDAG generates a stages×width pipeline DAG.
func PipelineDAG(stages, width int) (*DAG, error) { return gen.PipelineDAG(stages, width) }

// ExplicitDAG builds a DAG from a literal node count and edge list,
// rejecting self-loops, duplicate/out-of-range edges, and cycles.
func ExplicitDAG(n int, edges []Edge) (*DAG, error) { return gen.ExplicitDAG(n, edges) }

// ChainDAG generates an n-node path graph — the deep-span scenario shape.
func ChainDAG(n int) (*DAG, error) { return gen.ChainDAG(n) }

// Scheduler re-exports.
type (
	Compute  = sched.Compute
	Executor = sched.Executor
	Options  = sched.Options
	Workload = sched.Workload
)

// DefaultWorkload is the workload name assumed when a spec names none.
const DefaultWorkload = sched.DefaultWorkload

// NewExecutor returns a work-stealing executor for d.
func NewExecutor(d *DAG, opts Options) *Executor { return sched.New(d, opts) }

// RegisterWorkload adds a workload implementation to the registry; specs
// may then name it for admission through dagbench or dagd.
func RegisterWorkload(w Workload) error { return sched.RegisterWorkload(w) }

// LookupWorkload resolves a workload name ("" = DefaultWorkload).
func LookupWorkload(name string) (Workload, error) { return sched.LookupWorkload(name) }

// Workloads returns the sorted names of all registered workloads.
func Workloads() []string { return sched.Workloads() }

// CountPathsParallel counts source→sink paths concurrently on a worker pool.
func CountPathsParallel(ctx context.Context, d *DAG, workers, work int) ([]uint64, error) {
	return sched.CountPathsParallel(ctx, d, workers, work)
}

// CountPathsSerial is the single-threaded correctness reference.
func CountPathsSerial(d *DAG, work int) []uint64 { return sched.CountPathsSerial(d, work) }

// TotalSinkPaths sums path counts over all sinks (mod 2^64).
func TotalSinkPaths(d *DAG, values []uint64) uint64 { return sched.TotalSinkPaths(d, values) }
