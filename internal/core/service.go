package core

import (
	"context"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dispatch"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

// Run-service re-exports, so service callers (internal/server, cmd/dagd)
// wire against core alone just like engine callers do.
type (
	RunSpec   = run.Spec
	RunState  = run.State
	RunResult = run.Result
	RunInfo   = run.Run
)

// Run lifecycle states.
const (
	RunQueued    = run.StateQueued
	RunRunning   = run.StateRunning
	RunSucceeded = run.StateSucceeded
	RunFailed    = run.StateFailed
	RunCancelled = run.StateCancelled
)

// Run-service errors.
var (
	ErrRunNotFound     = run.ErrNotFound
	ErrRunTerminal     = run.ErrTerminal
	ErrRunMismatch     = run.ErrMismatch
	ErrInvalidSpec     = run.ErrInvalidSpec
	ErrUnknownWorkload = run.ErrUnknownWorkload
	ErrQueueFull       = dispatch.ErrQueueFull
	ErrShuttingDown    = dispatch.ErrShuttingDown
)

// ParseRunState converts a state name ("queued", "running", ...) to a RunState.
func ParseRunState(name string) (RunState, error) { return run.ParseState(name) }

// ExecuteRun performs one run end to end (generate → serial reference →
// parallel scheduler → self-check) outside any service — the one-shot path
// dagbench uses, identical to what dagd dispatchers execute.
func ExecuteRun(ctx context.Context, spec RunSpec, defaultWorkers int) (*RunResult, error) {
	return run.Execute(ctx, spec, defaultWorkers)
}

// ServiceOptions sizes a Service.
type ServiceOptions struct {
	// QueueDepth bounds the dispatch queue (0 = 256).
	QueueDepth int
	// Dispatchers is how many runs execute concurrently (0 = NumCPU).
	Dispatchers int
	// DefaultRunWorkers is the per-run scheduler pool size for specs that
	// leave Workers at 0 (0 = NumCPU).
	DefaultRunWorkers int
	// DefaultWorkload is stamped onto specs that name no workload
	// ("" = the registry default, sched.DefaultWorkload).
	DefaultWorkload string
	// RetainRuns bounds how many terminal runs are kept, oldest-finished
	// evicted first (0 = 4096, negative = unlimited).
	RetainRuns int
}

// ServiceStats is a snapshot of service load for health reporting.
type ServiceStats struct {
	Runs        int            `json:"runs"`
	ByState     map[string]int `json:"by_state"`
	QueueLen    int            `json:"queue_len"`
	QueueDepth  int            `json:"queue_depth"`
	Dispatchers int            `json:"dispatchers"`
}

// Service is the long-running run-execution facade: an in-memory run store
// plus a dispatcher pool executing submitted specs through the scheduler.
// It is what dagd serves over HTTP.
type Service struct {
	store           *run.Store
	disp            *dispatch.Dispatcher
	defaultWorkload string
}

// NewService builds a Service and starts its dispatcher pool. Callers must
// eventually call Shutdown.
func NewService(opts ServiceOptions) *Service {
	if opts.DefaultWorkload == "" {
		opts.DefaultWorkload = DefaultWorkload
	}
	store := run.NewStore()
	disp := dispatch.New(store, dispatch.Options{
		QueueDepth:        opts.QueueDepth,
		Dispatchers:       opts.Dispatchers,
		DefaultRunWorkers: opts.DefaultRunWorkers,
		DefaultWorkload:   opts.DefaultWorkload,
		RetainRuns:        opts.RetainRuns,
	})
	return &Service{store: store, disp: disp, defaultWorkload: opts.DefaultWorkload}
}

// DefaultWorkloadName reports which workload the service stamps onto specs
// that name none (surfaced by GET /v1/workloads).
func (s *Service) DefaultWorkloadName() string { return s.defaultWorkload }

// Submit validates and enqueues a run, returning its queued snapshot.
func (s *Service) Submit(spec RunSpec) (RunInfo, error) { return s.disp.Submit(spec) }

// Get returns a snapshot of one run.
func (s *Service) Get(id string) (RunInfo, error) { return s.store.Get(id) }

// Await blocks until the run reaches a terminal state or ctx is done and
// returns the latest snapshot either way; it fails only on unknown IDs.
// This backs the HTTP API's ?wait= long-poll.
func (s *Service) Await(ctx context.Context, id string) (RunInfo, error) {
	return s.store.Await(ctx, id)
}

// Draining reports whether Shutdown has begun (readiness signal; new
// submissions are already being refused with ErrShuttingDown).
func (s *Service) Draining() bool { return s.disp.Draining() }

// List returns snapshots of all runs, oldest first.
func (s *Service) List() []RunInfo { return s.store.List() }

// Cancel requests cancellation of a queued or running run.
func (s *Service) Cancel(id string) (RunInfo, error) { return s.disp.Cancel(id) }

// Stats snapshots current service load.
func (s *Service) Stats() ServiceStats {
	byState := make(map[string]int)
	total := 0
	for state, n := range s.store.CountByState() {
		byState[state.String()] = n
		total += n
	}
	return ServiceStats{
		Runs:        total,
		ByState:     byState,
		QueueLen:    s.disp.QueueLen(),
		QueueDepth:  s.disp.QueueDepth(),
		Dispatchers: s.disp.Dispatchers(),
	}
}

// Shutdown stops accepting runs and drains the dispatcher pool; if ctx
// expires first, in-flight runs are force-cancelled.
func (s *Service) Shutdown(ctx context.Context) error { return s.disp.Shutdown(ctx) }
