package core

import (
	"context"
	"net/http"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/dispatch"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/fleet"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/metrics"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/sched"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/store/wal"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/tenant"
)

// Run-service re-exports, so service callers (internal/server, cmd/dagd)
// wire against core alone just like engine callers do.
type (
	RunSpec   = run.Spec
	RunState  = run.State
	RunResult = run.Result
	RunInfo   = run.Run
	RunStore  = run.Store
	// TenantConfig is one tenant's admission policy (weight, priority
	// class, quotas, submit rate limit) — the element type of the -tenants
	// file and ServiceOptions.Tenants.
	TenantConfig = tenant.Config
	// TenantStats is one tenant's scheduling snapshot inside ServiceStats.
	TenantStats = dispatch.TenantStats
	// RetryableError wraps backpressure rejections (rate_limited,
	// quota_exceeded, queue full) with the tenant hit and a Retry-After
	// hint for the API layer.
	RetryableError = dispatch.RetryableError
	// FleetStats is the distributed-execution snapshot (worker count,
	// active leases) embedded in ServiceStats when remote mode is on.
	FleetStats = fleet.Stats
)

// Fleet lease-clock defaults, re-exported for dagd's flag help.
const (
	DefaultLeaseTTL          = fleet.DefaultLeaseTTL
	DefaultHeartbeatInterval = fleet.DefaultHeartbeatInterval
)

// DefaultTenant is the catch-all tenant name submissions with no (or an
// unconfigured) X-Tenant are attributed to.
const DefaultTenant = tenant.Default

// Run lifecycle states.
const (
	RunQueued    = run.StateQueued
	RunRunning   = run.StateRunning
	RunSucceeded = run.StateSucceeded
	RunFailed    = run.StateFailed
	RunCancelled = run.StateCancelled
)

// Run-service errors.
var (
	ErrRunNotFound     = run.ErrNotFound
	ErrRunTerminal     = run.ErrTerminal
	ErrRunMismatch     = run.ErrMismatch
	ErrInvalidSpec     = run.ErrInvalidSpec
	ErrUnknownWorkload = run.ErrUnknownWorkload
	ErrQueueFull       = dispatch.ErrQueueFull
	ErrRateLimited     = dispatch.ErrRateLimited
	ErrQuotaExceeded   = dispatch.ErrQuotaExceeded
	ErrShuttingDown    = dispatch.ErrShuttingDown
	ErrInvalidTenants  = tenant.ErrInvalidConfig
)

// LoadTenantConfigs reads tenant configs from a JSON file (bare array or
// {"tenants":[...]}) — the dagd -tenants flag's loader.
func LoadTenantConfigs(path string) ([]TenantConfig, error) { return tenant.LoadFile(path) }

// ParseRunState converts a state name ("queued", "running", ...) to a RunState.
func ParseRunState(name string) (RunState, error) { return run.ParseState(name) }

// CompareRuns is the shared (CreatedAt, ID) run comparator — the order
// List returns and pagination cursors walk. Re-exported for the API layer.
func CompareRuns(a, b RunInfo) int { return run.CompareRuns(a, b) }

// CompareRunToCursor compares a run's pagination position to a decoded
// (UnixNano, ID) cursor in the same order as CompareRuns.
func CompareRunToCursor(r RunInfo, nanos int64, id string) int {
	return run.CompareToCursor(r, nanos, id)
}

// ExecuteRun performs one run end to end (generate → serial reference →
// parallel scheduler → self-check) outside any service — the one-shot path
// dagbench uses, identical to what dagd dispatchers execute.
func ExecuteRun(ctx context.Context, spec RunSpec, defaultWorkers int) (*RunResult, error) {
	return run.Execute(ctx, spec, defaultWorkers)
}

// ServiceOptions sizes a Service.
type ServiceOptions struct {
	// QueueDepth bounds the dispatch queue (0 = 256).
	QueueDepth int
	// Dispatchers is how many runs execute concurrently (0 = NumCPU).
	Dispatchers int
	// DefaultRunWorkers is the per-run scheduler pool size for specs that
	// leave Workers at 0 (0 = NumCPU).
	DefaultRunWorkers int
	// DefaultWorkload is stamped onto specs that name no workload
	// ("" = the registry default, sched.DefaultWorkload).
	DefaultWorkload string
	// RetainRuns bounds how many terminal runs are kept, oldest-finished
	// evicted first (0 = 4096, negative = unlimited).
	RetainRuns int
	// DataDir enables the durable WAL-backed run store rooted at this
	// directory: every state transition is logged, and on the next boot
	// terminal runs are restored as history while interrupted runs are
	// re-admitted to the dispatcher. Empty keeps the in-memory store
	// (a restart loses everything, as before).
	DataDir string
	// Fsync makes every acknowledged transition durable against power loss:
	// a WAL append does not return until its record is fsynced. Syncs are
	// group-committed per shard, so concurrent transitions share one fsync.
	// Only meaningful with DataDir set.
	Fsync bool
	// FsyncMaxDelay bounds how long a WAL group-commit batch may keep
	// accumulating while appends are arriving (0 = wal.DefaultFsyncMaxDelay,
	// negative = sync each batch immediately). Only meaningful with Fsync.
	FsyncMaxDelay time.Duration
	// WALShards is the number of independent WAL shard directories (0 =
	// adopt the data dir's manifest, or wal.DefaultShards when fresh). A
	// non-zero value that disagrees with an existing manifest fails
	// NewService with wal.ErrShardCountMismatch. Only meaningful with
	// DataDir.
	WALShards int
	// CompactThreshold is how many WAL records may accumulate in one shard
	// before its terminal runs are compacted into a snapshot file and old
	// segments removed (0 = 4096, negative = never). Only meaningful with
	// DataDir.
	CompactThreshold int
	// Tenants is the multi-tenant admission policy (dagd -tenants). Nil
	// means only the catch-all default tenant exists — every submission
	// shares one queue bounded by QueueDepth, as before. Invalid configs
	// fail NewService with ErrInvalidTenants.
	Tenants []TenantConfig
	// Metrics is the registry every layer (dispatch, scheduler, WAL, run
	// states) instruments into. Nil means NewService creates its own, so
	// Service.Metrics — and GET /metrics — always has a live registry.
	Metrics *metrics.Registry
	// Remote switches the dispatcher to lease mode: instead of executing
	// runs in-process, ready runs are leased to external dagworker
	// processes over the fleet worker API (served by FleetHandler). With
	// Remote false the service executes embedded, exactly as before.
	Remote bool
	// LeaseTTL is how long a worker lease survives without a heartbeat
	// before its run is requeued for re-dispatch (0 = DefaultLeaseTTL).
	// Only meaningful with Remote.
	LeaseTTL time.Duration
	// HeartbeatInterval is the cadence workers are told to heartbeat at;
	// must stay under LeaseTTL/2 (0 = DefaultHeartbeatInterval). Only
	// meaningful with Remote.
	HeartbeatInterval time.Duration
}

// ServiceStats is a snapshot of service load for health reporting.
type ServiceStats struct {
	Runs        int            `json:"runs"`
	ByState     map[string]int `json:"by_state"`
	QueueLen    int            `json:"queue_len"`
	QueueDepth  int            `json:"queue_depth"`
	Dispatchers int            `json:"dispatchers"`
	// Recovered is how many interrupted runs were re-admitted to the queue
	// when this process booted from an existing data dir.
	Recovered int `json:"recovered,omitempty"`
	// Tenants is each tenant's scheduling snapshot: queue length, in-flight
	// count, and admission counters, keyed by tenant name.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
	// Fleet is the distributed-execution snapshot: registered workers and
	// active leases. Present only when the service runs in remote mode.
	Fleet *FleetStats `json:"fleet,omitempty"`
}

// Service is the long-running run-execution facade: a run store (in-memory,
// or WAL-backed when ServiceOptions.DataDir is set) plus a dispatcher pool
// executing submitted specs through the scheduler. It is what dagd serves
// over HTTP.
type Service struct {
	store           run.Store
	disp            *dispatch.Dispatcher
	fleet           *fleet.Manager // nil when executing embedded
	metrics         *metrics.Registry
	defaultWorkload string
	recovered       int
}

// NewService builds a Service and starts its dispatcher pool; with a
// DataDir it first replays the WAL, restoring history and re-admitting
// interrupted runs. Callers must eventually call Shutdown, which also
// closes the store. It fails only when the data dir cannot be opened or
// its log chain is corrupt.
func NewService(opts ServiceOptions) (*Service, error) {
	if opts.DefaultWorkload == "" {
		opts.DefaultWorkload = DefaultWorkload
	}
	registry, err := tenant.NewRegistry(opts.Tenants)
	if err != nil {
		return nil, err
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	var store run.Store
	var recovered []run.Run
	if opts.DataDir != "" {
		ws, rec, err := wal.Open(opts.DataDir, wal.Options{
			Fsync:            opts.Fsync,
			FsyncMaxDelay:    opts.FsyncMaxDelay,
			Shards:           opts.WALShards,
			CompactThreshold: opts.CompactThreshold,
			Metrics:          opts.Metrics,
		})
		if err != nil {
			return nil, err
		}
		store, recovered = ws, rec
	} else {
		store = run.NewMemStore()
	}
	disp := dispatch.New(store, dispatch.Options{
		QueueDepth:        opts.QueueDepth,
		Dispatchers:       opts.Dispatchers,
		DefaultRunWorkers: opts.DefaultRunWorkers,
		DefaultWorkload:   opts.DefaultWorkload,
		RetainRuns:        opts.RetainRuns,
		Tenants:           registry,
		Metrics:           opts.Metrics,
		Remote:            opts.Remote,
	})
	if len(recovered) > 0 {
		disp.Recover(recovered)
	}
	svc := &Service{
		store:           store,
		disp:            disp,
		metrics:         opts.Metrics,
		defaultWorkload: opts.DefaultWorkload,
		recovered:       len(recovered),
	}
	if opts.Remote {
		svc.fleet = fleet.NewManager(disp, fleet.Options{
			LeaseTTL:          opts.LeaseTTL,
			HeartbeatInterval: opts.HeartbeatInterval,
			Metrics:           opts.Metrics,
		})
	}

	// Service-level series: scheduler process-lifetime tallies as
	// func-backed counters, a constant for how many interrupted runs this
	// boot re-admitted, and the store's runs-by-state as a scrape-time
	// gauge (all five states zero-filled so dashboards never see gaps).
	opts.Metrics.CounterFunc("dagd_sched_nodes_executed_total",
		"DAG nodes retired by the work-stealing scheduler across all runs.",
		func() float64 { return float64(sched.NodesExecuted()) })
	opts.Metrics.CounterFunc("dagd_sched_steals_total",
		"Successful work-stealing operations across all runs.",
		func() float64 { return float64(sched.Steals()) })
	opts.Metrics.GaugeFunc("dagd_recovered_runs",
		"Interrupted runs re-admitted from the WAL when this process booted.",
		func() float64 { return float64(svc.recovered) })
	byState := opts.Metrics.GaugeVec("dagd_runs", "Runs in the store, by lifecycle state.", "state")
	opts.Metrics.OnCollect(func() {
		counts := svc.store.CountByState()
		for _, st := range []run.State{run.StateQueued, run.StateRunning, run.StateSucceeded, run.StateFailed, run.StateCancelled} {
			byState.With(st.String()).Set(float64(counts[st]))
		}
	})
	return svc, nil
}

// Metrics returns the service's metric registry — the families every layer
// below registered into — for the HTTP layer to render at GET /metrics.
func (s *Service) Metrics() *metrics.Registry { return s.metrics }

// DefaultWorkloadName reports which workload the service stamps onto specs
// that name none (surfaced by GET /v1/workloads).
func (s *Service) DefaultWorkloadName() string { return s.defaultWorkload }

// Recovered reports how many interrupted runs this process re-admitted on
// boot (always 0 for the in-memory store).
func (s *Service) Recovered() int { return s.recovered }

// FleetHandler returns the internal worker API (register/lease/heartbeat/
// complete under /fleet/v1/) when the service runs in remote mode, nil when
// it executes embedded. dagd serves it on its own listener, never the
// public one.
func (s *Service) FleetHandler() http.Handler {
	if s.fleet == nil {
		return nil
	}
	return s.fleet.Handler()
}

// Submit validates and enqueues a run, returning its queued snapshot.
func (s *Service) Submit(spec RunSpec) (RunInfo, error) { return s.disp.Submit(spec) }

// Get returns a snapshot of one run.
func (s *Service) Get(id string) (RunInfo, error) { return s.store.Get(id) }

// Await blocks until the run reaches a terminal state or ctx is done and
// returns the latest snapshot either way; it fails only on unknown IDs.
// This backs the HTTP API's ?wait= long-poll.
func (s *Service) Await(ctx context.Context, id string) (RunInfo, error) {
	return s.store.Await(ctx, id)
}

// Draining reports whether Shutdown has begun (readiness signal; new
// submissions are already being refused with ErrShuttingDown).
func (s *Service) Draining() bool { return s.disp.Draining() }

// List returns snapshots of all runs, oldest first.
func (s *Service) List() []RunInfo { return s.store.List() }

// Cancel requests cancellation of a queued or running run.
func (s *Service) Cancel(id string) (RunInfo, error) { return s.disp.Cancel(id) }

// Stats snapshots current service load. The dispatcher fields (QueueLen and
// the per-tenant table) come from one dispatch.Snapshot taken under a single
// lock acquisition, so QueueLen always equals the sum of the per-tenant
// Queued values — reading them separately lets the counters move in between
// and hands /healthz an internally inconsistent answer.
func (s *Service) Stats() ServiceStats {
	byState := make(map[string]int)
	total := 0
	for state, n := range s.store.CountByState() {
		byState[state.String()] = n
		total += n
	}
	snap := s.disp.Snapshot()
	stats := ServiceStats{
		Runs:        total,
		ByState:     byState,
		QueueLen:    snap.QueueLen,
		QueueDepth:  s.disp.QueueDepth(),
		Dispatchers: s.disp.Dispatchers(),
		Recovered:   s.recovered,
		Tenants:     snap.Tenants,
	}
	if s.fleet != nil {
		fs := s.fleet.Stats()
		stats.Fleet = &fs
	}
	return stats
}

// Shutdown stops accepting runs, drains the dispatcher pool (force-
// cancelling in-flight runs if ctx expires first), then closes the store so
// a WAL backend seals its active segment. The dispatcher error wins when
// both fail.
func (s *Service) Shutdown(ctx context.Context) error {
	err := s.disp.Shutdown(ctx)
	// The fleet sweeper stays alive through the drain: if a worker dies
	// mid-drain its leases must still expire and requeue so a survivor can
	// finish them. Only once the dispatcher has drained (or given up) is
	// the sweeper stopped.
	if s.fleet != nil {
		s.fleet.Close()
	}
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}
