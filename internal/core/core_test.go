package core

import (
	"context"
	"errors"
	"testing"
)

// TestFacadeEndToEnd drives the whole engine through the core facade:
// build → generate → execute → check against the serial reference.
func TestFacadeEndToEnd(t *testing.T) {
	d, err := Generate(GenConfig{Shape: RandomShape, Nodes: 300, EdgeProb: 0.02, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CountPathsParallel(context.Background(), d, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	serial := CountPathsSerial(d, 0)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("node %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
	if TotalSinkPaths(d, serial) == 0 {
		t.Error("zero sink paths on connected random dag")
	}
}

// TestFacadeWorkloads exercises the workload registry through the facade:
// lookup, execution of a non-default workload, and the default constant.
func TestFacadeWorkloads(t *testing.T) {
	names := Workloads()
	if len(names) < 3 {
		t.Fatalf("Workloads() = %v, want the three built-ins", names)
	}
	if _, err := LookupWorkload(DefaultWorkload); err != nil {
		t.Fatalf("default workload unresolvable: %v", err)
	}
	res, err := ExecuteRun(context.Background(), RunSpec{
		Config:   GenConfig{Shape: PipelineShape, Stages: 30, Width: 3},
		Workload: "hashchain",
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match || res.Workload != "hashchain" {
		t.Errorf("facade hashchain run = %+v, want matching hashchain result", res)
	}
}

func TestFacadeBuilderCycle(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Build = %v, want ErrCycle", err)
	}
}
