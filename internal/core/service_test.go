package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestServiceLifecycle drives the run service through the core facade:
// submit → poll → result, cancel semantics, stats, shutdown.
func TestServiceLifecycle(t *testing.T) {
	svc, err := NewService(ServiceOptions{QueueDepth: 4, Dispatchers: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := svc.Submit(RunSpec{Config: GenConfig{Shape: PipelineShape, Stages: 30, Width: 3}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	var got RunInfo
	for {
		got, err = svc.Get(r.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run stuck in state %s", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got.State != RunSucceeded || got.Result == nil || !got.Result.Match {
		t.Fatalf("run = %+v, want succeeded with matching result", got)
	}
	if list := svc.List(); len(list) != 1 || list[0].ID != r.ID {
		t.Fatalf("List = %+v, want the one run", list)
	}
	stats := svc.Stats()
	if stats.Runs != 1 || stats.ByState[RunSucceeded.String()] != 1 {
		t.Errorf("Stats = %+v, want 1 succeeded run", stats)
	}
	if _, err := svc.Cancel(r.ID); !errors.Is(err, ErrRunTerminal) {
		t.Errorf("Cancel(terminal) = %v, want ErrRunTerminal", err)
	}
	if _, err := svc.Get("r000000-missing"); !errors.Is(err, ErrRunNotFound) {
		t.Errorf("Get(missing) = %v, want ErrRunNotFound", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(RunSpec{Config: GenConfig{Shape: PipelineShape, Stages: 3, Width: 2}}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Submit after Shutdown = %v, want ErrShuttingDown", err)
	}
}
