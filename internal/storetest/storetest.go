// Package storetest is the shared conformance suite for run.Store
// implementations. Every backend — the in-memory MemStore and the durable
// WAL store — must pass the same table of lifecycle, eviction, Await, and
// pagination-order tests, so the dispatcher and API layers behave
// identically no matter which store dagd was started with.
//
// Backends wire in with one line from their own test package:
//
//	func TestStoreConformance(t *testing.T) {
//		storetest.Run(t, func(t *testing.T) run.Store { ... })
//	}
package storetest

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/gen"
	"github.com/paper-repo-growth/conf_micro_daglisunbfg16/internal/run"
)

// Factory opens a fresh, empty store for one subtest. Implementations
// should register cleanup (Close, temp dirs) on t themselves.
type Factory func(t *testing.T) run.Store

// Run executes the full conformance suite against stores opened by
// newStore.
func Run(t *testing.T, newStore Factory) {
	t.Run("Lifecycle", func(t *testing.T) { testLifecycle(t, newStore) })
	t.Run("WrongStateTransitions", func(t *testing.T) { testWrongStateTransitions(t, newStore) })
	t.Run("CancelQueued", func(t *testing.T) { testCancelQueued(t, newStore) })
	t.Run("CancelRunning", func(t *testing.T) { testCancelRunning(t, newStore) })
	t.Run("Await", func(t *testing.T) { testAwait(t, newStore) })
	t.Run("Eviction", func(t *testing.T) { testEviction(t, newStore) })
	t.Run("ListOrder", func(t *testing.T) { testListOrder(t, newStore) })
	t.Run("CursorStability", func(t *testing.T) { testCursorStability(t, newStore) })
	t.Run("Delete", func(t *testing.T) { testDelete(t, newStore) })
	t.Run("Counts", func(t *testing.T) { testCounts(t, newStore) })
	t.Run("Requeue", func(t *testing.T) { testRequeue(t, newStore) })
}

func spec() run.Spec {
	// Tenant-bearing, so every backend proves attribution survives each
	// transition (and, for the WAL store, a replay) unchanged.
	return run.Spec{
		Config:   gen.Config{Shape: gen.Pipeline, Stages: 5, Width: 2},
		Tenant:   "conformance-tenant",
		Priority: 2,
	}
}

func create(t *testing.T, s run.Store) run.Run {
	t.Helper()
	r, err := s.Create(spec())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return r
}

func begin(t *testing.T, s run.Store, id string) run.Run {
	t.Helper()
	r, err := s.Begin(id, time.Now(), "", func() {})
	if err != nil {
		t.Fatalf("Begin(%s): %v", id, err)
	}
	return r
}

func finish(t *testing.T, s run.Store, id string, res *run.Result, runErr error) run.Run {
	t.Helper()
	r, err := s.Finish(id, res, runErr)
	if err != nil {
		t.Fatalf("Finish(%s): %v", id, err)
	}
	return r
}

// finished creates a run and drives it to succeeded.
func finished(t *testing.T, s run.Store) run.Run {
	t.Helper()
	r := create(t, s)
	begin(t, s, r.ID)
	return finish(t, s, r.ID, &run.Result{Match: true}, nil)
}

func testLifecycle(t *testing.T, newStore Factory) {
	cases := []struct {
		name      string
		runErr    error
		wantState run.State
		wantError bool
	}{
		{"success", nil, run.StateSucceeded, false},
		{"failure", errors.New("boom"), run.StateFailed, true},
		{"cancellation", fmt.Errorf("aborted: %w", context.Canceled), run.StateCancelled, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newStore(t)
			r := create(t, s)
			if r.ID == "" || r.State != run.StateQueued || r.CreatedAt.IsZero() {
				t.Fatalf("Create = %+v, want queued with ID and CreatedAt", r)
			}
			if got, err := s.Get(r.ID); err != nil || got.State != run.StateQueued {
				t.Fatalf("Get(created) = %+v, %v; want queued", got, err)
			}

			b := begin(t, s, r.ID)
			if b.State != run.StateRunning || b.StartedAt == nil {
				t.Fatalf("Begin = %+v, want running with StartedAt", b)
			}

			var res *run.Result
			if !tc.wantError {
				res = &run.Result{Nodes: 12, Match: true}
			}
			f := finish(t, s, r.ID, res, tc.runErr)
			if f.State != tc.wantState {
				t.Fatalf("Finish state = %s, want %s", f.State, tc.wantState)
			}
			if f.FinishedAt == nil {
				t.Error("Finish left FinishedAt nil")
			}
			if !f.State.Terminal() {
				t.Errorf("state %s not terminal after Finish", f.State)
			}
			if tc.wantError && f.Error == "" {
				t.Error("error outcome recorded no Error text")
			}
			if !tc.wantError && f.Result == nil {
				t.Error("success lost its Result")
			}
			// Snapshots are isolated: the queued snapshot from Create must
			// not have been mutated by later transitions.
			if r.State != run.StateQueued {
				t.Error("earlier snapshot mutated by later transition")
			}
			// Tenant attribution rides the spec through every transition.
			if f.Spec.Tenant != "conformance-tenant" || f.Spec.Priority != 2 {
				t.Errorf("terminal spec attribution = %q/%d, want conformance-tenant/2",
					f.Spec.Tenant, f.Spec.Priority)
			}
		})
	}
}

func testWrongStateTransitions(t *testing.T, newStore Factory) {
	s := newStore(t)
	if _, err := s.Get("nope"); !errors.Is(err, run.ErrNotFound) {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
	if _, err := s.Begin("nope", time.Now(), "", func() {}); !errors.Is(err, run.ErrNotFound) {
		t.Errorf("Begin(missing) = %v, want ErrNotFound", err)
	}
	if _, err := s.Finish("nope", nil, nil); !errors.Is(err, run.ErrNotFound) {
		t.Errorf("Finish(missing) = %v, want ErrNotFound", err)
	}
	if _, err := s.Cancel("nope"); !errors.Is(err, run.ErrNotFound) {
		t.Errorf("Cancel(missing) = %v, want ErrNotFound", err)
	}

	r := create(t, s)
	if _, err := s.Finish(r.ID, nil, nil); !errors.Is(err, run.ErrNotRunning) {
		t.Errorf("Finish(queued) = %v, want ErrNotRunning", err)
	}
	begin(t, s, r.ID)
	if _, err := s.Begin(r.ID, time.Now(), "", func() {}); !errors.Is(err, run.ErrNotQueued) {
		t.Errorf("Begin(running) = %v, want ErrNotQueued", err)
	}
	finish(t, s, r.ID, &run.Result{Match: true}, nil)
	if _, err := s.Begin(r.ID, time.Now(), "", func() {}); !errors.Is(err, run.ErrNotQueued) {
		t.Errorf("Begin(terminal) = %v, want ErrNotQueued", err)
	}
	if _, err := s.Finish(r.ID, nil, nil); !errors.Is(err, run.ErrNotRunning) {
		t.Errorf("Finish(terminal) = %v, want ErrNotRunning", err)
	}
}

func testCancelQueued(t *testing.T, newStore Factory) {
	s := newStore(t)
	r := create(t, s)
	c, err := s.Cancel(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if c.State != run.StateCancelled || c.FinishedAt == nil {
		t.Fatalf("Cancel(queued) = %+v, want cancelled with FinishedAt", c)
	}
	// A dispatcher popping this ID later must be refused.
	if _, err := s.Begin(r.ID, time.Now(), "", func() {}); !errors.Is(err, run.ErrNotQueued) {
		t.Errorf("Begin after cancel = %v, want ErrNotQueued", err)
	}
	if _, err := s.Cancel(r.ID); !errors.Is(err, run.ErrTerminal) {
		t.Errorf("second Cancel = %v, want ErrTerminal", err)
	}
}

func testCancelRunning(t *testing.T, newStore Factory) {
	s := newStore(t)
	r := create(t, s)
	fired := false
	if _, err := s.Begin(r.ID, time.Now(), "", func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	c, err := s.Cancel(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("cancel hook not invoked")
	}
	// The run stays running until the dispatcher observes the cancellation.
	if c.State != run.StateRunning {
		t.Errorf("Cancel(running) state = %s, want running", c.State)
	}
	f := finish(t, s, r.ID, nil, context.Canceled)
	if f.State != run.StateCancelled {
		t.Errorf("state after Finish(Canceled) = %s, want cancelled", f.State)
	}
}

func testAwait(t *testing.T, newStore Factory) {
	s := newStore(t)
	if _, err := s.Await(context.Background(), "nope"); !errors.Is(err, run.ErrNotFound) {
		t.Errorf("Await(missing) = %v, want ErrNotFound", err)
	}

	// Terminal runs return immediately.
	done := finished(t, s)
	if r, err := s.Await(context.Background(), done.ID); err != nil || r.State != run.StateSucceeded {
		t.Fatalf("Await(terminal) = %+v, %v; want succeeded", r, err)
	}

	// A parked waiter is released by Finish with the terminal snapshot.
	live := create(t, s)
	begin(t, s, live.ID)
	got := make(chan run.Run, 1)
	go func() {
		r, err := s.Await(context.Background(), live.ID)
		if err != nil {
			t.Error(err)
		}
		got <- r
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	finish(t, s, live.ID, nil, errors.New("boom"))
	select {
	case r := <-got:
		if r.State != run.StateFailed || r.Error != "boom" {
			t.Errorf("released Await = %+v, want failed/boom", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Await never released after Finish")
	}

	// A ctx timeout returns the current non-terminal snapshot, not an error.
	waiting := create(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if r, err := s.Await(ctx, waiting.ID); err != nil || r.State != run.StateQueued {
		t.Errorf("Await(timeout) = %+v, %v; want queued snapshot", r, err)
	}
}

func testEviction(t *testing.T, newStore Factory) {
	s := newStore(t)
	var ids []string
	for i := 0; i < 10; i++ {
		r := finished(t, s)
		ids = append(ids, r.ID)
		// FinishedAt stamps come from time.Now(); keep them strictly
		// increasing so "oldest-finished" is unambiguous on coarse clocks.
		time.Sleep(time.Millisecond)
	}
	queued := create(t, s).ID
	running := create(t, s).ID
	begin(t, s, running)

	if got := s.EvictTerminal(0); got != 0 {
		t.Errorf("EvictTerminal(0) = %d, want 0 (unlimited retention)", got)
	}
	if got := s.EvictTerminal(-1); got != 0 {
		t.Errorf("EvictTerminal(-1) = %d, want 0 (unlimited retention)", got)
	}
	if got := s.EvictTerminal(3); got != 7 {
		t.Fatalf("EvictTerminal(3) = %d, want 7", got)
	}
	for _, id := range ids[:7] {
		if _, err := s.Get(id); !errors.Is(err, run.ErrNotFound) {
			t.Errorf("oldest-finished run %s survived eviction", id)
		}
	}
	for _, id := range ids[7:] {
		if _, err := s.Get(id); err != nil {
			t.Errorf("newest-finished run %s evicted: %v", id, err)
		}
	}
	// Non-terminal runs are never eviction victims.
	for _, id := range []string{queued, running} {
		if _, err := s.Get(id); err != nil {
			t.Errorf("non-terminal run %s evicted: %v", id, err)
		}
	}
	if got := s.EvictTerminal(3); got != 0 {
		t.Errorf("eviction not idempotent: second EvictTerminal(3) = %d", got)
	}
}

func testListOrder(t *testing.T, newStore Factory) {
	s := newStore(t)
	ids := make(map[string]bool)
	for i := 0; i < 50; i++ {
		ids[create(t, s).ID] = true
	}
	list := s.List()
	if len(list) != 50 {
		t.Fatalf("List len = %d, want 50", len(list))
	}
	for i := 1; i < len(list); i++ {
		if run.CompareRuns(list[i-1], list[i]) >= 0 {
			t.Fatalf("List out of (CreatedAt, ID) order at %d: %s !< %s",
				i, list[i-1].ID, list[i].ID)
		}
	}
	for _, r := range list {
		if !ids[r.ID] {
			t.Fatalf("List returned unknown run %s", r.ID)
		}
		delete(ids, r.ID)
	}
	if s.Len() != 50 {
		t.Errorf("Len = %d, want 50", s.Len())
	}
}

// testCursorStability walks the store the way the API's cursor pagination
// does — strictly-after filtering with run.CompareToCursor over List — and
// checks the walk visits exactly List's runs in order, even when runs are
// evicted between pages.
func testCursorStability(t *testing.T, newStore Factory) {
	s := newStore(t)
	for i := 0; i < 20; i++ {
		r := finished(t, s)
		_ = r
	}
	full := s.List()
	if len(full) != 20 {
		t.Fatalf("List len = %d, want 20", len(full))
	}

	page := func(afterNanos int64, afterID string, limit int) []run.Run {
		var out []run.Run
		for _, r := range s.List() {
			if run.CompareToCursor(r, afterNanos, afterID) > 0 {
				out = append(out, r)
				if len(out) == limit {
					break
				}
			}
		}
		return out
	}

	var walked []run.Run
	var curNanos int64 = -1 << 62
	curID := ""
	for {
		p := page(curNanos, curID, 3)
		if len(p) == 0 {
			break
		}
		walked = append(walked, p...)
		last := p[len(p)-1]
		curNanos, curID = last.CreatedAt.UnixNano(), last.ID
	}
	if len(walked) != len(full) {
		t.Fatalf("cursor walk visited %d runs, List has %d", len(walked), len(full))
	}
	for i := range walked {
		if walked[i].ID != full[i].ID {
			t.Fatalf("cursor walk diverged from List at %d: %s != %s", i, walked[i].ID, full[i].ID)
		}
	}

	// Eviction mid-walk must not shift later pages: take one page, evict
	// down to the newest 5 runs, and resume — the remaining pages are
	// exactly the surviving runs after the cursor, each visited once.
	first := page(-1<<62, "", 3)
	s.EvictTerminal(5)
	survivors := s.List()
	if len(survivors) != 5 {
		t.Fatalf("after EvictTerminal(5): %d runs, want 5", len(survivors))
	}
	last := first[len(first)-1]
	rest := page(last.CreatedAt.UnixNano(), last.ID, 1000)
	want := 0
	for _, r := range survivors {
		if run.CompareToCursor(r, last.CreatedAt.UnixNano(), last.ID) > 0 {
			want++
		}
	}
	if len(rest) != want {
		t.Errorf("resumed walk returned %d runs, want %d survivors after cursor", len(rest), want)
	}
	seen := make(map[string]bool)
	for _, r := range rest {
		if seen[r.ID] {
			t.Errorf("resumed walk returned %s twice", r.ID)
		}
		seen[r.ID] = true
	}
}

func testDelete(t *testing.T, newStore Factory) {
	s := newStore(t)
	r := create(t, s)
	if err := s.Delete(r.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get(r.ID); !errors.Is(err, run.ErrNotFound) {
		t.Errorf("Get after Delete = %v, want ErrNotFound", err)
	}
	// Deleting the unknown is permitted (rollback paths may race).
	if err := s.Delete(r.ID); err != nil {
		t.Errorf("second Delete = %v, want nil", err)
	}

	// Deleting a non-terminal run releases parked waiters.
	w := create(t, s)
	got := make(chan run.Run, 1)
	go func() {
		r, err := s.Await(context.Background(), w.ID)
		if err != nil {
			t.Error(err)
		}
		got <- r
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.Delete(w.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("Await never released by Delete")
	}
}

// testRequeue exercises the lease-expiry path: a running run drops back to
// queued with Restarts incremented, execution fields cleared, attribution
// intact, and Await waiters still parked until the retry finishes.
func testRequeue(t *testing.T, newStore Factory) {
	s := newStore(t)

	if _, err := s.Requeue("nope"); !errors.Is(err, run.ErrNotFound) {
		t.Errorf("Requeue(missing) = %v, want ErrNotFound", err)
	}

	r := create(t, s)
	if _, err := s.Requeue(r.ID); !errors.Is(err, run.ErrNotRunning) {
		t.Errorf("Requeue(queued) = %v, want ErrNotRunning", err)
	}

	if _, err := s.Begin(r.ID, time.Now(), "worker-1", func() {}); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(r.ID); got.Worker != "worker-1" {
		t.Errorf("Worker after Begin = %q, want worker-1", got.Worker)
	}

	// Park a waiter; it must survive the requeue and only release at the
	// retry's terminal state.
	got := make(chan run.Run, 1)
	go func() {
		w, err := s.Await(context.Background(), r.ID)
		if err != nil {
			t.Error(err)
		}
		got <- w
	}()
	time.Sleep(10 * time.Millisecond)

	q, err := s.Requeue(r.ID)
	if err != nil {
		t.Fatalf("Requeue(running): %v", err)
	}
	if q.State != run.StateQueued || q.Restarts != 1 {
		t.Fatalf("Requeue = state %s restarts %d, want queued/1", q.State, q.Restarts)
	}
	if q.Worker != "" || q.DispatchedAt != nil || q.StartedAt != nil || q.Error != "" || q.Result != nil {
		t.Errorf("Requeue left execution fields set: %+v", q)
	}
	if q.Spec.Tenant != "conformance-tenant" || q.Spec.Priority != 2 {
		t.Errorf("Requeue lost attribution: %q/%d", q.Spec.Tenant, q.Spec.Priority)
	}
	select {
	case w := <-got:
		t.Fatalf("Await released by Requeue with state %s; must wait for the retry", w.State)
	case <-time.After(20 * time.Millisecond):
	}

	// The retry runs to completion on another worker; the waiter releases
	// with the terminal snapshot and the retry's attribution.
	if _, err := s.Begin(r.ID, time.Now(), "worker-2", func() {}); err != nil {
		t.Fatalf("Begin(retry): %v", err)
	}
	f := finish(t, s, r.ID, &run.Result{Match: true}, nil)
	if f.Worker != "worker-2" || f.Restarts != 1 {
		t.Errorf("terminal snapshot worker/restarts = %q/%d, want worker-2/1", f.Worker, f.Restarts)
	}
	select {
	case w := <-got:
		if w.State != run.StateSucceeded {
			t.Errorf("released Await state = %s, want succeeded", w.State)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Await never released after the retry finished")
	}

	if _, err := s.Requeue(r.ID); !errors.Is(err, run.ErrNotRunning) {
		t.Errorf("Requeue(terminal) = %v, want ErrNotRunning", err)
	}
}

func testCounts(t *testing.T, newStore Factory) {
	s := newStore(t)
	finished(t, s)
	finished(t, s)
	r := create(t, s)
	begin(t, s, r.ID)
	finish(t, s, r.ID, nil, errors.New("boom"))
	create(t, s)
	running := create(t, s)
	begin(t, s, running.ID)

	counts := s.CountByState()
	want := map[run.State]int{
		run.StateSucceeded: 2,
		run.StateFailed:    1,
		run.StateQueued:    1,
		run.StateRunning:   1,
	}
	for state, n := range want {
		if counts[state] != n {
			t.Errorf("CountByState[%s] = %d, want %d", state, counts[state], n)
		}
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
}
